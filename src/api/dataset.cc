#include "api/dataset.h"

#include <utility>

#include "relation/csv.h"

namespace pcbl {
namespace api {

Result<Dataset> Dataset::FromCsvFile(const std::string& path,
                                     const DatasetOptions& options) {
  PCBL_ASSIGN_OR_RETURN(Table table, ReadCsvFile(path));
  return FromTable(std::move(table), options);
}

Result<Dataset> Dataset::FromTable(Table table,
                                   const DatasetOptions& options) {
  return FromTable(std::make_shared<const Table>(std::move(table)),
                   options);
}

Result<Dataset> Dataset::FromTable(std::shared_ptr<const Table> table,
                                   const DatasetOptions& options) {
  if (table == nullptr) {
    return InvalidArgumentError("Dataset needs a table");
  }
  Dataset dataset;
  dataset.table_ = std::move(table);
  dataset.fingerprint_ = FingerprintTable(*dataset.table_);
  if (options.private_service) {
    dataset.service_ = std::make_shared<CountingService>(dataset.table_);
  } else {
    ServiceRegistry& registry = ServiceRegistry::Global();
    if (options.service_memory_budget >= 0) {
      registry.SetMemoryBudget(options.service_memory_budget);
    }
    if (!options.spill_directory.empty()) {
      registry.SetSpillDirectory(options.spill_directory);
    }
    dataset.service_ = registry.Acquire(dataset.table_);
  }
  return dataset;
}

}  // namespace api
}  // namespace pcbl
