#include "api/artifact.h"

#include <algorithm>

#include "util/str.h"

namespace pcbl {
namespace api {

LabelArtifact::LabelArtifact(PortableLabel label) : label_(std::move(label)) {
  const size_t n = label_.attribute_names.size();
  attr_index_.reserve(n);
  for (size_t a = 0; a < n; ++a) {
    // emplace keeps the first occurrence, matching the label's
    // first-match name resolution.
    attr_index_.emplace(label_.attribute_names[a], static_cast<int>(a));
  }

  s_position_.assign(n, -1);
  for (size_t j = 0; j < label_.label_attributes.size(); ++j) {
    const int a = label_.label_attributes[j];
    if (a >= 0 && static_cast<size_t>(a) < n && s_position_[a] < 0) {
      s_position_[static_cast<size_t>(a)] = static_cast<int>(j);
    }
  }

  vc_.resize(n);
  vc_totals_.assign(n, 0);
  for (size_t a = 0; a < label_.value_counts.size() && a < n; ++a) {
    const auto& per_attr = label_.value_counts[a];
    vc_[a].reserve(per_attr.size());
    for (const auto& [value, count] : per_attr) {
      vc_[a].emplace(value, count);  // first occurrence wins
      // The total sums every raw entry (duplicates included), exactly as
      // the label's linear vc_total does.
      vc_totals_[a] += count;
    }
  }

  postings_.resize(label_.label_attributes.size());
  for (size_t g = 0; g < label_.pattern_counts.size(); ++g) {
    const auto& values = label_.pattern_counts[g].first;
    for (size_t j = 0; j < postings_.size() && j < values.size(); ++j) {
      // An empty stored value means the PC entry does not bind this
      // attribute; it can never match a queried term, so it gets no
      // posting.
      if (!values[j].empty()) postings_[j][values[j]].push_back(g);
    }
  }
}

Result<double> LabelArtifact::EstimateCount(
    const std::vector<std::pair<std::string, std::string>>& pattern) const {
  // Resolve names to attribute indices — same error order and wording as
  // PortableLabel::EstimateCount.
  std::vector<std::pair<int, const std::string*>> terms;
  terms.reserve(pattern.size());
  for (const auto& [name, value] : pattern) {
    const auto it = attr_index_.find(name);
    if (it == attr_index_.end()) {
      return NotFoundError(StrCat("unknown attribute '", name, "'"));
    }
    for (const auto& [prev, unused] : terms) {
      (void)unused;
      if (prev == it->second) {
        return InvalidArgumentError(
            StrCat("attribute '", name, "' bound twice"));
      }
    }
    terms.emplace_back(it->second, &value);
  }

  // Base: c(p|S) — marginal over PC entries matching the bound S-attrs.
  // The sum is exact int64 arithmetic, so answering it from posting-list
  // intersection instead of a full PC scan changes nothing.
  std::vector<std::pair<size_t, const std::string*>> bound;  // (pos in S, v)
  for (const auto& [attr, value] : terms) {
    const int pos = s_position_[static_cast<size_t>(attr)];
    if (pos >= 0) bound.emplace_back(static_cast<size_t>(pos), value);
  }
  double est;
  if (bound.empty()) {
    est = static_cast<double>(label_.total_rows);
  } else {
    // Drive the scan from the shortest posting list among the bound
    // terms; a term whose value has no postings zeroes the base outright.
    const std::vector<size_t>* drive = nullptr;
    bool impossible = false;
    for (const auto& [pos, v] : bound) {
      const auto it = postings_[pos].find(*v);
      if (it == postings_[pos].end()) {
        impossible = true;
        break;
      }
      if (drive == nullptr || it->second.size() < drive->size()) {
        drive = &it->second;
      }
    }
    int64_t base = 0;
    if (!impossible) {
      for (const size_t g : *drive) {
        const auto& values = label_.pattern_counts[g].first;
        bool match = true;
        for (const auto& [pos, v] : bound) {
          const std::string& stored = values[pos];
          if (stored.empty() || stored != *v) {
            match = false;
            break;
          }
        }
        if (match) base += label_.pattern_counts[g].second;
      }
    }
    est = static_cast<double>(base);
  }

  // Independence factors for the attributes outside S, multiplied in
  // term order (floating-point multiplication order matters for
  // byte-identity with the label's own estimate).
  for (const auto& [attr, value] : terms) {
    if (s_position_[static_cast<size_t>(attr)] >= 0) continue;
    const int64_t total = vc_totals_[static_cast<size_t>(attr)];
    if (total == 0) return 0.0;
    const auto it = vc_[static_cast<size_t>(attr)].find(*value);
    const int64_t count = it == vc_[static_cast<size_t>(attr)].end()
                              ? 0
                              : it->second;
    est *= static_cast<double>(count) / static_cast<double>(total);
  }
  return est;
}

Result<PortableLabel> LoadLabelArtifact(const std::string& path) {
  return LoadLabel(path);
}

Result<double> EstimateFromLabel(
    const PortableLabel& label,
    const std::vector<std::pair<std::string, std::string>>& pattern) {
  return label.EstimateCount(pattern);
}

Result<double> EstimateFromLabel(
    const LabelArtifact& artifact,
    const std::vector<std::pair<std::string, std::string>>& pattern) {
  return artifact.EstimateCount(pattern);
}

Result<std::vector<FitnessWarning>> AuditLabelArtifact(
    const PortableLabel& label, const std::vector<std::string>& attrs,
    const AuditOptions& options) {
  return AuditLabel(label, attrs, options);
}

Result<std::vector<FitnessWarning>> AuditLabelArtifact(
    const LabelArtifact& artifact, const std::vector<std::string>& attrs,
    const AuditOptions& options) {
  return AuditLabel(
      artifact.label(), attrs, options,
      [&artifact](
          const std::vector<std::pair<std::string, std::string>>& group) {
        return artifact.EstimateCount(group);
      });
}

LabelDiff DiffLabelArtifacts(const PortableLabel& old_label,
                             const PortableLabel& new_label) {
  return DiffLabels(old_label, new_label);
}

LabelDiff DiffLabelArtifacts(const LabelArtifact& old_artifact,
                             const LabelArtifact& new_artifact) {
  return DiffLabels(old_artifact.label(), new_artifact.label());
}

}  // namespace api
}  // namespace pcbl
