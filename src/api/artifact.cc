#include "api/artifact.h"

namespace pcbl {
namespace api {

Result<PortableLabel> LoadLabelArtifact(const std::string& path) {
  return LoadLabel(path);
}

Result<double> EstimateFromLabel(
    const PortableLabel& label,
    const std::vector<std::pair<std::string, std::string>>& pattern) {
  return label.EstimateCount(pattern);
}

Result<std::vector<FitnessWarning>> AuditLabelArtifact(
    const PortableLabel& label, const std::vector<std::string>& attrs,
    const AuditOptions& options) {
  return AuditLabel(label, attrs, options);
}

LabelDiff DiffLabelArtifacts(const PortableLabel& old_label,
                             const PortableLabel& new_label) {
  return DiffLabels(old_label, new_label);
}

}  // namespace api
}  // namespace pcbl
