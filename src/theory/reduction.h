// The vertex-cover reduction of Theorem 2.17 (appendix A), as executable
// code.
//
// Given a graph G = (V, E) and a budget k, the reduction emits a database
// D with |V|+1 attributes (one per vertex, plus A_E), a pattern set P with
// one pattern per edge, and a size bound B_s = 2|E| + 4·Σ_{i=1}^{k-1} i,
// such that G has a vertex cover of size <= k iff some label L_S(D) has
// |P_S| <= B_s and Err(L_S(D), P) = 0 (Proposition A.4). The test suite
// validates both directions on exhaustive families of small graphs,
// exercising labels over data with missing values.
#ifndef PCBL_THEORY_REDUCTION_H_
#define PCBL_THEORY_REDUCTION_H_

#include <cstdint>
#include <vector>

#include "pattern/pattern.h"
#include "relation/table.h"
#include "theory/graph.h"
#include "util/status.h"

namespace pcbl {
namespace theory {

/// The reduction's output instance.
struct ReductionInstance {
  /// The database D. Attributes 0..n-1 are the vertex attributes A_1..A_n
  /// (each with domain {x1, x2}); attribute n is A_E with domain
  /// {e1, ..., e|E|}. Tuples bind only the attributes their block
  /// mentions; the rest are NULL.
  Table table;
  /// P: for edge e_r = {v_i, v_j}, the pattern
  /// {A_i = x1, A_j = x1, A_E = e_r}.
  std::vector<Pattern> patterns;
  /// True pattern counts (each equals |E| by Lemma A.5).
  std::vector<int64_t> pattern_counts;
  /// Attribute index of A_E.
  int edge_attribute = 0;
};

/// Runs the reduction. The graph must have at least one edge (as in
/// Theorem A.2's statement).
Result<ReductionInstance> BuildReduction(const Graph& graph);

/// B_s for a vertex-cover budget k: 2|E| + 4·Σ_{i=1}^{k-1} i.
int64_t ReductionSizeBound(const Graph& graph, int k);

/// Decision procedure on the reduction's output: does some attribute
/// subset S yield |L_S(D)| <= size_bound and Err(L_S(D), P) = 0?
/// Exhaustive over all S (small instances only). Exposed for tests.
bool ExistsZeroErrorLabel(const ReductionInstance& instance,
                          int64_t size_bound);

}  // namespace theory
}  // namespace pcbl

#endif  // PCBL_THEORY_REDUCTION_H_
