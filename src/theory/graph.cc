#include "theory/graph.h"

#include <bit>

#include "util/logging.h"
#include "util/str.h"

namespace pcbl {
namespace theory {

Graph::Graph(int num_vertices) : num_vertices_(num_vertices) {
  PCBL_CHECK(num_vertices >= 0);
  PCBL_CHECK(num_vertices <= 63) << "graphs are limited to 63 vertices";
}

Status Graph::AddEdge(int u, int v) {
  if (u < 0 || v < 0 || u >= num_vertices_ || v >= num_vertices_) {
    return OutOfRangeError(
        StrCat("edge {", u, ",", v, "} out of range [0,", num_vertices_,
               ")"));
  }
  if (u == v) {
    return InvalidArgumentError(StrCat("self-loop on vertex ", u));
  }
  if (u > v) std::swap(u, v);
  if (HasEdge(u, v)) {
    return AlreadyExistsError(StrCat("duplicate edge {", u, ",", v, "}"));
  }
  edges_.emplace_back(u, v);
  return Status::Ok();
}

bool Graph::HasEdge(int u, int v) const {
  if (u > v) std::swap(u, v);
  for (const auto& [a, b] : edges_) {
    if (a == u && b == v) return true;
  }
  return false;
}

bool IsVertexCover(const Graph& graph, uint64_t mask) {
  for (const auto& [u, v] : graph.edges()) {
    if (((mask >> u) & 1) == 0 && ((mask >> v) & 1) == 0) return false;
  }
  return true;
}

bool HasVertexCoverOfSize(const Graph& graph, int k) {
  if (k >= graph.num_vertices()) return true;
  if (k < 0) return false;
  int n = graph.num_vertices();
  // Exhaustive over all vertex subsets (n <= 63, but in tests n is tiny).
  PCBL_CHECK(n < 25) << "exhaustive vertex cover limited to small graphs";
  for (uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    if (std::popcount(mask) <= k && IsVertexCover(graph, mask)) return true;
  }
  return false;
}

int MinVertexCoverSize(const Graph& graph) {
  for (int k = 0; k <= graph.num_vertices(); ++k) {
    if (HasVertexCoverOfSize(graph, k)) return k;
  }
  return graph.num_vertices();
}

}  // namespace theory
}  // namespace pcbl
