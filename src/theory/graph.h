// Simple undirected graphs for the NP-hardness machinery (appendix A).
#ifndef PCBL_THEORY_GRAPH_H_
#define PCBL_THEORY_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/status.h"

namespace pcbl {
namespace theory {

/// An undirected graph on vertices {0, ..., n-1} without self-loops or
/// parallel edges.
class Graph {
 public:
  /// Creates an empty graph on n vertices.
  explicit Graph(int num_vertices);

  /// Adds edge {u, v}. Fails on self-loops, out-of-range endpoints, or
  /// duplicate edges.
  Status AddEdge(int u, int v);

  int num_vertices() const { return num_vertices_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  /// Edges as (u, v) with u < v, in insertion order.
  const std::vector<std::pair<int, int>>& edges() const { return edges_; }

  /// True when {u, v} is an edge.
  bool HasEdge(int u, int v) const;

 private:
  int num_vertices_;
  std::vector<std::pair<int, int>> edges_;
};

/// True when `graph` has a vertex cover of size <= k (exhaustive search;
/// intended for the small instances used in tests).
bool HasVertexCoverOfSize(const Graph& graph, int k);

/// Size of a minimum vertex cover (exhaustive).
int MinVertexCoverSize(const Graph& graph);

/// True when the vertex set given by `mask` (bit i = vertex i) covers
/// every edge.
bool IsVertexCover(const Graph& graph, uint64_t mask);

}  // namespace theory
}  // namespace pcbl

#endif  // PCBL_THEORY_GRAPH_H_
