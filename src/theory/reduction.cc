#include "theory/reduction.h"

#include <string>

#include "core/label.h"
#include "pattern/counter.h"
#include "pattern/counting_engine.h"
#include "pattern/counting_service.h"
#include "pattern/lattice.h"
#include "pattern/service_registry.h"
#include "relation/stats.h"
#include "util/logging.h"
#include "util/str.h"

namespace pcbl {
namespace theory {

Result<ReductionInstance> BuildReduction(const Graph& graph) {
  const int n = graph.num_vertices();
  const int m = graph.num_edges();
  if (n < 2) return InvalidArgumentError("reduction needs >= 2 vertices");
  // Single-edge graphs are among the "easy cases" Theorem A.2 omits; the
  // error separation of Lemma A.5 needs |E| >= 2 (with |E| = 1 a label
  // over one endpoint plus a non-adjacent vertex also reaches error 0).
  if (m < 2) return InvalidArgumentError("reduction needs >= 2 edges");

  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(n) + 1);
  for (int i = 0; i < n; ++i) names.push_back(StrCat("A", i + 1));
  names.push_back("AE");
  PCBL_ASSIGN_OR_RETURN(TableBuilder builder,
                        TableBuilder::Create(std::move(names)));

  // Fix value-id order: vertex attributes get {x1, x2}; A_E gets e1..em.
  for (int i = 0; i < n; ++i) {
    builder.InternValue(i, "x1");
    builder.InternValue(i, "x2");
  }
  for (int r = 0; r < m; ++r) {
    builder.InternValue(n, StrCat("e", r + 1));
  }
  const ValueId kX1 = 0;
  const ValueId kX2 = 1;

  std::vector<ValueId> row(static_cast<size_t>(n) + 1);
  auto clear_row = [&] {
    std::fill(row.begin(), row.end(), kNullValue);
  };
  auto add_copies = [&](int64_t copies) -> Status {
    for (int64_t c = 0; c < copies; ++c) {
      PCBL_RETURN_IF_ERROR(builder.AddRowCodes(row));
    }
    return Status::Ok();
  };

  // Block 1 — per edge e_r = {v_i, v_j}: for each p, q in {1,2}, |E|
  // tuples with A_i = x_p, A_j = x_q, A_E = e_r.
  for (int r = 0; r < m; ++r) {
    auto [i, j] = graph.edges()[static_cast<size_t>(r)];
    for (ValueId p : {kX1, kX2}) {
      for (ValueId q : {kX1, kX2}) {
        clear_row();
        row[static_cast<size_t>(i)] = p;
        row[static_cast<size_t>(j)] = q;
        row[static_cast<size_t>(n)] = static_cast<ValueId>(r);
        PCBL_RETURN_IF_ERROR(add_copies(m));
      }
    }
  }

  // Block 2 — per unordered vertex pair {v_i, v_j}, i < j:
  //   non-edge: for each p, q, |E| tuples with A_i = x_p, A_j = x_q;
  //   edge:     for each p, 2|E|^2 tuples with A_i = x_p, A_j = x_p.
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (!graph.HasEdge(i, j)) {
        for (ValueId p : {kX1, kX2}) {
          for (ValueId q : {kX1, kX2}) {
            clear_row();
            row[static_cast<size_t>(i)] = p;
            row[static_cast<size_t>(j)] = q;
            PCBL_RETURN_IF_ERROR(add_copies(m));
          }
        }
      } else {
        for (ValueId p : {kX1, kX2}) {
          clear_row();
          row[static_cast<size_t>(i)] = p;
          row[static_cast<size_t>(j)] = p;
          PCBL_RETURN_IF_ERROR(add_copies(2 * static_cast<int64_t>(m) * m));
        }
      }
    }
  }

  ReductionInstance instance;
  instance.table = builder.Build();
  instance.edge_attribute = n;

  // P: per edge e_r = {v_i, v_j}, pattern {A_i=x1, A_j=x1, A_E=e_r}.
  for (int r = 0; r < m; ++r) {
    auto [i, j] = graph.edges()[static_cast<size_t>(r)];
    PCBL_ASSIGN_OR_RETURN(
        Pattern p,
        Pattern::Create({PatternTerm{i, kX1}, PatternTerm{j, kX1},
                         PatternTerm{n, static_cast<ValueId>(r)}}));
    instance.patterns.push_back(std::move(p));
    // Lemma A.5: c_D(p) = |E| (from the edge block with p = q = x1).
    instance.pattern_counts.push_back(m);
  }
  return instance;
}

int64_t ReductionSizeBound(const Graph& graph, int k) {
  // 2|E| + 4 * (1 + 2 + ... + (k-1)).
  int64_t m = graph.num_edges();
  int64_t tri = static_cast<int64_t>(k - 1) * k / 2;
  return 2 * m + 4 * tri;
}

bool ExistsZeroErrorLabel(const ReductionInstance& instance,
                          int64_t size_bound) {
  const Table& table = instance.table;
  auto vc =
      std::make_shared<const ValueCounts>(ValueCounts::Compute(table));
  const int total_attrs = table.num_attributes();
  // The brute-force sweep sizes every attribute subset. The reduction
  // database is massively duplicated (every BuildReduction tuple is added
  // in >= |E| >= 2 copies, so distinct restrictions number at most half
  // the rows); priming the engine with the full attribute set's PC set
  // therefore always yields a usable rollup ancestor, and every subset is
  // sized by aggregating those groups instead of rescanning the table —
  // the sweep scales with distinct restrictions, not rows. The service
  // comes from the process-wide registry: bound sweeps call this
  // repeatedly on the same instance (and concurrent sessions may probe
  // the same graph), so the primed universe PC set and every cached
  // subset survive across calls instead of being rebuilt per bound.
  std::shared_ptr<CountingService> service =
      ServiceRegistry::Global().Acquire(table);
  std::lock_guard<std::mutex> lock(service->mutex());
  CountingEngine& engine = service->engine();
  const AttrMask universe = AttrMask::All(total_attrs);
  engine.PinnedPatternCounts(universe);  // pinned: the exponential sweep
                                         // must not evict its ancestor
  bool found = false;
  ForEachSubsetOf(universe, [&](AttrMask s) {
    if (found) return;
    int64_t size = engine.CountPatterns(s, size_bound);
    if (size > size_bound) return;
    Label label =
        Label::BuildFromCounts(table, s, *engine.PatternCounts(s), vc);
    for (size_t i = 0; i < instance.patterns.size(); ++i) {
      double err = label.AbsoluteError(instance.patterns[i],
                                       instance.pattern_counts[i]);
      if (err > 1e-9) return;
    }
    found = true;
  });
  return found;
}

}  // namespace theory
}  // namespace pcbl
