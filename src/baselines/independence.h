// Independence estimator: pattern counts from the VC set alone.
//
// This is the degenerate label L_∅(D) — exactly the "keep counts for only
// individual attribute values and estimate combinations assuming
// independence" strawman of Sec. I, and the base case of the estimation
// function (Example 2.6). Useful as a floor baseline and for tests
// (Label(S=∅) must agree with it bit-for-bit).
#ifndef PCBL_BASELINES_INDEPENDENCE_H_
#define PCBL_BASELINES_INDEPENDENCE_H_

#include <cstdint>
#include <memory>

#include "core/estimator.h"
#include "relation/stats.h"
#include "relation/table.h"

namespace pcbl {

/// Estimates c_D(p) as |D| · ∏ c_D({A=a}) / Σ_a' c_D({A=a'}).
class IndependenceEstimator : public CardinalityEstimator {
 public:
  /// `vc` may be shared with other consumers; when null it is computed.
  static IndependenceEstimator Build(
      const Table& table, std::shared_ptr<const ValueCounts> vc = nullptr);

  double EstimateCount(const Pattern& p) const override;
  double EstimateFullPattern(const ValueId* codes, int width) const override;
  std::string name() const override { return "Independence"; }
  int64_t FootprintEntries() const override { return vc_->TotalEntries(); }

 private:
  IndependenceEstimator() = default;

  int64_t table_rows_ = 0;
  std::shared_ptr<const ValueCounts> vc_;
  std::vector<double> inv_totals_;
};

}  // namespace pcbl

#endif  // PCBL_BASELINES_INDEPENDENCE_H_
