#include "baselines/postgres.h"

#include <algorithm>

#include "util/logging.h"
#include "util/rng.h"

namespace pcbl {

PostgresEstimator PostgresEstimator::Build(const Table& table,
                                           const PostgresOptions& options) {
  PostgresEstimator e;
  e.width_ = table.num_attributes();
  e.table_rows_ = table.num_rows();
  e.columns_.resize(static_cast<size_t>(e.width_));

  // Choose the rows ANALYZE looks at.
  std::vector<int64_t> sample;
  bool sampled = options.analyze_sample_rows > 0 &&
                 options.analyze_sample_rows < table.num_rows();
  if (sampled) {
    Rng rng(options.seed);
    sample = rng.SampleWithoutReplacement(table.num_rows(),
                                          options.analyze_sample_rows);
  }
  int64_t scanned = sampled ? static_cast<int64_t>(sample.size())
                            : table.num_rows();

  for (int a = 0; a < e.width_; ++a) {
    ColumnStats& cs = e.columns_[static_cast<size_t>(a)];
    std::vector<int64_t> counts(table.DomainSize(a), 0);
    int64_t nulls = 0;
    auto tally = [&](int64_t r) {
      ValueId v = table.value(r, a);
      if (IsNull(v)) {
        ++nulls;
      } else {
        ++counts[v];
      }
    };
    if (sampled) {
      for (int64_t r : sample) tally(r);
    } else {
      for (int64_t r = 0; r < table.num_rows(); ++r) tally(r);
    }

    cs.null_frac = scanned > 0 ? static_cast<double>(nulls) /
                                     static_cast<double>(scanned)
                               : 0.0;
    // Distinct values seen.
    std::vector<ValueId> present;
    for (ValueId v = 0; v < counts.size(); ++v) {
      if (counts[v] > 0) present.push_back(v);
    }
    cs.n_distinct = static_cast<int64_t>(present.size());

    // MCV list: the stats_target most frequent values.
    std::sort(present.begin(), present.end(), [&](ValueId x, ValueId y) {
      if (counts[x] != counts[y]) return counts[x] > counts[y];
      return x < y;
    });
    int keep = std::min<int>(options.stats_target,
                             static_cast<int>(present.size()));
    cs.mcv_freq.assign(counts.size(), -1.0);
    double denom = static_cast<double>(std::max<int64_t>(scanned, 1));
    for (int i = 0; i < keep; ++i) {
      ValueId v = present[static_cast<size_t>(i)];
      double f = static_cast<double>(counts[v]) / denom;
      cs.mcv_freq[v] = f;
      cs.mcv_total_freq += f;
    }
    cs.mcv_entries = keep;

    // Residual selectivity for equality with a non-MCV value
    // (var_eq_const arithmetic: remaining mass spread over the remaining
    // distinct values).
    int64_t remaining = cs.n_distinct - keep;
    if (remaining > 0) {
      double residual_mass =
          std::max(0.0, 1.0 - cs.mcv_total_freq - cs.null_frac);
      cs.residual_sel = residual_mass / static_cast<double>(remaining);
    } else {
      cs.residual_sel = 0.0;
    }
  }
  return e;
}

double PostgresEstimator::Selectivity(int attr, ValueId v) const {
  const ColumnStats& cs = columns_[static_cast<size_t>(attr)];
  if (IsNull(v)) return cs.null_frac;
  if (v < cs.mcv_freq.size() && cs.mcv_freq[v] >= 0.0) {
    return cs.mcv_freq[v];
  }
  return cs.residual_sel;
}

double PostgresEstimator::EstimateCount(const Pattern& p) const {
  double sel = 1.0;
  for (const PatternTerm& t : p.terms()) {
    sel *= Selectivity(t.attr, t.value);
  }
  double rows = sel * static_cast<double>(table_rows_);
  // The planner never estimates fewer than one row.
  return std::max(rows, 1.0);
}

double PostgresEstimator::EstimateFullPattern(const ValueId* codes,
                                              int width) const {
  PCBL_DCHECK(width == width_);
  double sel = 1.0;
  for (int a = 0; a < width; ++a) {
    sel *= Selectivity(a, codes[a]);
  }
  double rows = sel * static_cast<double>(table_rows_);
  return std::max(rows, 1.0);
}

int64_t PostgresEstimator::FootprintEntries() const {
  int64_t total = 0;
  for (const ColumnStats& cs : columns_) {
    total += cs.mcv_entries;
  }
  return total;
}

}  // namespace pcbl
