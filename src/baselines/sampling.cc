#include "baselines/sampling.h"

#include <algorithm>

#include "util/logging.h"
#include "util/rng.h"

namespace pcbl {

SamplingEstimator SamplingEstimator::Build(const Table& table,
                                           int64_t sample_size,
                                           uint64_t seed) {
  SamplingEstimator s;
  s.width_ = table.num_attributes();
  s.table_rows_ = table.num_rows();
  sample_size = std::min<int64_t>(std::max<int64_t>(sample_size, 0),
                                  table.num_rows());
  s.num_sample_rows_ = sample_size;
  s.scale_ = sample_size > 0 ? static_cast<double>(table.num_rows()) /
                                   static_cast<double>(sample_size)
                             : 0.0;

  Rng rng(seed);
  std::vector<int64_t> picked =
      rng.SampleWithoutReplacement(table.num_rows(), sample_size);
  std::sort(picked.begin(), picked.end());

  size_t width = static_cast<size_t>(s.width_);
  s.rows_.reserve(picked.size() * width);
  for (int64_t r : picked) {
    for (size_t a = 0; a < width; ++a) {
      s.rows_.push_back(table.value(r, static_cast<int>(a)));
    }
  }

  // Index distinct rows for the fast full-pattern path.
  size_t n = picked.size();
  std::vector<int64_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<int64_t>(i);
  const ValueId* data = s.rows_.data();
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    const ValueId* ka = data + static_cast<size_t>(a) * width;
    const ValueId* kb = data + static_cast<size_t>(b) * width;
    return std::lexicographical_compare(ka, ka + width, kb, kb + width);
  });
  size_t i = 0;
  while (i < n) {
    const ValueId* ki = data + static_cast<size_t>(order[i]) * width;
    size_t j = i + 1;
    while (j < n) {
      const ValueId* kj = data + static_cast<size_t>(order[j]) * width;
      if (!std::equal(ki, ki + width, kj)) break;
      ++j;
    }
    s.distinct_.insert(s.distinct_.end(), ki, ki + width);
    s.row_mult_.push_back(static_cast<int64_t>(j - i));
    i = j;
  }
  return s;
}

double SamplingEstimator::EstimateCount(const Pattern& p) const {
  // c_S(p): scan the sample.
  size_t width = static_cast<size_t>(width_);
  int64_t matches = 0;
  size_t n = static_cast<size_t>(num_sample_rows_);
  for (size_t r = 0; r < n; ++r) {
    const ValueId* row = rows_.data() + r * width;
    bool ok = true;
    for (const PatternTerm& t : p.terms()) {
      if (row[t.attr] != t.value) {
        ok = false;
        break;
      }
    }
    if (ok) ++matches;
  }
  return static_cast<double>(matches) * scale_;
}

double SamplingEstimator::EstimateFullPattern(const ValueId* codes,
                                              int width) const {
  PCBL_DCHECK(width == width_);
  size_t w = static_cast<size_t>(width_);
  // Binary search the distinct sorted sample rows.
  int64_t lo = 0;
  int64_t hi = static_cast<int64_t>(row_mult_.size());
  const ValueId* data = distinct_.data();
  while (lo < hi) {
    int64_t mid = lo + (hi - lo) / 2;
    const ValueId* k = data + static_cast<size_t>(mid) * w;
    if (std::lexicographical_compare(k, k + w, codes, codes + w)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < static_cast<int64_t>(row_mult_.size())) {
    const ValueId* k = data + static_cast<size_t>(lo) * w;
    if (std::equal(codes, codes + w, k)) {
      return static_cast<double>(row_mult_[static_cast<size_t>(lo)]) *
             scale_;
    }
  }
  return 0.0;
}

}  // namespace pcbl
