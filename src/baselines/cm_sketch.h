// Count-Min sketch baseline — a classic synopsis comparator from the
// selectivity-estimation literature the paper surveys (Sec. V, [11], [23]).
//
// The sketch summarizes the multiset of complete rows (full patterns):
// every row increments `depth` counters chosen by independent hashes of
// its code vector; a point query returns the minimum of its counters.
// Estimates are therefore one-sided (never below the true count). Partial
// patterns cannot be answered from the sketch and fall back to the
// VC-based independence estimate — the same information every label
// carries — which keeps the comparison with PCBL honest: both sides get
// VC for free and spend their budget on joint information.
//
// Footprint is depth × width counters, priced in the same count-entry
// unit as a label's |PC|.
#ifndef PCBL_BASELINES_CM_SKETCH_H_
#define PCBL_BASELINES_CM_SKETCH_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "baselines/independence.h"
#include "core/estimator.h"
#include "relation/stats.h"
#include "relation/table.h"
#include "util/status.h"

namespace pcbl {

/// Sketch-shape knobs.
struct CmSketchOptions {
  /// Number of hash rows. 3 is the conventional accuracy/space trade-off.
  int depth = 3;
  /// Counters per row.
  int64_t width = 64;
  /// Seed for the per-row hash functions (deterministic by default).
  uint64_t seed = 0x5bd1e995;
};

/// Count-Min sketch over the full patterns (complete rows) of a table.
class CmSketchEstimator : public CardinalityEstimator {
 public:
  /// Builds the sketch in one scan. Rows containing NULLs are skipped (they
  /// form no full pattern, matching FullPatternIndex). `vc` may be shared;
  /// when null it is computed.
  static Result<CmSketchEstimator> Build(
      const Table& table, const CmSketchOptions& options = {},
      std::shared_ptr<const ValueCounts> vc = nullptr);

  /// Builds a sketch whose counter footprint is at most `budget` entries
  /// (depth fixed at options.depth; width = budget / depth, at least 1).
  static Result<CmSketchEstimator> BuildForBudget(
      const Table& table, int64_t budget,
      std::shared_ptr<const ValueCounts> vc = nullptr);

  double EstimateCount(const Pattern& p) const override;
  double EstimateFullPattern(const ValueId* codes, int width) const override;
  std::string name() const override { return "CM-sketch"; }

  /// depth × width counters.
  int64_t FootprintEntries() const override {
    return static_cast<int64_t>(depth_) * width_;
  }

  int depth() const { return depth_; }
  int64_t width() const { return width_; }

  /// The sketch's point lookup (min over rows) for a full code vector.
  int64_t PointQuery(const ValueId* codes) const;

 private:
  CmSketchEstimator() = default;

  uint64_t RowHash(int row, const ValueId* codes) const;

  int table_width_ = 0;
  int depth_ = 0;
  int64_t width_ = 0;
  std::vector<uint64_t> row_seeds_;
  std::vector<int64_t> counters_;  // depth * width, row-major
  std::optional<IndependenceEstimator> fallback_;
};

}  // namespace pcbl

#endif  // PCBL_BASELINES_CM_SKETCH_H_
