#include "baselines/independence.h"

#include "util/logging.h"

namespace pcbl {

IndependenceEstimator IndependenceEstimator::Build(
    const Table& table, std::shared_ptr<const ValueCounts> vc) {
  IndependenceEstimator e;
  e.table_rows_ = table.num_rows();
  e.vc_ = vc != nullptr ? std::move(vc)
                        : std::make_shared<const ValueCounts>(
                              ValueCounts::Compute(table));
  e.inv_totals_.assign(static_cast<size_t>(table.num_attributes()), 0.0);
  for (int a = 0; a < table.num_attributes(); ++a) {
    int64_t t = e.vc_->NonNullTotal(a);
    e.inv_totals_[static_cast<size_t>(a)] =
        t > 0 ? 1.0 / static_cast<double>(t) : 0.0;
  }
  return e;
}

double IndependenceEstimator::EstimateCount(const Pattern& p) const {
  double est = static_cast<double>(table_rows_);
  for (const PatternTerm& t : p.terms()) {
    est *= static_cast<double>(vc_->Count(t.attr, t.value)) *
           inv_totals_[static_cast<size_t>(t.attr)];
  }
  return est;
}

double IndependenceEstimator::EstimateFullPattern(const ValueId* codes,
                                                  int width) const {
  double est = static_cast<double>(table_rows_);
  for (int a = 0; a < width; ++a) {
    est *= static_cast<double>(vc_->Count(a, codes[a])) *
           inv_totals_[static_cast<size_t>(a)];
  }
  return est;
}

}  // namespace pcbl
