// Uniform-sampling cardinality estimation — the "Sample" baseline of
// Sec. IV-B.
//
// A uniform random sample S of the dataset is stored; the count of a
// pattern p is estimated as c_S(p) * |D| / |S|. Following the paper, the
// sample size that corresponds to a label bound x is x + |VC| entries,
// and reported results average over several seeds.
#ifndef PCBL_BASELINES_SAMPLING_H_
#define PCBL_BASELINES_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "core/estimator.h"
#include "relation/table.h"

namespace pcbl {

/// Estimates pattern counts by scaling counts observed in a uniform
/// random sample of the rows.
class SamplingEstimator : public CardinalityEstimator {
 public:
  /// Draws `sample_size` rows without replacement (clamped to |D|).
  static SamplingEstimator Build(const Table& table, int64_t sample_size,
                                 uint64_t seed);

  double EstimateCount(const Pattern& p) const override;
  double EstimateFullPattern(const ValueId* codes, int width) const override;
  std::string name() const override { return "Sample"; }
  int64_t FootprintEntries() const override { return num_sample_rows_; }

  int64_t sample_rows() const { return num_sample_rows_; }
  int64_t table_rows() const { return table_rows_; }

 private:
  SamplingEstimator() = default;

  int width_ = 0;
  int64_t table_rows_ = 0;
  int64_t num_sample_rows_ = 0;
  double scale_ = 0.0;             // |D| / |S|
  std::vector<ValueId> rows_;      // row-major sample, sorted lexicographic
  std::vector<int64_t> row_mult_;  // multiplicity of each distinct row
  std::vector<ValueId> distinct_;  // row-major distinct sample rows
};

}  // namespace pcbl

#endif  // PCBL_BASELINES_SAMPLING_H_
