#include "baselines/pairwise_histogram.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/logging.h"

namespace pcbl {

namespace {

uint64_t PairKey(ValueId a, ValueId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

// One joint group-by over rows where both attributes are non-NULL.
struct PairScan {
  std::unordered_map<uint64_t, int64_t> joint;
  std::unordered_map<ValueId, int64_t> marginal_a;
  std::unordered_map<ValueId, int64_t> marginal_b;
  int64_t rows = 0;
};

PairScan ScanPair(const Table& table, int attr_a, int attr_b) {
  PairScan scan;
  const ValueId* col_a = table.column(attr_a).data();
  const ValueId* col_b = table.column(attr_b).data();
  const int64_t rows = table.num_rows();
  for (int64_t r = 0; r < rows; ++r) {
    const ValueId va = col_a[r];
    const ValueId vb = col_b[r];
    if (IsNull(va) || IsNull(vb)) continue;
    ++scan.joint[PairKey(va, vb)];
    ++scan.marginal_a[va];
    ++scan.marginal_b[vb];
    ++scan.rows;
  }
  return scan;
}

double MutualInformationFromScan(const PairScan& scan) {
  if (scan.rows == 0) return 0.0;
  const double n = static_cast<double>(scan.rows);
  double mi = 0.0;
  for (const auto& [key, count] : scan.joint) {
    const ValueId va = static_cast<ValueId>(key >> 32);
    const ValueId vb = static_cast<ValueId>(key & 0xffffffffULL);
    const double pxy = static_cast<double>(count) / n;
    const double px = static_cast<double>(scan.marginal_a.at(va)) / n;
    const double py = static_cast<double>(scan.marginal_b.at(vb)) / n;
    mi += pxy * std::log2(pxy / (px * py));
  }
  // Numerical noise can leave a tiny negative residue for independent data.
  return std::max(mi, 0.0);
}

}  // namespace

double MutualInformationBits(const Table& table, int attr_a, int attr_b) {
  return MutualInformationFromScan(ScanPair(table, attr_a, attr_b));
}

Result<PairwiseHistogramEstimator> PairwiseHistogramEstimator::Build(
    const Table& table, const PairwiseHistogramOptions& options,
    std::shared_ptr<const ValueCounts> vc) {
  if (options.budget < 0) {
    return InvalidArgumentError("pairwise histogram budget must be >= 0");
  }
  PairwiseHistogramEstimator est;
  est.width_ = table.num_attributes();
  est.table_rows_ = table.num_rows();
  est.vc_ = vc != nullptr
                ? std::move(vc)
                : std::make_shared<const ValueCounts>(
                      ValueCounts::Compute(table));
  est.inv_totals_.resize(static_cast<size_t>(est.width_), 0.0);
  for (int a = 0; a < est.width_; ++a) {
    const int64_t total = est.vc_->NonNullTotal(a);
    est.inv_totals_[static_cast<size_t>(a)] =
        total > 0 ? 1.0 / static_cast<double>(total) : 0.0;
  }
  est.disjoint_ = options.disjoint_pairs;
  est.pair_of_attr_.assign(static_cast<size_t>(est.width_), -1);

  // Score every pair once; keep the scans so selection reuses them.
  struct Candidate {
    int a;
    int b;
    double mi;
    int64_t entries;
    PairScan scan;
  };
  std::vector<Candidate> candidates;
  for (int a = 0; a < est.width_; ++a) {
    for (int b = a + 1; b < est.width_; ++b) {
      Candidate c;
      c.a = a;
      c.b = b;
      c.scan = ScanPair(table, a, b);
      c.mi = MutualInformationFromScan(c.scan);
      c.entries = static_cast<int64_t>(c.scan.joint.size());
      candidates.push_back(std::move(c));
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) {
              if (x.mi != y.mi) return x.mi > y.mi;
              if (x.entries != y.entries) return x.entries < y.entries;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });

  for (Candidate& c : candidates) {
    if (c.mi < options.min_mutual_information) break;  // sorted: rest worse
    if (est.footprint_ + c.entries > options.budget) continue;
    if (est.disjoint_ &&
        (est.pair_of_attr_[static_cast<size_t>(c.a)] >= 0 ||
         est.pair_of_attr_[static_cast<size_t>(c.b)] >= 0)) {
      continue;
    }
    StoredPair stored;
    stored.attr_a = c.a;
    stored.attr_b = c.b;
    stored.mutual_information = c.mi;
    stored.joint = std::move(c.scan.joint);
    est.footprint_ += c.entries;
    if (est.disjoint_) {
      est.pair_of_attr_[static_cast<size_t>(c.a)] =
          static_cast<int>(est.pairs_.size());
      est.pair_of_attr_[static_cast<size_t>(c.b)] =
          static_cast<int>(est.pairs_.size());
    }
    est.pairs_.push_back(std::move(stored));
  }
  return est;
}

int64_t PairwiseHistogramEstimator::JointCount(size_t i, ValueId va,
                                               ValueId vb) const {
  const auto& joint = pairs_[i].joint;
  const auto it = joint.find(PairKey(va, vb));
  return it == joint.end() ? 0 : it->second;
}

double PairwiseHistogramEstimator::EstimateCount(const Pattern& p) const {
  if (table_rows_ == 0) return 0.0;
  // Bound values by attribute, kNullValue when unbound.
  std::vector<ValueId> bound(static_cast<size_t>(width_), kNullValue);
  for (const PatternTerm& t : p.terms()) {
    bound[static_cast<size_t>(t.attr)] = t.value;
  }
  const double n = static_cast<double>(table_rows_);
  double selectivity = 1.0;
  std::vector<bool> covered(static_cast<size_t>(width_), false);
  // Pairs are stored in MI-descending order; greedily apply every pair
  // whose two attributes are bound and not yet covered (in disjoint mode
  // that is every applicable pair; otherwise a greedy maximal matching).
  for (size_t i = 0; i < pairs_.size(); ++i) {
    const StoredPair& pair = pairs_[i];
    const ValueId va = bound[static_cast<size_t>(pair.attr_a)];
    const ValueId vb = bound[static_cast<size_t>(pair.attr_b)];
    if (IsNull(va) || IsNull(vb)) continue;
    if (covered[static_cast<size_t>(pair.attr_a)] ||
        covered[static_cast<size_t>(pair.attr_b)]) {
      continue;
    }
    selectivity *= static_cast<double>(JointCount(i, va, vb)) / n;
    covered[static_cast<size_t>(pair.attr_a)] = true;
    covered[static_cast<size_t>(pair.attr_b)] = true;
  }
  for (const PatternTerm& t : p.terms()) {
    if (covered[static_cast<size_t>(t.attr)]) continue;
    selectivity *= static_cast<double>(vc_->Count(t.attr, t.value)) *
                   inv_totals_[static_cast<size_t>(t.attr)];
  }
  return n * selectivity;
}

double PairwiseHistogramEstimator::EstimateFullPattern(const ValueId* codes,
                                                       int width) const {
  if (width != width_ || table_rows_ == 0) {
    return CardinalityEstimator::EstimateFullPattern(codes, width);
  }
  const double n = static_cast<double>(table_rows_);
  double selectivity = 1.0;
  uint64_t covered = 0;
  for (size_t i = 0; i < pairs_.size(); ++i) {
    const StoredPair& pair = pairs_[i];
    const uint64_t mask =
        (1ULL << pair.attr_a) | (1ULL << pair.attr_b);
    if ((covered & mask) != 0) continue;
    selectivity *= static_cast<double>(JointCount(i, codes[pair.attr_a],
                                                  codes[pair.attr_b])) /
                   n;
    covered |= mask;
  }
  for (int a = 0; a < width_; ++a) {
    if ((covered >> a) & 1ULL) continue;
    selectivity *= static_cast<double>(vc_->Count(a, codes[a])) *
                   inv_totals_[static_cast<size_t>(a)];
  }
  return n * selectivity;
}

}  // namespace pcbl
