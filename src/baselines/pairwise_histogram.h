// Dependency-based pairwise synopsis — a reimplementation, for categorical
// data, of the multi-dimensional-histogram comparators the paper surveys
// (Sec. V: [9], [12], [20]; closest to Deshpande et al.'s
// "dependency-based histogram synopses").
//
// The estimator greedily selects disjoint attribute *pairs* in decreasing
// order of mutual information and stores the exact joint counts of each
// selected pair, subject to a total entry budget. Estimation treats the
// selected pairs as independent cliques: a pattern binding both attributes
// of a stored pair contributes the pair's joint selectivity; every other
// bound attribute contributes its 1-D (VC) selectivity.
//
// Unlike a PCBL label — which stores one joint distribution over a single
// attribute set S — the pairwise synopsis spreads its budget across many
// 2-way interactions but can never capture 3-way (or higher) structure.
// The ablation bench quantifies exactly this trade-off.
#ifndef PCBL_BASELINES_PAIRWISE_HISTOGRAM_H_
#define PCBL_BASELINES_PAIRWISE_HISTOGRAM_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/estimator.h"
#include "relation/stats.h"
#include "relation/table.h"
#include "util/status.h"

namespace pcbl {

/// Pair-selection knobs.
struct PairwiseHistogramOptions {
  /// Total joint-count entries to spend across all selected pairs.
  int64_t budget = 100;
  /// Selected pairs must be attribute-disjoint (a matching). Disabling
  /// allows overlapping pairs; estimation then uses, per pattern, a
  /// greedy maximal matching among the applicable pairs.
  bool disjoint_pairs = true;
  /// Pairs whose mutual information (bits) falls below this threshold are
  /// not worth storing and are skipped.
  double min_mutual_information = 1e-9;
};

/// One stored pair with its joint distribution.
struct StoredPair {
  int attr_a = 0;
  int attr_b = 0;
  double mutual_information = 0.0;  // bits
  /// Joint counts keyed by (a_value << 32) | b_value.
  std::unordered_map<uint64_t, int64_t> joint;
};

/// Selectivity model from exact 1-D counts plus selected 2-D joints.
class PairwiseHistogramEstimator : public CardinalityEstimator {
 public:
  /// Scans the table once per candidate pair (O(|A|^2) group-bys, each
  /// O(rows)) to score and select pairs. `vc` may be shared; when null it
  /// is computed.
  static Result<PairwiseHistogramEstimator> Build(
      const Table& table, const PairwiseHistogramOptions& options = {},
      std::shared_ptr<const ValueCounts> vc = nullptr);

  double EstimateCount(const Pattern& p) const override;
  double EstimateFullPattern(const ValueId* codes, int width) const override;
  std::string name() const override { return "2D-hist"; }

  /// Σ joint entries over the selected pairs.
  int64_t FootprintEntries() const override { return footprint_; }

  const std::vector<StoredPair>& pairs() const { return pairs_; }

 private:
  PairwiseHistogramEstimator() = default;

  // Joint count of pair index `i` at (va, vb); 0 when unseen.
  int64_t JointCount(size_t i, ValueId va, ValueId vb) const;

  int width_ = 0;
  int64_t table_rows_ = 0;
  std::shared_ptr<const ValueCounts> vc_;
  std::vector<double> inv_totals_;
  std::vector<StoredPair> pairs_;
  // attr -> index into pairs_ covering it, or -1 (disjoint mode only).
  std::vector<int> pair_of_attr_;
  bool disjoint_ = true;
  int64_t footprint_ = 0;
};

/// Mutual information (bits) between two attributes of a table, from exact
/// joint counts over non-NULL rows. Exposed for tests and diagnostics.
double MutualInformationBits(const Table& table, int attr_a, int attr_b);

}  // namespace pcbl

#endif  // PCBL_BASELINES_PAIRWISE_HISTOGRAM_H_
