// PostgreSQL-style 1-D statistics estimator — the "Postgres" baseline of
// Sec. IV-B.
//
// The PostgreSQL planner estimates equality selectivity per column from
// pg_statistic: a most-common-values (MCV) list with frequencies (at most
// `stats_target` entries, default 100) and an n_distinct estimate; values
// outside the MCV list share the residual frequency uniformly. Conjunctive
// predicates multiply per-column selectivities (attribute independence),
// and the row estimate is clamped to at least one row. This module
// reimplements exactly that arithmetic. Statistics can be computed from
// the full table or, like ANALYZE, from a random sample of rows.
#ifndef PCBL_BASELINES_POSTGRES_H_
#define PCBL_BASELINES_POSTGRES_H_

#include <cstdint>
#include <vector>

#include "core/estimator.h"
#include "relation/table.h"

namespace pcbl {

/// Statistics-collection knobs, mirroring ANALYZE.
struct PostgresOptions {
  /// Per-column MCV list capacity (default_statistics_target).
  int stats_target = 100;
  /// Rows sampled by ANALYZE; <= 0 means scan the full table (then the
  /// MCV frequencies are exact).
  int64_t analyze_sample_rows = -1;
  /// Seed for the ANALYZE sample.
  uint64_t seed = 0x9e3779b9;
};

/// Per-attribute equality-selectivity model from 1-D statistics.
class PostgresEstimator : public CardinalityEstimator {
 public:
  static PostgresEstimator Build(const Table& table,
                                 const PostgresOptions& options = {});

  double EstimateCount(const Pattern& p) const override;
  double EstimateFullPattern(const ValueId* codes, int width) const override;
  std::string name() const override { return "Postgres"; }

  /// Entries stored across all MCV lists (the comparable footprint).
  int64_t FootprintEntries() const override;

  /// Equality selectivity P[A_attr = v] under the model.
  double Selectivity(int attr, ValueId v) const;

 private:
  PostgresEstimator() = default;

  struct ColumnStats {
    // mcv_freq[v] >= 0 when v is in the MCV list, else -1.
    std::vector<double> mcv_freq;  // indexed by ValueId
    int mcv_entries = 0;
    double mcv_total_freq = 0.0;
    double null_frac = 0.0;
    int64_t n_distinct = 0;
    double residual_sel = 0.0;  // selectivity of a non-MCV value
  };

  int width_ = 0;
  int64_t table_rows_ = 0;
  std::vector<ColumnStats> columns_;
};

}  // namespace pcbl

#endif  // PCBL_BASELINES_POSTGRES_H_
