#include "baselines/cm_sketch.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/hash.h"
#include "util/logging.h"

namespace pcbl {

Result<CmSketchEstimator> CmSketchEstimator::Build(
    const Table& table, const CmSketchOptions& options,
    std::shared_ptr<const ValueCounts> vc) {
  if (options.depth < 1) {
    return InvalidArgumentError("CM sketch depth must be at least 1");
  }
  if (options.width < 1) {
    return InvalidArgumentError("CM sketch width must be at least 1");
  }
  CmSketchEstimator sketch;
  sketch.table_width_ = table.num_attributes();
  sketch.depth_ = options.depth;
  sketch.width_ = options.width;
  sketch.row_seeds_.reserve(static_cast<size_t>(options.depth));
  for (int r = 0; r < options.depth; ++r) {
    sketch.row_seeds_.push_back(
        Mix64(options.seed + 0x9e3779b97f4a7c15ULL * (r + 1)));
  }
  sketch.counters_.assign(
      static_cast<size_t>(options.depth) * static_cast<size_t>(options.width),
      0);
  sketch.fallback_ = IndependenceEstimator::Build(table, std::move(vc));

  const int64_t rows = table.num_rows();
  const int width = sketch.table_width_;
  std::vector<ValueId> codes(static_cast<size_t>(width));
  // Hoist column pointers out of the row loop (hot path).
  std::vector<const ValueId*> columns(static_cast<size_t>(width));
  for (int a = 0; a < width; ++a) columns[a] = table.column(a).data();
  for (int64_t row = 0; row < rows; ++row) {
    bool has_null = false;
    for (int a = 0; a < width; ++a) {
      codes[static_cast<size_t>(a)] = columns[a][row];
      if (IsNull(codes[static_cast<size_t>(a)])) {
        has_null = true;
        break;
      }
    }
    if (has_null) continue;
    for (int r = 0; r < sketch.depth_; ++r) {
      const uint64_t h = sketch.RowHash(r, codes.data());
      ++sketch.counters_[static_cast<size_t>(r) *
                             static_cast<size_t>(sketch.width_) +
                         h % static_cast<uint64_t>(sketch.width_)];
    }
  }
  return sketch;
}

Result<CmSketchEstimator> CmSketchEstimator::BuildForBudget(
    const Table& table, int64_t budget,
    std::shared_ptr<const ValueCounts> vc) {
  if (budget < 1) {
    return InvalidArgumentError("CM sketch budget must be positive");
  }
  CmSketchOptions options;
  options.depth = static_cast<int>(std::min<int64_t>(options.depth, budget));
  options.width = std::max<int64_t>(budget / options.depth, 1);
  return Build(table, options, std::move(vc));
}

uint64_t CmSketchEstimator::RowHash(int row, const ValueId* codes) const {
  uint64_t h = row_seeds_[static_cast<size_t>(row)];
  for (int a = 0; a < table_width_; ++a) {
    h = HashCombine(h, codes[a]);
  }
  return h;
}

int64_t CmSketchEstimator::PointQuery(const ValueId* codes) const {
  int64_t best = std::numeric_limits<int64_t>::max();
  for (int r = 0; r < depth_; ++r) {
    const uint64_t h = RowHash(r, codes);
    best = std::min(
        best, counters_[static_cast<size_t>(r) * static_cast<size_t>(width_) +
                        h % static_cast<uint64_t>(width_)]);
  }
  return best;
}

double CmSketchEstimator::EstimateFullPattern(const ValueId* codes,
                                              int width) const {
  if (width == table_width_) {
    return static_cast<double>(PointQuery(codes));
  }
  return CardinalityEstimator::EstimateFullPattern(codes, width);
}

double CmSketchEstimator::EstimateCount(const Pattern& p) const {
  if (p.size() == table_width_) {
    std::vector<ValueId> codes(static_cast<size_t>(table_width_));
    for (const PatternTerm& t : p.terms()) {
      codes[static_cast<size_t>(t.attr)] = t.value;
    }
    return static_cast<double>(PointQuery(codes.data()));
  }
  // The sketch keys on complete rows; partial patterns use the VC-only
  // independence estimate (the information every label also carries).
  return fallback_->EstimateCount(p);
}

}  // namespace pcbl
