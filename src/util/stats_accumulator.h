// Streaming accumulator for count / mean / max / standard deviation,
// used by the error evaluators and the experiment harness.
#ifndef PCBL_UTIL_STATS_ACCUMULATOR_H_
#define PCBL_UTIL_STATS_ACCUMULATOR_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace pcbl {

/// Welford-style online accumulator of summary statistics.
class StatsAccumulator {
 public:
  /// Adds one observation.
  void Add(double x) {
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    max_ = std::max(max_, x);
    min_ = std::min(min_, x);
    sum_ += x;
  }

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double max() const {
    return count_ == 0 ? 0.0 : max_;
  }
  double min() const {
    return count_ == 0 ? 0.0 : min_;
  }

  /// Population variance (divides by n).
  double variance() const {
    return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
  }

  /// Population standard deviation.
  double stddev() const { return std::sqrt(variance()); }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double max_ = -std::numeric_limits<double>::infinity();
  double min_ = std::numeric_limits<double>::infinity();
};

}  // namespace pcbl

#endif  // PCBL_UTIL_STATS_ACCUMULATOR_H_
