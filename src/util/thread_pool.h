// A small fixed-size thread pool and a blocking parallel-for helper.
//
// The label search's ranking phase evaluates the error of every surviving
// candidate label — independent, read-only work over immutable tables —
// which parallelizes embarrassingly. ParallelFor is the workhorse;
// ThreadPool is the reusable substrate for longer-lived pipelines.
#ifndef PCBL_UTIL_THREAD_POOL_H_
#define PCBL_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pcbl {

/// Fixed-size worker pool executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void WaitIdle();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  int64_t in_flight_ = 0;  // queued + running tasks
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(0..count-1), spreading indices over up to `num_threads` threads
/// (the calling thread included). Blocks until every call returned. With
/// num_threads <= 1 this is a plain serial loop — callers get identical
/// behaviour, just slower. `fn` must be safe to call concurrently and must
/// not throw.
void ParallelFor(int64_t count, int num_threads,
                 const std::function<void(int64_t)>& fn);

/// A reasonable default worker count (hardware concurrency, at least 1).
int DefaultThreadCount();

}  // namespace pcbl

#endif  // PCBL_UTIL_THREAD_POOL_H_
