// String formatting and parsing helpers (the toolchain's std::format is not
// yet usable, so we provide the small subset the library needs).
#ifndef PCBL_UTIL_STR_H_
#define PCBL_UTIL_STR_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace pcbl {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Concatenates the streamable arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True when `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Lower-cases ASCII.
std::string ToLower(std::string_view s);

/// Strict integer / double parsing (whole string must be consumed).
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// Formats 12345678 as "12,345,678".
std::string WithThousandsSeparators(int64_t value);

/// Formats a fraction as a percent string like "1.04%".
std::string PercentString(double fraction, int decimals = 2);

}  // namespace pcbl

#endif  // PCBL_UTIL_STR_H_
