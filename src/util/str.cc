#include "util/str.h"

#include <algorithm>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pcbl {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), static_cast<size_t>(needed) + 1, fmt,
                   args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' ||
                   s[b] == '\n')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n')) {
    --e;
  }
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

Result<int64_t> ParseInt64(std::string_view s) {
  std::string_view t = Trim(s);
  if (t.empty()) return InvalidArgumentError("empty integer string");
  std::string buf(t);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return OutOfRangeError(StrCat("integer out of range: '", buf, "'"));
  }
  if (end != buf.c_str() + buf.size()) {
    return InvalidArgumentError(StrCat("not an integer: '", buf, "'"));
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  std::string_view t = Trim(s);
  if (t.empty()) return InvalidArgumentError("empty double string");
  std::string buf(t);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return OutOfRangeError(StrCat("double out of range: '", buf, "'"));
  }
  if (end != buf.c_str() + buf.size()) {
    return InvalidArgumentError(StrCat("not a double: '", buf, "'"));
  }
  return v;
}

std::string WithThousandsSeparators(int64_t value) {
  bool negative = value < 0;
  // Handle INT64_MIN safely via unsigned negation.
  uint64_t mag = negative ? (~static_cast<uint64_t>(value) + 1)
                          : static_cast<uint64_t>(value);
  std::string digits = std::to_string(mag);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string PercentString(double fraction, int decimals) {
  return StrFormat("%.*f%%", decimals, fraction * 100.0);
}

}  // namespace pcbl
