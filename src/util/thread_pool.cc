#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace pcbl {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

void ParallelFor(int64_t count, int num_threads,
                 const std::function<void(int64_t)>& fn) {
  if (count <= 0) return;
  const int threads = static_cast<int>(
      std::min<int64_t>(std::max(1, num_threads), count));
  if (threads == 1) {
    for (int64_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<int64_t> next{0};
  const auto worker = [&] {
    for (int64_t i; (i = next.fetch_add(1, std::memory_order_relaxed)) <
                    count;) {
      fn(i);
    }
  };
  std::vector<std::thread> extra;
  extra.reserve(static_cast<size_t>(threads - 1));
  for (int t = 0; t < threads - 1; ++t) extra.emplace_back(worker);
  worker();  // the calling thread participates
  for (std::thread& th : extra) th.join();
}

int DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace pcbl
