// Minimal logging and invariant-checking facilities.
//
// PCBL_CHECK(cond) aborts on violated invariants in all builds;
// PCBL_DCHECK(cond) only in debug builds. PCBL_LOG(level) << ... writes a
// timestamped line to stderr when `level` is at or above the active
// threshold (settable via SetLogLevel or the PCBL_LOG_LEVEL env var).
#ifndef PCBL_UTIL_LOGGING_H_
#define PCBL_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace pcbl {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the minimum level that is actually emitted.
void SetLogLevel(LogLevel level);

/// Current minimum emitted level.
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the log statement is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace pcbl

// Usage: PCBL_LOG(Info) << "message " << value;
#define PCBL_LOG(level)                                                    \
  if (static_cast<int>(::pcbl::LogLevel::k##level) <                       \
      static_cast<int>(::pcbl::GetLogLevel())) {                           \
  } else /* NOLINT */                                                      \
    ::pcbl::internal::LogMessage(::pcbl::LogLevel::k##level, __FILE__,     \
                                 __LINE__)                                 \
        .stream()

#define PCBL_LOG_IF(level, cond) \
  if (cond) PCBL_LOG(level)

#define PCBL_CHECK(cond)                                                   \
  while (!(cond))                                                          \
  ::pcbl::internal::LogMessage(::pcbl::LogLevel::kFatal, __FILE__,         \
                               __LINE__)                                   \
      .stream()                                                            \
      << "Check failed: " #cond " "

#define PCBL_CHECK_EQ(a, b) PCBL_CHECK((a) == (b))
#define PCBL_CHECK_NE(a, b) PCBL_CHECK((a) != (b))
#define PCBL_CHECK_LE(a, b) PCBL_CHECK((a) <= (b))
#define PCBL_CHECK_LT(a, b) PCBL_CHECK((a) < (b))
#define PCBL_CHECK_GE(a, b) PCBL_CHECK((a) >= (b))
#define PCBL_CHECK_GT(a, b) PCBL_CHECK((a) > (b))

#ifdef NDEBUG
#define PCBL_DCHECK(cond) \
  while (false) PCBL_CHECK(cond)
#else
#define PCBL_DCHECK(cond) PCBL_CHECK(cond)
#endif

#endif  // PCBL_UTIL_LOGGING_H_
