#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/logging.h"
#include "util/str.h"

namespace pcbl {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Int(int64_t i) {
  JsonValue v;
  v.type_ = Type::kInt;
  v.int_ = i;
  return v;
}

JsonValue JsonValue::Double(double d) {
  JsonValue v;
  v.type_ = Type::kDouble;
  v.double_ = d;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

Result<bool> JsonValue::GetBool() const {
  if (!is_bool()) return InvalidArgumentError("JSON value is not a bool");
  return bool_;
}

Result<int64_t> JsonValue::GetInt() const {
  if (is_int()) return int_;
  if (is_double() && double_ == std::floor(double_)) {
    return static_cast<int64_t>(double_);
  }
  return InvalidArgumentError("JSON value is not an integer");
}

Result<double> JsonValue::GetDouble() const {
  if (is_double()) return double_;
  if (is_int()) return static_cast<double>(int_);
  return InvalidArgumentError("JSON value is not a number");
}

Result<std::string> JsonValue::GetString() const {
  if (!is_string()) return InvalidArgumentError("JSON value is not a string");
  return string_;
}

void JsonValue::Append(JsonValue v) {
  PCBL_DCHECK(is_array()) << "Append on non-array JSON value";
  array_.push_back(std::move(v));
}

void JsonValue::Set(std::string key, JsonValue v) {
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
}

Result<const JsonValue*> JsonValue::Find(std::string_view key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return NotFoundError(StrCat("JSON object has no member '", key, "'"));
}

namespace {

void EscapeString(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void Indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out.push_back('\n');
  out.append(static_cast<size_t>(indent * depth), ' ');
}

}  // namespace

void JsonValue::DumpTo(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      out += std::to_string(int_);
      break;
    case Type::kDouble: {
      if (std::isfinite(double_)) {
        out += StrFormat("%.17g", double_);
      } else {
        out += "null";  // JSON has no inf/nan
      }
      break;
    }
    case Type::kString:
      EscapeString(string_, out);
      break;
    case Type::kArray: {
      out.push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        Indent(out, indent, depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) Indent(out, indent, depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out.push_back(',');
        Indent(out, indent, depth + 1);
        EscapeString(object_[i].first, out);
        out.push_back(':');
        if (indent >= 0) out.push_back(' ');
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) Indent(out, indent, depth);
      out.push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    PCBL_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return InvalidArgumentError(
          StrCat("trailing characters at offset ", pos_));
    }
    return v;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    if (pos_ >= text_.size()) {
      return InvalidArgumentError("unexpected end of JSON input");
    }
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        PCBL_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::String(std::move(s));
      }
      case 't':
        return ParseLiteral("true", JsonValue::Bool(true));
      case 'f':
        return ParseLiteral("false", JsonValue::Bool(false));
      case 'n':
        return ParseLiteral("null", JsonValue::Null());
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseLiteral(std::string_view lit, JsonValue value) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return InvalidArgumentError(
          StrCat("invalid literal at offset ", pos_));
    }
    pos_ += lit.size();
    return value;
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    bool is_double = false;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      if (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E') {
        is_double = true;
      }
      ++pos_;
    }
    std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") {
      return InvalidArgumentError(
          StrCat("invalid number at offset ", start));
    }
    if (!is_double) {
      auto v = ParseInt64(tok);
      if (v.ok()) return JsonValue::Int(*v);
      // Fall through to double for out-of-range integers.
    }
    PCBL_ASSIGN_OR_RETURN(double d, ParseDouble(tok));
    return JsonValue::Double(d);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) {
      return InvalidArgumentError(
          StrCat("expected '\"' at offset ", pos_));
    }
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return InvalidArgumentError("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return InvalidArgumentError("invalid \\u escape digit");
            }
          }
          // Encode as UTF-8 (basic multilingual plane only).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return InvalidArgumentError(
              StrCat("invalid escape '\\", std::string(1, e), "'"));
      }
    }
    return InvalidArgumentError("unterminated string");
  }

  Result<JsonValue> ParseArray() {
    Consume('[');
    JsonValue arr = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    while (true) {
      SkipWhitespace();
      PCBL_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      arr.Append(std::move(v));
      SkipWhitespace();
      if (Consume(']')) return arr;
      if (!Consume(',')) {
        return InvalidArgumentError(
            StrCat("expected ',' or ']' at offset ", pos_));
      }
    }
  }

  Result<JsonValue> ParseObject() {
    Consume('{');
    JsonValue obj = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    while (true) {
      SkipWhitespace();
      PCBL_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) {
        return InvalidArgumentError(
            StrCat("expected ':' at offset ", pos_));
      }
      SkipWhitespace();
      PCBL_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      obj.Set(std::move(key), std::move(v));
      SkipWhitespace();
      if (Consume('}')) return obj;
      if (!Consume(',')) {
        return InvalidArgumentError(
            StrCat("expected ',' or '}' at offset ", pos_));
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace pcbl
