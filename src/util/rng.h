// Deterministic pseudo-random number generation (PCG32) and the discrete
// distributions used by the synthetic workload generators.
//
// The generators must be reproducible across platforms and runs, so we ship
// our own PRNG instead of relying on implementation-defined std::
// distributions.
#ifndef PCBL_UTIL_RNG_H_
#define PCBL_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace pcbl {

/// PCG32 (XSH-RR variant): small, fast, statistically strong PRNG.
class Rng {
 public:
  /// Seeds the generator; distinct seeds give independent-looking streams.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    state_ = 0;
    inc_ = (seed << 1u) | 1u;
    Next32();
    state_ += 0x853c49e6748fea9bULL + seed;
    Next32();
  }

  /// Uniform 32-bit value.
  uint32_t Next32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
  }

  /// Uniform 64-bit value.
  uint64_t Next64() {
    return (static_cast<uint64_t>(Next32()) << 32) | Next32();
  }

  /// Uniform integer in [0, bound) with Lemire-style rejection to avoid
  /// modulo bias. `bound` must be > 0.
  uint32_t UniformInt(uint32_t bound) {
    PCBL_DCHECK(bound > 0);
    uint64_t m = static_cast<uint64_t>(Next32()) * bound;
    uint32_t low = static_cast<uint32_t>(m);
    if (low < bound) {
      uint32_t threshold = (~bound + 1u) % bound;
      while (low < threshold) {
        m = static_cast<uint64_t>(Next32()) * bound;
        low = static_cast<uint32_t>(m);
      }
    }
    return static_cast<uint32_t>(m >> 32);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    PCBL_DCHECK(lo <= hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<int64_t>(Next64());  // full 64-bit span
    // For spans that fit in 32 bits use the unbiased path.
    if (span <= 0xffffffffULL) {
      return lo + static_cast<int64_t>(UniformInt(static_cast<uint32_t>(span)));
    }
    return lo + static_cast<int64_t>(Next64() % span);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Gaussian via Box-Muller (no caching; good enough for data generation).
  double Gaussian(double mean = 0.0, double stddev = 1.0);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = UniformInt(static_cast<uint32_t>(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (order unspecified).
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

 private:
  uint64_t state_ = 0;
  uint64_t inc_ = 0;
};

/// Samples from an explicit discrete distribution by inverse-CDF lookup.
class DiscreteDistribution {
 public:
  /// `weights` need not be normalized; must be non-empty with a positive sum.
  explicit DiscreteDistribution(const std::vector<double>& weights);

  /// Draws an index in [0, size()).
  int Sample(Rng& rng) const;

  size_t size() const { return cdf_.size(); }

  /// Normalized probability of index i.
  double Probability(size_t i) const;

 private:
  std::vector<double> cdf_;  // strictly increasing, back() == 1.0
};

/// Zipf(s) distribution over ranks {0, ..., n-1}: P(k) ∝ 1/(k+1)^s.
class ZipfDistribution {
 public:
  ZipfDistribution(int n, double s);

  int Sample(Rng& rng) const { return dist_.Sample(rng); }
  double Probability(int k) const { return dist_.Probability(k); }
  int size() const { return static_cast<int>(dist_.size()); }

 private:
  DiscreteDistribution dist_;
};

}  // namespace pcbl

#endif  // PCBL_UTIL_RNG_H_
