// AttrMask: a set of attribute indices represented as a 64-bit bitmask.
//
// Attribute subsets are the vertices of the paper's label lattice
// (Definition 3.4); all lattice manipulation — parent/child relations, the
// canonical-extension operator gen(S) (Definition 3.5), subset iteration —
// operates on this type. Supports up to 64 attributes, far beyond the
// paper's datasets (7-24 attributes).
#ifndef PCBL_UTIL_ATTR_MASK_H_
#define PCBL_UTIL_ATTR_MASK_H_

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "util/logging.h"

namespace pcbl {

/// Maximum number of attributes representable in an AttrMask.
inline constexpr int kMaxAttributes = 64;

/// A subset of attribute indices [0, 64), stored as a bitmask.
class AttrMask {
 public:
  /// The empty set.
  constexpr AttrMask() : bits_(0) {}

  /// Constructs directly from raw bits.
  explicit constexpr AttrMask(uint64_t bits) : bits_(bits) {}

  /// Constructs from a list of attribute indices.
  static AttrMask FromIndices(const std::vector<int>& indices) {
    AttrMask m;
    for (int i : indices) m.Set(i);
    return m;
  }

  /// The full set {0, ..., n-1}.
  static AttrMask All(int n) {
    PCBL_DCHECK(n >= 0 && n <= kMaxAttributes);
    if (n == 64) return AttrMask(~0ULL);
    return AttrMask((1ULL << n) - 1);
  }

  /// The singleton {i}.
  static AttrMask Single(int i) {
    PCBL_DCHECK(i >= 0 && i < kMaxAttributes);
    return AttrMask(1ULL << i);
  }

  uint64_t bits() const { return bits_; }
  bool empty() const { return bits_ == 0; }

  /// Number of attributes in the set.
  int Count() const { return std::popcount(bits_); }

  bool Test(int i) const {
    PCBL_DCHECK(i >= 0 && i < kMaxAttributes);
    return (bits_ >> i) & 1ULL;
  }

  void Set(int i) {
    PCBL_DCHECK(i >= 0 && i < kMaxAttributes);
    bits_ |= (1ULL << i);
  }

  void Clear(int i) {
    PCBL_DCHECK(i >= 0 && i < kMaxAttributes);
    bits_ &= ~(1ULL << i);
  }

  /// Returns this ∪ {i}.
  AttrMask With(int i) const {
    AttrMask m = *this;
    m.Set(i);
    return m;
  }

  /// Returns this \ {i}.
  AttrMask Without(int i) const {
    AttrMask m = *this;
    m.Clear(i);
    return m;
  }

  AttrMask Union(AttrMask other) const { return AttrMask(bits_ | other.bits_); }
  AttrMask Intersect(AttrMask other) const {
    return AttrMask(bits_ & other.bits_);
  }
  AttrMask Minus(AttrMask other) const {
    return AttrMask(bits_ & ~other.bits_);
  }

  /// True when this ⊆ other.
  bool IsSubsetOf(AttrMask other) const {
    return (bits_ & other.bits_) == bits_;
  }

  /// True when this ⊂ other (strict).
  bool IsStrictSubsetOf(AttrMask other) const {
    return IsSubsetOf(other) && bits_ != other.bits_;
  }

  /// Smallest attribute index in the set; requires non-empty.
  int MinIndex() const {
    PCBL_DCHECK(!empty());
    return std::countr_zero(bits_);
  }

  /// Largest attribute index in the set — the paper's idx(S); requires
  /// non-empty.
  int MaxIndex() const {
    PCBL_DCHECK(!empty());
    return 63 - std::countl_zero(bits_);
  }

  /// The member indices in increasing order.
  std::vector<int> ToIndices() const {
    std::vector<int> out;
    out.reserve(Count());
    uint64_t b = bits_;
    while (b != 0) {
      int i = std::countr_zero(b);
      out.push_back(i);
      b &= b - 1;
    }
    return out;
  }

  /// Renders as "{1,4,7}".
  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    for (int i : ToIndices()) {
      if (!first) out += ",";
      out += std::to_string(i);
      first = false;
    }
    out += "}";
    return out;
  }

  bool operator==(const AttrMask& other) const { return bits_ == other.bits_; }
  bool operator!=(const AttrMask& other) const { return bits_ != other.bits_; }
  /// Arbitrary but total order (by raw bits), for use in ordered containers.
  bool operator<(const AttrMask& other) const { return bits_ < other.bits_; }

 private:
  uint64_t bits_;
};

/// Iterates over the set bits of a mask: `for (int i : AttrMaskBits(m))`.
class AttrMaskBits {
 public:
  explicit AttrMaskBits(AttrMask mask) : bits_(mask.bits()) {}

  class Iterator {
   public:
    explicit Iterator(uint64_t bits) : bits_(bits) {}
    int operator*() const { return std::countr_zero(bits_); }
    Iterator& operator++() {
      bits_ &= bits_ - 1;
      return *this;
    }
    bool operator!=(const Iterator& other) const {
      return bits_ != other.bits_;
    }

   private:
    uint64_t bits_;
  };

  Iterator begin() const { return Iterator(bits_); }
  Iterator end() const { return Iterator(0); }

 private:
  uint64_t bits_;
};

}  // namespace pcbl

#endif  // PCBL_UTIL_ATTR_MASK_H_
