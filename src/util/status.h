// Lightweight Status / Result<T> error handling, modeled on the
// absl::Status / absl::StatusOr idiom. The library does not use C++
// exceptions (per the Google C++ style guide); fallible operations return
// Status or Result<T> instead.
#ifndef PCBL_UTIL_STATUS_H_
#define PCBL_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace pcbl {

/// Canonical error codes, a pragmatic subset of the gRPC/absl canon.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kAlreadyExists = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kIOError = 8,
  /// Transient resource loss (e.g. a registry-evicted counting service);
  /// retrying against a freshly acquired resource is expected to succeed.
  kUnavailable = 9,
  /// A quota or budget is saturated right now (e.g. `pcbl serve` shedding
  /// a request because the tenant's in-flight quota is full); retrying
  /// after backing off is expected to succeed.
  kResourceExhausted = 10,
};

/// Human-readable name of a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A success-or-error outcome carrying a code and a message.
///
/// Status is cheap to copy in the OK case (no allocation) and carries a
/// heap-allocated message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns an OK status.
  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Convenience constructors mirroring absl's.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status AlreadyExistsError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status IOError(std::string message);
Status UnavailableError(std::string message);
Status ResourceExhaustedError(std::string message);

/// A value-or-error result, modeled on absl::StatusOr<T>.
///
/// Accessing value() on an error result aborts in debug builds and is
/// undefined behaviour in release builds; callers must check ok() first.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, like StatusOr).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status. `status.ok()` must be false.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status(StatusCode::kInternal,
                       "Result constructed from OK status without a value");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is held.
  const Status& status() const { return status_; }

  /// The held value; requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds.
};

// Propagates errors to the caller, absl-style.
#define PCBL_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::pcbl::Status pcbl_status_tmp_ = (expr);       \
    if (!pcbl_status_tmp_.ok()) return pcbl_status_tmp_; \
  } while (false)

#define PCBL_CONCAT_IMPL_(a, b) a##b
#define PCBL_CONCAT_(a, b) PCBL_CONCAT_IMPL_(a, b)

// Assigns the value of a Result<T> expression to `lhs`, or returns its
// error status from the enclosing function.
#define PCBL_ASSIGN_OR_RETURN(lhs, expr)                      \
  auto PCBL_CONCAT_(pcbl_result_, __LINE__) = (expr);         \
  if (!PCBL_CONCAT_(pcbl_result_, __LINE__).ok())             \
    return PCBL_CONCAT_(pcbl_result_, __LINE__).status();     \
  lhs = std::move(PCBL_CONCAT_(pcbl_result_, __LINE__)).value()

}  // namespace pcbl

#endif  // PCBL_UTIL_STATUS_H_
