#include "util/status.h"

namespace pcbl {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status IOError(std::string message) {
  return Status(StatusCode::kIOError, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}

}  // namespace pcbl
