#include "util/logging.h"

#include <chrono>
#include <cstdio>
#include <mutex>

namespace pcbl {
namespace {

LogLevel ResolveInitialLevel() {
  const char* env = std::getenv("PCBL_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarning;
  std::string v(env);
  if (v == "debug" || v == "0") return LogLevel::kDebug;
  if (v == "info" || v == "1") return LogLevel::kInfo;
  if (v == "warning" || v == "2") return LogLevel::kWarning;
  if (v == "error" || v == "3") return LogLevel::kError;
  if (v == "fatal" || v == "4") return LogLevel::kFatal;
  return LogLevel::kWarning;
}

LogLevel& ActiveLevel() {
  static LogLevel level = ResolveInitialLevel();
  return level;
}

std::mutex& LogMutex() {
  static std::mutex mu;
  return mu;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { ActiveLevel() = level; }

LogLevel GetLogLevel() { return ActiveLevel(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip the directory part for readability.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << LevelTag(level) << " [" << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace pcbl
