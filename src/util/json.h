// Minimal JSON document model, writer, and recursive-descent parser.
//
// Supports the subset the library serializes: objects, arrays, strings
// (with \" \\ \/ \b \f \n \r \t and \uXXXX escapes), 64-bit integers,
// doubles, booleans and null. No external dependencies.
#ifndef PCBL_UTIL_JSON_H_
#define PCBL_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace pcbl {

/// A JSON value (tagged union).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Int(int64_t v);
  static JsonValue Double(double v);
  static JsonValue String(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_double() const { return type_ == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; fail (Status) when the type mismatches.
  Result<bool> GetBool() const;
  Result<int64_t> GetInt() const;
  Result<double> GetDouble() const;  // accepts ints too
  Result<std::string> GetString() const;

  /// Array access.
  const std::vector<JsonValue>& array_items() const { return array_; }
  void Append(JsonValue v);

  /// Object access (insertion order preserved for writing).
  const std::vector<std::pair<std::string, JsonValue>>& object_items() const {
    return object_;
  }
  void Set(std::string key, JsonValue v);
  /// Member lookup; NotFound when the key is absent.
  Result<const JsonValue*> Find(std::string_view key) const;

  /// Serializes; `indent` < 0 means compact.
  std::string Dump(int indent = -1) const;

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses a complete JSON document (trailing whitespace allowed).
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace pcbl

#endif  // PCBL_UTIL_JSON_H_
