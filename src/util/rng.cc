#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace pcbl {

double Rng::Gaussian(double mean, double stddev) {
  // Box-Muller; guard against log(0).
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 <= 1e-300) u1 = 1e-300;
  double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(6.283185307179586 * u2);
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  PCBL_CHECK(k >= 0);
  PCBL_CHECK(k <= n);
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(k));
  if (k == 0) return out;
  if (k * 3 >= n) {
    // Dense case: shuffle a full index vector and take a prefix.
    std::vector<int64_t> all(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) all[static_cast<size_t>(i)] = i;
    Shuffle(all);
    out.assign(all.begin(), all.begin() + static_cast<size_t>(k));
    return out;
  }
  // Sparse case: rejection sampling into a set.
  std::unordered_set<int64_t> seen;
  seen.reserve(static_cast<size_t>(k) * 2);
  while (static_cast<int64_t>(out.size()) < k) {
    int64_t x = UniformRange(0, n - 1);
    if (seen.insert(x).second) out.push_back(x);
  }
  return out;
}

DiscreteDistribution::DiscreteDistribution(
    const std::vector<double>& weights) {
  PCBL_CHECK(!weights.empty()) << "empty weight vector";
  double total = 0;
  for (double w : weights) {
    PCBL_CHECK(w >= 0) << "negative weight " << w;
    total += w;
  }
  PCBL_CHECK(total > 0) << "weights sum to zero";
  cdf_.reserve(weights.size());
  double acc = 0;
  for (double w : weights) {
    acc += w / total;
    cdf_.push_back(acc);
  }
  cdf_.back() = 1.0;  // absorb floating-point drift
}

int DiscreteDistribution::Sample(Rng& rng) const {
  double u = rng.UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<int>(it - cdf_.begin());
}

double DiscreteDistribution::Probability(size_t i) const {
  PCBL_CHECK(i < cdf_.size());
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

ZipfDistribution::ZipfDistribution(int n, double s)
    : dist_([n, s] {
        PCBL_CHECK(n > 0);
        std::vector<double> w(static_cast<size_t>(n));
        for (int k = 0; k < n; ++k) {
          w[static_cast<size_t>(k)] = 1.0 / std::pow(k + 1.0, s);
        }
        return w;
      }()) {}

}  // namespace pcbl
