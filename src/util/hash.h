// 64-bit hashing utilities used by the pattern-counting substrate.
//
// These are deterministic across runs (no per-process seeding) so that test
// expectations and benchmark workloads are reproducible.
#ifndef PCBL_UTIL_HASH_H_
#define PCBL_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

namespace pcbl {

/// SplitMix64 finalizer: a fast, well-distributed 64-bit mixer.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines an existing hash with a new value, boost-style but 64-bit.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

/// Hashes a span of 32-bit codes (e.g. one grouping key of dictionary ids).
inline uint64_t HashCodes(const uint32_t* data, size_t n) {
  uint64_t h = 0x51ed270b7a2cf485ULL ^ (n * 0x9e3779b97f4a7c15ULL);
  for (size_t i = 0; i < n; ++i) {
    h = HashCombine(h, data[i]);
  }
  return h;
}

}  // namespace pcbl

#endif  // PCBL_UTIL_HASH_H_
