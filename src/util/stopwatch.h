// Wall-clock stopwatch for the experiment harness.
#ifndef PCBL_UTIL_STOPWATCH_H_
#define PCBL_UTIL_STOPWATCH_H_

#include <chrono>

namespace pcbl {

/// Measures elapsed wall-clock time; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pcbl

#endif  // PCBL_UTIL_STOPWATCH_H_
