// The pcbl tool's subcommands. Each command takes parsed Args and the
// output/error streams and returns a process exit code; RunCli (cli.h)
// dispatches to them. Keeping commands as plain functions over streams
// makes them directly testable without spawning processes.
#ifndef PCBL_CLI_COMMANDS_H_
#define PCBL_CLI_COMMANDS_H_

#include <ostream>

#include "cli/args.h"

namespace pcbl {
namespace cli {

/// `pcbl profile <data.csv>` — per-attribute statistics of a dataset.
int CmdProfile(const Args& args, std::ostream& out, std::ostream& err);

/// `pcbl build <data.csv> [--bound N] [--algo topdown|naive]
///  [--metric max-abs|mean-abs|max-q|mean-q] [--out label.json]
///  [--binary] [--name NAME] [--time-limit SECONDS]` — search the optimal
/// label and optionally save it.
int CmdBuild(const Args& args, std::ostream& out, std::ostream& err);

/// `pcbl render <label.{json,bin}> [--max-values N] [--max-patterns N]` —
/// print the Fig. 1-style nutrition label.
int CmdRender(const Args& args, std::ostream& out, std::ostream& err);

/// `pcbl estimate <label.{json,bin}> --pattern "attr=value,attr=value"` —
/// estimate one pattern's count from a label alone.
int CmdEstimate(const Args& args, std::ostream& out, std::ostream& err);

/// `pcbl error <label.{json,bin}> <data.csv> [--mode exact|early]` —
/// evaluate a shipped label against a dataset (max/mean absolute error and
/// q-error over its full patterns).
int CmdError(const Args& args, std::ostream& out, std::ostream& err);

/// `pcbl synth <bluenile|compas|creditcard|fig2> [--rows N] [--seed S]
///  --out data.csv` — generate one of the paper's (simulated) datasets.
int CmdSynth(const Args& args, std::ostream& out, std::ostream& err);

/// `pcbl inspect <label.{json,bin}>` — label metadata: S, sizes, top
/// pattern counts.
int CmdInspect(const Args& args, std::ostream& out, std::ostream& err);

/// `pcbl audit <label.{json,bin}> [--attrs A,B] [--min-count N]
///  [--max-share F] [--corr-factor F] [--max-arity K]` — fitness-for-use
/// warnings (underrepresentation, skew, correlated pairs) from the label
/// alone.
int CmdAudit(const Args& args, std::ostream& out, std::ostream& err);

/// `pcbl bucketize <data.csv> --out binned.csv [--attrs A,B] [--bins N]
///  [--strategy width|depth]` — bin numeric attributes into categorical
/// ranges (the Sec. II preprocessing step).
int CmdBucketize(const Args& args, std::ostream& out, std::ostream& err);

/// `pcbl diff <old-label> <new-label>` — change log between two labels of
/// successive dataset versions (marginal shifts, pattern churn).
int CmdDiff(const Args& args, std::ostream& out, std::ostream& err);

/// `pcbl serve --listen ADDR --catalog name=file.csv,...
///  [--max-inflight N] [--tenant-max-inflight N] [--retry-after-ms N]
///  [--service-budget N] [--cache-budget N] [--result-cache-budget N]` —
/// the out-of-process, multi-tenant label server (docs/SERVING.md).
int CmdServe(const Args& args, std::ostream& out, std::ostream& err);

/// `pcbl query --connect ADDR --dataset NAME [--tenant T] [--bound N |
///  --pattern "a=x" | --profile | --stats | --shutdown]` — query a
/// running `pcbl serve` instance.
int CmdQuery(const Args& args, std::ostream& out, std::ostream& err);

}  // namespace cli
}  // namespace pcbl

#endif  // PCBL_CLI_COMMANDS_H_
