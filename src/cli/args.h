// Minimal command-line argument parser for the pcbl tool.
//
// Grammar: positional arguments mixed with flags; a flag is `--name value`,
// `--name=value`, or a bare boolean `--name`. `--` ends flag parsing (the
// rest is positional). Unknown flags are detected by CheckKnown so every
// command rejects typos instead of silently ignoring them.
#ifndef PCBL_CLI_ARGS_H_
#define PCBL_CLI_ARGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace pcbl {
namespace cli {

/// Parsed command-line arguments of one subcommand.
class Args {
 public:
  /// Parses `tokens` (everything after the subcommand name). A value-less
  /// flag (next token is another flag, or the end) parses as boolean
  /// "true".
  static Result<Args> Parse(const std::vector<std::string>& tokens);

  /// Positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// True when the flag was given (with or without a value).
  bool Has(const std::string& name) const {
    return flags_.find(name) != flags_.end();
  }

  /// String value of a flag, or `fallback` when absent.
  std::string GetString(const std::string& name,
                        const std::string& fallback = "") const;

  /// Integer value of a flag; parse errors propagate.
  Result<int64_t> GetInt(const std::string& name, int64_t fallback) const;

  /// Floating-point value of a flag; parse errors propagate.
  Result<double> GetDouble(const std::string& name, double fallback) const;

  /// Boolean flag: present without value or with value true/1/yes.
  bool GetBool(const std::string& name) const;

  /// Fails when a flag outside `known` was supplied.
  Status CheckKnown(const std::vector<std::string>& known) const;

  /// Fails unless there are exactly `count` positional arguments.
  Status RequirePositional(size_t count, const std::string& usage) const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> flags_;
};

}  // namespace cli
}  // namespace pcbl

#endif  // PCBL_CLI_ARGS_H_
