// Entry point of the `pcbl` command-line tool.
//
// The tool packages the library's end-to-end flow for shell use:
//
//   pcbl synth compas --rows 10000 --out compas.csv
//   pcbl profile compas.csv
//   pcbl build compas.csv --bound 100 --out compas-label.json
//   pcbl render compas-label.json
//   pcbl estimate compas-label.json --pattern "Sex_Code_Text=Female"
//   pcbl error compas-label.json compas.csv
//
// RunCli is process-free (streams in, exit code out) so the test suite can
// drive it directly.
#ifndef PCBL_CLI_CLI_H_
#define PCBL_CLI_CLI_H_

#include <ostream>
#include <string>
#include <vector>

namespace pcbl {
namespace cli {

/// Dispatches `pcbl <command> ...`. `argv` excludes the program name.
/// Returns the process exit code (0 success, 1 command error, 2 usage).
int RunCli(const std::vector<std::string>& argv, std::ostream& out,
           std::ostream& err);

/// The top-level usage text.
std::string UsageText();

}  // namespace cli
}  // namespace pcbl

#endif  // PCBL_CLI_CLI_H_
