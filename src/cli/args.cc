#include "cli/args.h"

#include <algorithm>

#include "util/str.h"

namespace pcbl {
namespace cli {

Result<Args> Args::Parse(const std::vector<std::string>& tokens) {
  Args args;
  bool flags_done = false;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    if (flags_done || !StartsWith(tok, "--")) {
      args.positional_.push_back(tok);
      continue;
    }
    if (tok == "--") {
      flags_done = true;
      continue;
    }
    std::string body = tok.substr(2);
    if (body.empty()) {
      return InvalidArgumentError("empty flag name in \"--\"");
    }
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      args.flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` unless the next token is itself a flag.
    if (i + 1 < tokens.size() && !StartsWith(tokens[i + 1], "--")) {
      args.flags_[body] = tokens[i + 1];
      ++i;
    } else {
      args.flags_[body] = "true";
    }
  }
  return args;
}

std::string Args::GetString(const std::string& name,
                            const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

Result<int64_t> Args::GetInt(const std::string& name,
                             int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  auto parsed = ParseInt64(it->second);
  if (!parsed.ok()) {
    return InvalidArgumentError(
        StrCat("--", name, " expects an integer, got \"", it->second, "\""));
  }
  return *parsed;
}

Result<double> Args::GetDouble(const std::string& name,
                               double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  auto parsed = ParseDouble(it->second);
  if (!parsed.ok()) {
    return InvalidArgumentError(
        StrCat("--", name, " expects a number, got \"", it->second, "\""));
  }
  return *parsed;
}

bool Args::GetBool(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return false;
  const std::string v = ToLower(it->second);
  return v == "true" || v == "1" || v == "yes";
}

Status Args::CheckKnown(const std::vector<std::string>& known) const {
  for (const auto& [name, value] : flags_) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      return InvalidArgumentError(StrCat("unknown flag --", name));
    }
  }
  return Status::Ok();
}

Status Args::RequirePositional(size_t count, const std::string& usage) const {
  if (positional_.size() != count) {
    return InvalidArgumentError(
        StrCat("expected ", count, " positional argument(s), got ",
               positional_.size(), "; usage: ", usage));
  }
  return Status::Ok();
}

}  // namespace cli
}  // namespace pcbl
