// Helpers shared by the pcbl subcommands.
#ifndef PCBL_CLI_COMMON_H_
#define PCBL_CLI_COMMON_H_

#include <ostream>
#include <string>

#include "api/dataset.h"
#include "api/session.h"
#include "cli/args.h"
#include "core/error.h"
#include "core/portable_label.h"
#include "relation/table.h"
#include "util/status.h"

namespace pcbl {
namespace cli {

/// Exit codes shared by all commands.
inline constexpr int kExitOk = 0;
inline constexpr int kExitError = 1;
inline constexpr int kExitUsage = 2;

/// Prints `status` as "pcbl <command>: <message>" and returns the exit
/// code for it (usage errors map to kExitUsage).
int FailWith(const Status& status, const std::string& command,
             std::ostream& err);

/// Reads a CSV dataset, reporting row/attribute counts to `out` unless
/// quiet.
Result<Table> LoadCsvTable(const std::string& path);

/// Loads a portable label from a JSON or binary file.
Result<PortableLabel> LoadLabelFile(const std::string& path);

/// Parses "attr=value,attr=value" into (attribute, value) pairs. Values
/// may contain '=' (only the first one per term separates); terms are
/// trimmed.
Result<std::vector<std::pair<std::string, std::string>>> ParseNamedPattern(
    const std::string& text);

/// Parses an OptimizationMetric name (max-abs, mean-abs, max-q, mean-q).
Result<OptimizationMetric> ParseMetric(const std::string& name);

/// The engine/service flag set shared by the data-backed commands —
/// `--threads N` (0 or absent = all hardware threads), `--no-engine`,
/// `--cache-budget N`, `--service-budget N`, `--no-result-cache`,
/// `--result-cache-budget N`, `--kernel NAME`
/// (scalar|avx2|neon|auto — forces the SIMD sizing-kernel ISA,
/// validated centrally by counting::SetKernelIsaByName),
/// `--min-rows-per-morsel N` (0 disables intra-subset parallel scans) —
/// parsed once here instead of per command, and converted into the
/// façade's option structs. Value validation (negative threads,
/// conflicting engine or result-cache flags) is the façade's job:
/// Session::Open / Submit return Status on nonsense.
struct ServiceFlags {
  int64_t threads = 0;          ///< 0 = all hardware threads
  bool no_engine = false;
  int64_t cache_budget = -1;    ///< meaningful iff has_cache_budget
  bool has_cache_budget = false;
  int64_t service_budget = -1;  ///< registry budget; -1 = flag absent
  bool no_result_cache = false;
  int64_t result_cache_budget = -1;  ///< iff has_result_cache_budget
  bool has_result_cache_budget = false;
  int64_t min_rows_per_morsel = -1;  ///< -1 = engine default
  std::string spill_dir;        ///< warm-start spill directory; "" = off
  bool any = false;             ///< any of the flags was present

  /// Session defaults carrying the per-invocation knobs.
  api::SessionOptions ToSessionOptions() const;
  /// Dataset options carrying the registry budget.
  api::DatasetOptions ToDatasetOptions() const;
};

/// Parses the shared flag set. Parse errors and a negative
/// `--service-budget` propagate; everything else is validated by the
/// façade when the options are used.
Result<ServiceFlags> ParseServiceFlags(const Args& args);

/// Renders the registry's hit/miss/eviction and resident-bytes counters
/// as one "registry:" summary line.
std::string FormatRegistryStats();

/// Renders the active sizing configuration — kernel ISA dispatch plus
/// the morsel threshold these flags selected — as one "sizing:" line.
std::string FormatSizingConfig(const ServiceFlags& flags);

/// Renders an ErrorReport as aligned "key: value" lines.
std::string FormatErrorReport(const ErrorReport& report, int64_t total_rows);

}  // namespace cli
}  // namespace pcbl

#endif  // PCBL_CLI_COMMON_H_
