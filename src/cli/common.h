// Helpers shared by the pcbl subcommands.
#ifndef PCBL_CLI_COMMON_H_
#define PCBL_CLI_COMMON_H_

#include <ostream>
#include <string>

#include "cli/args.h"
#include "core/error.h"
#include "core/portable_label.h"
#include "pattern/counting_engine.h"
#include "pattern/counting_service.h"
#include "relation/table.h"
#include "util/status.h"

namespace pcbl {
namespace cli {

/// Exit codes shared by all commands.
inline constexpr int kExitOk = 0;
inline constexpr int kExitError = 1;
inline constexpr int kExitUsage = 2;

/// Prints `status` as "pcbl <command>: <message>" and returns the exit
/// code for it (usage errors map to kExitUsage).
int FailWith(const Status& status, const std::string& command,
             std::ostream& err);

/// Reads a CSV dataset, reporting row/attribute counts to `out` unless
/// quiet.
Result<Table> LoadCsvTable(const std::string& path);

/// Loads a portable label from a JSON or binary file.
Result<PortableLabel> LoadLabelFile(const std::string& path);

/// Parses "attr=value,attr=value" into (attribute, value) pairs. Values
/// may contain '=' (only the first one per term separates); terms are
/// trimmed.
Result<std::vector<std::pair<std::string, std::string>>> ParseNamedPattern(
    const std::string& text);

/// Parses an OptimizationMetric name (max-abs, mean-abs, max-q, mean-q).
Result<OptimizationMetric> ParseMetric(const std::string& name);

/// Parses the counting-engine flags shared by build/estimate/profile:
/// `--threads N` (0 or absent = all hardware threads), `--no-engine`,
/// and `--cache-budget N`. Parse errors propagate.
Result<CountingEngineOptions> ParseEngineOptions(const Args& args);

/// Acquires the dataset's shared CountingService from the process-wide
/// ServiceRegistry, honouring `--service-budget N` (registry memory
/// budget in bytes; 0 = unbounded) and applying `options` to the service
/// under its lock. Takes shared ownership of `table` so a registry miss
/// costs no copy. Repeated invocations in one process (and concurrent
/// sessions over content-equal data) share one warm cache.
Result<std::shared_ptr<CountingService>> AcquireRegistryService(
    const Args& args, std::shared_ptr<const Table> table,
    const CountingEngineOptions& options);

/// Renders the registry's hit/miss/eviction and resident-bytes counters
/// as one "registry:" summary line.
std::string FormatRegistryStats();

/// Renders an ErrorReport as aligned "key: value" lines.
std::string FormatErrorReport(const ErrorReport& report, int64_t total_rows);

}  // namespace cli
}  // namespace pcbl

#endif  // PCBL_CLI_COMMON_H_
