// `pcbl render <label>` — prints a saved label in the paper's Fig. 1
// nutrition-label style.
#include <ostream>

#include "cli/commands.h"
#include "cli/common.h"
#include "core/render.h"

namespace pcbl {
namespace cli {

namespace {
constexpr char kUsage[] =
    "usage: pcbl render <label.{json,bin}> [flags]\n"
    "\n"
    "flags:\n"
    "  --max-values N    values shown per attribute (default 12, 0 = all)\n"
    "  --max-patterns N  PC rows shown (default 40, 0 = all)\n";
}  // namespace

int CmdRender(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.GetBool("help")) {
    out << kUsage;
    return kExitOk;
  }
  if (Status s = args.CheckKnown({"help", "max-values", "max-patterns"});
      !s.ok()) {
    return FailWith(s, "render", err);
  }
  if (Status s = args.RequirePositional(1, "pcbl render <label>"); !s.ok()) {
    return FailWith(s, "render", err);
  }
  auto max_values = args.GetInt("max-values", 12);
  if (!max_values.ok()) return FailWith(max_values.status(), "render", err);
  auto max_patterns = args.GetInt("max-patterns", 40);
  if (!max_patterns.ok()) {
    return FailWith(max_patterns.status(), "render", err);
  }
  auto label = LoadLabelFile(args.positional()[0]);
  if (!label.ok()) return FailWith(label.status(), "render", err);

  RenderOptions options;
  options.max_values_per_attribute = static_cast<int>(*max_values);
  options.max_pattern_rows = static_cast<int>(*max_patterns);
  out << RenderNutritionLabel(*label, nullptr, options);
  return kExitOk;
}

}  // namespace cli
}  // namespace pcbl
