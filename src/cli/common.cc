#include "cli/common.h"

#include <utility>

#include "pattern/counting_engine.h"
#include "pattern/kernel_dispatch.h"
#include "pattern/service_registry.h"
#include "relation/csv.h"
#include "util/str.h"

namespace pcbl {
namespace cli {

int FailWith(const Status& status, const std::string& command,
             std::ostream& err) {
  err << "pcbl " << command << ": " << status.ToString() << "\n";
  return status.code() == StatusCode::kInvalidArgument ? kExitUsage
                                                       : kExitError;
}

Result<Table> LoadCsvTable(const std::string& path) {
  return ReadCsvFile(path);
}

Result<PortableLabel> LoadLabelFile(const std::string& path) {
  return LoadLabel(path);
}

Result<std::vector<std::pair<std::string, std::string>>> ParseNamedPattern(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> terms;
  for (const std::string& raw : Split(text, ',')) {
    const std::string term(Trim(raw));
    if (term.empty()) continue;
    const size_t eq = term.find('=');
    if (eq == std::string::npos || eq == 0) {
      return InvalidArgumentError(
          StrCat("pattern term \"", term, "\" is not attr=value"));
    }
    terms.emplace_back(std::string(Trim(term.substr(0, eq))),
                       std::string(Trim(term.substr(eq + 1))));
  }
  if (terms.empty()) {
    return InvalidArgumentError("pattern has no attr=value terms");
  }
  return terms;
}

api::SessionOptions ServiceFlags::ToSessionOptions() const {
  api::SessionOptions options;
  options.num_threads = static_cast<int>(threads);  // 0 = auto, as here
  options.use_counting_engine = !no_engine;
  options.counting_cache_budget = has_cache_budget ? cache_budget : -1;
  options.use_result_cache = !no_result_cache;
  options.result_cache_budget =
      has_result_cache_budget ? result_cache_budget : -1;
  options.min_rows_per_morsel = min_rows_per_morsel;
  return options;
}

api::DatasetOptions ServiceFlags::ToDatasetOptions() const {
  api::DatasetOptions options;
  options.service_memory_budget = service_budget;  // -1 = leave unchanged
  options.spill_directory = spill_dir;             // "" = leave unchanged
  return options;
}

Result<ServiceFlags> ParseServiceFlags(const Args& args) {
  ServiceFlags flags;
  PCBL_ASSIGN_OR_RETURN(flags.threads, args.GetInt("threads", 0));
  flags.no_engine = args.GetBool("no-engine");
  flags.has_cache_budget = args.Has("cache-budget");
  if (flags.has_cache_budget) {
    PCBL_ASSIGN_OR_RETURN(flags.cache_budget,
                          args.GetInt("cache-budget", -1));
  }
  if (args.Has("service-budget")) {
    PCBL_ASSIGN_OR_RETURN(flags.service_budget,
                          args.GetInt("service-budget", 0));
    if (flags.service_budget < 0) {
      return InvalidArgumentError("--service-budget must be >= 0");
    }
  }
  flags.no_result_cache = args.GetBool("no-result-cache");
  flags.has_result_cache_budget = args.Has("result-cache-budget");
  if (flags.has_result_cache_budget) {
    PCBL_ASSIGN_OR_RETURN(flags.result_cache_budget,
                          args.GetInt("result-cache-budget", -1));
  }
  if (args.Has("min-rows-per-morsel")) {
    PCBL_ASSIGN_OR_RETURN(flags.min_rows_per_morsel,
                          args.GetInt("min-rows-per-morsel", -1));
    if (flags.min_rows_per_morsel < 0) {
      return InvalidArgumentError(
          "--min-rows-per-morsel must be >= 0 (0 disables intra-subset "
          "parallelism)");
    }
  }
  if (args.Has("spill-dir")) {
    flags.spill_dir = args.GetString("spill-dir", "");
    if (flags.spill_dir.empty()) {
      return InvalidArgumentError("--spill-dir needs a directory path");
    }
  }
  if (args.Has("kernel")) {
    // Applied process-globally right here: the kernel table is a
    // dispatch concern, not a per-session option, and
    // SetKernelIsaByName is the central validation point (unknown
    // names and host-unavailable ISAs fail before any data is read).
    PCBL_RETURN_IF_ERROR(
        counting::SetKernelIsaByName(args.GetString("kernel", "auto")));
  }
  flags.any = args.Has("threads") || args.Has("no-engine") ||
              args.Has("cache-budget") || args.Has("service-budget") ||
              args.Has("no-result-cache") ||
              args.Has("result-cache-budget") || args.Has("kernel") ||
              args.Has("min-rows-per-morsel") || args.Has("spill-dir");
  return flags;
}

std::string FormatRegistryStats() {
  const ServiceRegistryStats stats = ServiceRegistry::Global().stats();
  std::string line = StrFormat(
      "registry:  %lld hit%s, %lld miss%s, %lld service%s resident "
      "(%lld bytes resident, %lld evicted)",
      static_cast<long long>(stats.hits), stats.hits == 1 ? "" : "s",
      static_cast<long long>(stats.misses), stats.misses == 1 ? "" : "es",
      static_cast<long long>(stats.services),
      stats.services == 1 ? "" : "s",
      static_cast<long long>(stats.resident_bytes),
      static_cast<long long>(stats.evictions));
  // Queries that lost the race with eviction and were refused retryably:
  // only worth a word when it actually happened.
  if (stats.evicted_rejections > 0) {
    line += StrFormat(", %lld evicted-service rejection%s",
                      static_cast<long long>(stats.evicted_rejections),
                      stats.evicted_rejections == 1 ? "" : "s");
  }
  // The whole-query result tier, once it saw any traffic.
  if (stats.result_hits + stats.result_misses +
          stats.result_inflight_joins >
      0) {
    line += StrFormat(
        "; results: %lld hit%s, %lld miss%s, %lld join%s "
        "(%lld cached, %lld bytes)",
        static_cast<long long>(stats.result_hits),
        stats.result_hits == 1 ? "" : "s",
        static_cast<long long>(stats.result_misses),
        stats.result_misses == 1 ? "" : "es",
        static_cast<long long>(stats.result_inflight_joins),
        stats.result_inflight_joins == 1 ? "" : "s",
        static_cast<long long>(stats.result_entries),
        static_cast<long long>(stats.result_bytes));
  }
  // The append path, once any session grew a resident service.
  if (stats.append_requests > 0) {
    line += StrFormat(
        "; appends: %lld request%s in %lld group commit%s "
        "(%lld value%s interned)",
        static_cast<long long>(stats.append_requests),
        stats.append_requests == 1 ? "" : "s",
        static_cast<long long>(stats.append_batches),
        stats.append_batches == 1 ? "" : "s",
        static_cast<long long>(stats.interned_values),
        stats.interned_values == 1 ? "" : "s");
  }
  // The warm-start spill store, once it saw any traffic.
  if (stats.spill_hits + stats.spill_misses + stats.spill_rejects +
          stats.spills >
      0) {
    line += StrFormat(
        "; spill: %lld hit%s, %lld miss%s, %lld reject%s, "
        "%lld spilled (%lld bytes)",
        static_cast<long long>(stats.spill_hits),
        stats.spill_hits == 1 ? "" : "s",
        static_cast<long long>(stats.spill_misses),
        stats.spill_misses == 1 ? "" : "es",
        static_cast<long long>(stats.spill_rejects),
        stats.spill_rejects == 1 ? "" : "s",
        static_cast<long long>(stats.spills),
        static_cast<long long>(stats.spilled_bytes));
  }
  line += "\n";
  return line;
}

std::string FormatSizingConfig(const ServiceFlags& flags) {
  std::string morsels;
  if (flags.min_rows_per_morsel == 0) {
    morsels = "morsels off";
  } else if (flags.min_rows_per_morsel > 0) {
    morsels = StrFormat(
        "morsels >= %lld rows",
        static_cast<long long>(flags.min_rows_per_morsel));
  } else {
    morsels = StrFormat(
        "morsels >= %lld rows (default)",
        static_cast<long long>(CountingEngineOptions{}.min_rows_per_morsel));
  }
  return StrCat("sizing:    kernel ", counting::KernelDispatchDescription(),
                "; ", morsels, "\n");
}

Result<OptimizationMetric> ParseMetric(const std::string& name) {
  const std::string n = ToLower(name);
  if (n == "max-abs") return OptimizationMetric::kMaxAbsolute;
  if (n == "mean-abs") return OptimizationMetric::kMeanAbsolute;
  if (n == "max-q") return OptimizationMetric::kMaxQError;
  if (n == "mean-q") return OptimizationMetric::kMeanQError;
  return InvalidArgumentError(
      StrCat("unknown metric \"", name,
             "\" (expected max-abs, mean-abs, max-q, or mean-q)"));
}

std::string FormatErrorReport(const ErrorReport& report, int64_t total_rows) {
  std::string out;
  const double frac =
      total_rows > 0 ? report.max_abs / static_cast<double>(total_rows) : 0.0;
  out += StrFormat("  max abs error:   %.0f (%s of rows)\n", report.max_abs,
                   PercentString(frac).c_str());
  out += StrFormat("  mean abs error:  %.3f\n", report.mean_abs);
  out += StrFormat("  std abs error:   %.3f\n", report.std_abs);
  out += StrFormat("  max q-error:     %.1f\n", report.max_q);
  out += StrFormat("  mean q-error:    %.2f\n", report.mean_q);
  out += StrFormat("  patterns:        %lld of %lld evaluated%s\n",
                   static_cast<long long>(report.evaluated),
                   static_cast<long long>(report.total),
                   report.early_terminated ? " (early termination)" : "");
  return out;
}

}  // namespace cli
}  // namespace pcbl
