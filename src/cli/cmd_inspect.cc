// `pcbl inspect <label>` — label metadata at a glance: the attribute set
// S, sizes, and the heaviest stored pattern counts.
#include <algorithm>
#include <ostream>
#include <vector>

#include "cli/commands.h"
#include "cli/common.h"
#include "harness/tablefmt.h"
#include "util/str.h"

namespace pcbl {
namespace cli {

namespace {
constexpr char kUsage[] =
    "usage: pcbl inspect <label.{json,bin}> [flags]\n"
    "\n"
    "flags:\n"
    "  --top N   heaviest PC entries to list (default 10, 0 = none)\n";
}  // namespace

int CmdInspect(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.GetBool("help")) {
    out << kUsage;
    return kExitOk;
  }
  if (Status s = args.CheckKnown({"help", "top"}); !s.ok()) {
    return FailWith(s, "inspect", err);
  }
  if (Status s = args.RequirePositional(1, "pcbl inspect <label>"); !s.ok()) {
    return FailWith(s, "inspect", err);
  }
  auto top = args.GetInt("top", 10);
  if (!top.ok()) return FailWith(top.status(), "inspect", err);
  auto label = LoadLabelFile(args.positional()[0]);
  if (!label.ok()) return FailWith(label.status(), "inspect", err);

  std::vector<std::string> s_names;
  for (int i : label->label_attributes) {
    s_names.push_back(label->attribute_names[static_cast<size_t>(i)]);
  }
  int64_t vc_entries = 0;
  for (const auto& per_attr : label->value_counts) {
    vc_entries += static_cast<int64_t>(per_attr.size());
  }
  int64_t pc_rows_covered = 0;
  for (const auto& [values, count] : label->pattern_counts) {
    pc_rows_covered += count;
  }

  out << "dataset:       "
      << (label->dataset_name.empty() ? "(unnamed)" : label->dataset_name)
      << "\n";
  out << "rows:          " << WithThousandsSeparators(label->total_rows)
      << "\n";
  out << "attributes:    " << label->attribute_names.size() << "\n";
  out << "S:             "
      << (s_names.empty() ? "(empty — independence label)"
                          : Join(s_names, ", "))
      << "\n";
  out << "|PC|:          " << label->size() << "\n";
  out << "|VC| entries:  " << vc_entries << "\n";
  if (label->total_rows > 0) {
    out << "PC coverage:   "
        << PercentString(static_cast<double>(pc_rows_covered) /
                         static_cast<double>(label->total_rows))
        << " of rows bind a stored pattern\n";
  }

  if (*top > 0 && !label->pattern_counts.empty()) {
    std::vector<size_t> order(label->pattern_counts.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (label->pattern_counts[a].second != label->pattern_counts[b].second) {
        return label->pattern_counts[a].second >
               label->pattern_counts[b].second;
      }
      return a < b;
    });
    order.resize(std::min<size_t>(order.size(), static_cast<size_t>(*top)));
    out << "\n";
    std::vector<std::string> header = s_names;
    header.push_back("count");
    harness::TextTable grid(header);
    for (size_t i : order) {
      std::vector<std::string> row = label->pattern_counts[i].first;
      row.push_back(std::to_string(label->pattern_counts[i].second));
      grid.AddRow(row);
    }
    out << grid.ToMarkdown();
  }
  return kExitOk;
}

}  // namespace cli
}  // namespace pcbl
