// `pcbl synth <dataset>` — generates one of the paper's (simulated)
// evaluation datasets as CSV, for experimenting with the tool end-to-end
// without redistributable data.
#include <ostream>
#include <string>

#include "cli/commands.h"
#include "cli/common.h"
#include "relation/csv.h"
#include "util/str.h"
#include "workload/datasets.h"

namespace pcbl {
namespace cli {

namespace {
constexpr char kUsage[] =
    "usage: pcbl synth <bluenile|compas|creditcard|fig2> --out data.csv\n"
    "\n"
    "flags:\n"
    "  --rows N   rows to generate (default: the paper's count;\n"
    "             fig2 is fixed at 18 rows)\n"
    "  --seed S   generator seed (default 2021)\n"
    "  --out F    output CSV path (required)\n";
}  // namespace

int CmdSynth(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.GetBool("help")) {
    out << kUsage;
    return kExitOk;
  }
  if (Status s = args.CheckKnown({"help", "rows", "seed", "out"}); !s.ok()) {
    return FailWith(s, "synth", err);
  }
  if (Status s = args.RequirePositional(
          1, "pcbl synth <bluenile|compas|creditcard|fig2> --out data.csv");
      !s.ok()) {
    return FailWith(s, "synth", err);
  }
  const std::string out_path = args.GetString("out");
  if (out_path.empty()) {
    return FailWith(InvalidArgumentError("--out is required"), "synth", err);
  }
  auto seed = args.GetInt("seed", 2021);
  if (!seed.ok()) return FailWith(seed.status(), "synth", err);

  const std::string which = ToLower(args.positional()[0]);
  Result<Table> table = InvalidArgumentError(
      StrCat("unknown dataset \"", which,
             "\" (expected bluenile, compas, creditcard, or fig2)"));
  if (which == "fig2") {
    table = workload::MakeFig2Demo();
  } else if (which == "bluenile" || which == "compas" ||
             which == "creditcard") {
    int64_t default_rows = workload::kBlueNileRows;
    if (which == "compas") default_rows = workload::kCompasRows;
    if (which == "creditcard") default_rows = workload::kCreditCardRows;
    auto rows = args.GetInt("rows", default_rows);
    if (!rows.ok()) return FailWith(rows.status(), "synth", err);
    if (*rows <= 0) {
      return FailWith(InvalidArgumentError("--rows must be positive"),
                      "synth", err);
    }
    if (which == "bluenile") {
      table = workload::MakeBlueNile(*rows, static_cast<uint64_t>(*seed));
    } else if (which == "compas") {
      table = workload::MakeCompas(*rows, static_cast<uint64_t>(*seed));
    } else {
      table = workload::MakeCreditCard(*rows, static_cast<uint64_t>(*seed));
    }
  }
  if (!table.ok()) return FailWith(table.status(), "synth", err);

  if (Status s = WriteCsvFile(*table, out_path); !s.ok()) {
    return FailWith(s, "synth", err);
  }
  out << which << ": " << WithThousandsSeparators(table->num_rows())
      << " rows, " << table->num_attributes() << " attributes -> " << out_path
      << "\n";
  return kExitOk;
}

}  // namespace cli
}  // namespace pcbl
