// `pcbl query --connect ADDR` — the client side of `pcbl serve`:
// run a label search, true count, or profile on a remote server's named
// dataset, or fetch the server's per-tenant stats. Results are the same
// bytes an in-process session would produce (the server differential
// test asserts it); this command just renders them.
#include <ostream>
#include <string>
#include <utility>

#include "api/query.h"
#include "cli/commands.h"
#include "cli/common.h"
#include "server/client.h"
#include "util/str.h"

namespace pcbl {
namespace cli {

namespace {
constexpr char kUsage[] =
    "usage: pcbl query --connect ADDR --dataset NAME [flags]\n"
    "\n"
    "Runs one query against a running `pcbl serve` instance. The default\n"
    "query is a label search; --pattern switches to a true count and\n"
    "--profile to the pairwise label-size profile. A server at its\n"
    "in-flight quota refuses with ResourceExhausted and a retry-after\n"
    "hint instead of queueing.\n"
    "\n"
    "flags:\n"
    "  --connect ADDR     server address (host:port or unix:/path)\n"
    "  --dataset NAME     catalog dataset to query\n"
    "  --tenant T         tenant identity (default \"default\")\n"
    "  --bound N          label-search size bound B_s (default 100)\n"
    "  --algo A           topdown (default) or naive\n"
    "  --metric M         max-abs (default), mean-abs, max-q, mean-q\n"
    "  --pattern \"a=x,b=y\"  true count of this pattern instead\n"
    "  --profile          pairwise |P_S| profile instead\n"
    "  --stats            print the server's per-tenant stats and exit\n"
    "  --shutdown         ask the server to drain and exit\n";

int RenderSearch(const server::wire::WireQueryResult& result,
                 std::ostream& out) {
  const PortableLabel& label = result.search.label;
  std::vector<std::string> attrs;
  for (int a : label.label_attributes) {
    attrs.push_back(a < static_cast<int>(label.attribute_names.size())
                        ? label.attribute_names[a]
                        : StrCat("#", a));
  }
  out << "rows:      " << WithThousandsSeparators(result.total_rows) << "\n";
  out << "attrs:     " << (attrs.empty() ? "(none)" : Join(attrs, ", "))
      << "\n";
  out << "size:      " << label.size() << " patterns\n";
  out << FormatErrorReport(result.search.error, result.total_rows);
  out << StrFormat("examined:  %lld subsets, %lld within bound\n",
                   static_cast<long long>(result.search.stats.subsets_examined),
                   static_cast<long long>(result.search.stats.within_bound));
  return kExitOk;
}

}  // namespace

int CmdQuery(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.GetBool("help")) {
    out << kUsage;
    return kExitOk;
  }
  if (Status s = args.CheckKnown({"help", "connect", "dataset", "tenant",
                                  "bound", "algo", "metric", "pattern",
                                  "profile", "stats", "shutdown"});
      !s.ok()) {
    return FailWith(s, "query", err);
  }
  const std::string address = args.GetString("connect");
  if (address.empty()) {
    return FailWith(InvalidArgumentError("--connect is required"), "query",
                    err);
  }
  auto client = server::Client::Connect(address);
  if (!client.ok()) return FailWith(client.status(), "query", err);
  const std::string tenant = args.GetString("tenant");

  if (args.GetBool("shutdown")) {
    if (Status s = client->Shutdown(); !s.ok()) {
      return FailWith(s, "query", err);
    }
    out << "server at " << address << " draining\n";
    return kExitOk;
  }

  if (args.GetBool("stats")) {
    auto stats = client->Stats(tenant);
    if (!stats.ok()) return FailWith(stats.status(), "query", err);
    for (const auto& row : stats->tenants) {
      out << StrFormat(
          "tenant %s: queries=%lld shed=%lld errors=%lld inflight=%lld "
          "sessions=%lld result-hits=%lld\n",
          row.tenant.c_str(), static_cast<long long>(row.queries),
          static_cast<long long>(row.shed),
          static_cast<long long>(row.errors),
          static_cast<long long>(row.inflight),
          static_cast<long long>(row.sessions),
          static_cast<long long>(row.service.result_hits));
    }
    out << StrFormat(
        "registry: services=%lld hits=%lld misses=%lld resident=%lld\n",
        static_cast<long long>(stats->registry.services),
        static_cast<long long>(stats->registry.hits),
        static_cast<long long>(stats->registry.misses),
        static_cast<long long>(stats->registry.resident_bytes));
    return kExitOk;
  }

  const std::string dataset = args.GetString("dataset");
  if (dataset.empty()) {
    return FailWith(InvalidArgumentError("--dataset is required"), "query",
                    err);
  }

  api::QuerySpec spec;
  const std::string pattern_text = args.GetString("pattern");
  if (args.GetBool("profile")) {
    spec = api::QuerySpec::Profile();
  } else if (!pattern_text.empty()) {
    auto terms = ParseNamedPattern(pattern_text);
    if (!terms.ok()) return FailWith(terms.status(), "query", err);
    spec = api::QuerySpec::TrueCount(std::move(*terms));
  } else {
    auto bound = args.GetInt("bound", 100);
    if (!bound.ok()) return FailWith(bound.status(), "query", err);
    const std::string algo = args.GetString("algo", "topdown");
    if (algo != "topdown" && algo != "naive") {
      return FailWith(
          InvalidArgumentError(StrCat("unknown --algo '", algo, "'")),
          "query", err);
    }
    spec = api::QuerySpec::LabelSearch(
        *bound, algo == "naive" ? api::QuerySpec::Algorithm::kNaive
                                : api::QuerySpec::Algorithm::kTopDown);
    auto metric = ParseMetric(args.GetString("metric", "max-abs"));
    if (!metric.ok()) return FailWith(metric.status(), "query", err);
    spec.metric = *metric;
  }

  auto result = client->Query(tenant, dataset, spec);
  if (!result.ok()) {
    if (result.status().code() == StatusCode::kResourceExhausted) {
      err << StrFormat("pcbl query: shed by the server, retry after %lldms\n",
                       static_cast<long long>(client->last_retry_after_ms()));
      return kExitError;
    }
    return FailWith(result.status(), "query", err);
  }
  if (!result->status.ok()) return FailWith(result->status, "query", err);

  switch (result->kind) {
    case api::QuerySpec::Kind::kLabelSearch:
      return RenderSearch(*result, out);
    case api::QuerySpec::Kind::kTrueCount:
      out << "pattern:   " << pattern_text << "\n";
      out << "count:     " << WithThousandsSeparators(result->true_count)
          << " of " << WithThousandsSeparators(result->total_rows)
          << " rows\n";
      if (result->estimate.has_value()) {
        out << StrFormat("estimate:  %.2f\n", *result->estimate);
      }
      return kExitOk;
    case api::QuerySpec::Kind::kProfile:
      out << "rows:      " << WithThousandsSeparators(result->total_rows)
          << "\n";
      for (const auto& pair : result->pairs) {
        out << StrFormat("  (%d, %d): %lld\n", pair.attr_a, pair.attr_b,
                         static_cast<long long>(pair.size));
      }
      return kExitOk;
  }
  return kExitError;
}

}  // namespace cli
}  // namespace pcbl
