// `pcbl bucketize <csv>` — the paper's Sec. II preprocessing step: render
// continuous attributes categorical by binning them into ranges, so the
// result can enter `pcbl build` directly (the Credit Card dataset uses 5
// equi-width bins per numeric attribute, Sec. IV-A).
#include <ostream>

#include "cli/commands.h"
#include "cli/common.h"
#include "relation/csv.h"
#include "relation/table_transform.h"
#include "util/str.h"

namespace pcbl {
namespace cli {

namespace {
constexpr char kUsage[] =
    "usage: pcbl bucketize <data.csv> --out binned.csv [flags]\n"
    "\n"
    "flags:\n"
    "  --attrs A,B     attributes to bin (default: every numeric attribute)\n"
    "  --bins N        buckets per attribute (default 5, as in Sec. IV-A)\n"
    "  --strategy S    width (equi-width, default) or depth (equi-depth)\n"
    "  --out F         output CSV path (required)\n";
}  // namespace

int CmdBucketize(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.GetBool("help")) {
    out << kUsage;
    return kExitOk;
  }
  if (Status s =
          args.CheckKnown({"help", "attrs", "bins", "strategy", "out"});
      !s.ok()) {
    return FailWith(s, "bucketize", err);
  }
  if (Status s = args.RequirePositional(
          1, "pcbl bucketize <data.csv> --out binned.csv");
      !s.ok()) {
    return FailWith(s, "bucketize", err);
  }
  const std::string out_path = args.GetString("out");
  if (out_path.empty()) {
    return FailWith(InvalidArgumentError("--out is required"), "bucketize",
                    err);
  }
  auto bins = args.GetInt("bins", 5);
  if (!bins.ok()) return FailWith(bins.status(), "bucketize", err);
  const std::string strategy_name = ToLower(args.GetString("strategy",
                                                           "width"));
  if (strategy_name != "width" && strategy_name != "depth") {
    return FailWith(InvalidArgumentError("--strategy expects width or depth"),
                    "bucketize", err);
  }
  const BucketStrategy strategy = strategy_name == "depth"
                                      ? BucketStrategy::kEquiDepth
                                      : BucketStrategy::kEquiWidth;

  auto table = LoadCsvTable(args.positional()[0]);
  if (!table.ok()) return FailWith(table.status(), "bucketize", err);

  std::vector<std::string> attrs;
  const std::string attrs_flag = args.GetString("attrs");
  if (!attrs_flag.empty()) {
    for (const std::string& raw : Split(attrs_flag, ',')) {
      const std::string name(Trim(raw));
      if (!name.empty()) attrs.push_back(name);
    }
  } else {
    attrs = NumericAttributes(*table);
    if (attrs.empty()) {
      return FailWith(
          InvalidArgumentError("no numeric attributes found; name targets "
                               "explicitly with --attrs"),
          "bucketize", err);
    }
  }

  auto binned = BucketizeAttributes(*table, attrs, static_cast<int>(*bins),
                                    strategy);
  if (!binned.ok()) return FailWith(binned.status(), "bucketize", err);
  if (Status s = WriteCsvFile(*binned, out_path); !s.ok()) {
    return FailWith(s, "bucketize", err);
  }
  out << "bucketized " << attrs.size() << " attribute(s) ["
      << Join(attrs, ", ") << "] into " << *bins << " " << strategy_name
      << " bins -> " << out_path << "\n";
  return kExitOk;
}

}  // namespace cli
}  // namespace pcbl
