// `pcbl profile <data.csv>` — the data-profiling entry point: row count and
// per-attribute distinct counts, nulls, entropy, and modal values. This is
// the information an analyst inspects before choosing a label bound.
#include <ostream>

#include "cli/commands.h"
#include "cli/common.h"
#include "harness/tablefmt.h"
#include "relation/stats.h"
#include "util/str.h"

namespace pcbl {
namespace cli {

namespace {
constexpr char kUsage[] =
    "usage: pcbl profile <data.csv>\n"
    "\n"
    "Prints per-attribute statistics of a CSV dataset: distinct values,\n"
    "null count, Shannon entropy, and the most common value.\n";
}  // namespace

int CmdProfile(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.GetBool("help")) {
    out << kUsage;
    return kExitOk;
  }
  if (Status s = args.CheckKnown({"help"}); !s.ok()) {
    return FailWith(s, "profile", err);
  }
  if (Status s = args.RequirePositional(1, "pcbl profile <data.csv>");
      !s.ok()) {
    return FailWith(s, "profile", err);
  }
  auto table = LoadCsvTable(args.positional()[0]);
  if (!table.ok()) return FailWith(table.status(), "profile", err);

  out << args.positional()[0] << ": "
      << WithThousandsSeparators(table->num_rows()) << " rows, "
      << table->num_attributes() << " attributes\n\n";
  harness::TextTable grid(
      {"attribute", "distinct", "nulls", "entropy", "top value", "top count"});
  for (const AttributeSummary& a : SummarizeAttributes(*table)) {
    grid.AddRowValues(a.name, a.distinct_values, a.null_count,
                      StrFormat("%.2f", a.entropy_bits), a.top_value,
                      a.top_count);
  }
  out << grid.ToMarkdown();
  return kExitOk;
}

}  // namespace cli
}  // namespace pcbl
