// `pcbl profile <data.csv>` — the data-profiling entry point: row count and
// per-attribute distinct counts, nulls, entropy, and modal values. This is
// the information an analyst inspects before choosing a label bound.
//
// `--pairs N` extends the profile with the pairwise label sizes |P_{i,j}|
// of every attribute pair, sized through the dataset's shared
// CountingService in one parallel batch — precisely the quantities that
// determine which subsets fit a bound B_s (the smallest pairs are the
// seeds of every within-bound label). The service is acquired from the
// process-wide ServiceRegistry (a re-profile of the same data sizes from
// the warm cache) and the registry's hit/miss/resident-bytes counters
// are reported with the pairs. `--threads`, `--cache-budget` and
// `--no-engine` configure the service exactly as in `pcbl build`;
// `--service-budget` bounds the registry's process-wide cache memory.
#include <algorithm>
#include <memory>
#include <ostream>
#include <vector>

#include "cli/commands.h"
#include "cli/common.h"
#include "harness/tablefmt.h"
#include "pattern/counting_service.h"
#include "relation/stats.h"
#include "util/str.h"

namespace pcbl {
namespace cli {

namespace {
constexpr char kUsage[] =
    "usage: pcbl profile <data.csv> [flags]\n"
    "\n"
    "Prints per-attribute statistics of a CSV dataset: distinct values,\n"
    "null count, Shannon entropy, and the most common value.\n"
    "\n"
    "flags:\n"
    "  --pairs N          also print the N smallest pairwise label sizes\n"
    "                     |P_S| over all attribute pairs (0 = all pairs);\n"
    "                     these are the candidate seeds of a bound-B_s\n"
    "                     label search\n"
    "  --threads N        worker threads for the pairwise sizing batch\n"
    "                     (0 = all hardware threads)\n"
    "  --no-engine        size pairs with serial one-shot scans instead\n"
    "                     of the batched counting engine\n"
    "  --cache-budget N   engine memoization budget in cached group\n"
    "                     entries (0 disables memoization)\n"
    "  --service-budget N process-wide memory budget (bytes) on the\n"
    "                     counting-service registry's caches\n"
    "                     (0 = unbounded)\n";
}  // namespace

int CmdProfile(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.GetBool("help")) {
    out << kUsage;
    return kExitOk;
  }
  if (Status s = args.CheckKnown({"help", "pairs", "threads", "no-engine",
                                  "cache-budget", "service-budget"});
      !s.ok()) {
    return FailWith(s, "profile", err);
  }
  if (Status s = args.RequirePositional(1, "pcbl profile <data.csv>");
      !s.ok()) {
    return FailWith(s, "profile", err);
  }
  if (!args.Has("pairs") &&
      (args.Has("threads") || args.Has("no-engine") ||
       args.Has("cache-budget") || args.Has("service-budget"))) {
    return FailWith(
        InvalidArgumentError("--threads/--no-engine/--cache-budget/"
                             "--service-budget require --pairs"),
        "profile", err);
  }
  auto pairs_limit = args.GetInt("pairs", 20);
  if (!pairs_limit.ok()) return FailWith(pairs_limit.status(), "profile", err);
  auto engine_options = ParseEngineOptions(args);
  if (!engine_options.ok()) {
    return FailWith(engine_options.status(), "profile", err);
  }
  auto loaded = LoadCsvTable(args.positional()[0]);
  if (!loaded.ok()) return FailWith(loaded.status(), "profile", err);
  auto table = std::make_shared<const Table>(std::move(*loaded));

  out << args.positional()[0] << ": "
      << WithThousandsSeparators(table->num_rows()) << " rows, "
      << table->num_attributes() << " attributes\n\n";
  harness::TextTable grid(
      {"attribute", "distinct", "nulls", "entropy", "top value", "top count"});
  for (const AttributeSummary& a : SummarizeAttributes(*table)) {
    grid.AddRowValues(a.name, a.distinct_values, a.null_count,
                      StrFormat("%.2f", a.entropy_bits), a.top_value,
                      a.top_count);
  }
  out << grid.ToMarkdown();

  if (!args.Has("pairs")) return kExitOk;

  const CountingEngineOptions& options = *engine_options;
  auto service = AcquireRegistryService(args, table, options);
  if (!service.ok()) return FailWith(service.status(), "profile", err);

  const int n = table->num_attributes();
  std::vector<AttrMask> masks;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      masks.push_back(AttrMask::Single(i).Union(AttrMask::Single(j)));
    }
  }
  std::vector<int64_t> sizes;
  {
    std::lock_guard<std::mutex> lock((*service)->mutex());
    sizes = (*service)->engine().CountPatternsBatch(masks, /*budget=*/-1);
  }
  std::vector<size_t> order(masks.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return sizes[a] < sizes[b]; });
  const size_t limit = *pairs_limit > 0
                           ? std::min<size_t>(order.size(),
                                              static_cast<size_t>(*pairs_limit))
                           : order.size();
  out << "\npairwise label sizes (" << limit << " smallest of "
      << masks.size() << " pairs, " << options.num_threads << " threads)\n";
  harness::TextTable pair_grid({"pair", "|P_S|", "dense space"});
  for (size_t i = 0; i < limit; ++i) {
    const AttrMask m = masks[order[i]];
    const std::vector<int> attrs = m.ToIndices();
    const int64_t space =
        static_cast<int64_t>(table->DomainSize(attrs[0])) *
        static_cast<int64_t>(table->DomainSize(attrs[1]));
    pair_grid.AddRowValues(
        StrCat(table->schema().name(attrs[0]), " x ",
               table->schema().name(attrs[1])),
        sizes[order[i]], space);
  }
  out << pair_grid.ToMarkdown();
  out << FormatRegistryStats();
  return kExitOk;
}

}  // namespace cli
}  // namespace pcbl
