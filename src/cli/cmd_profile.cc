// `pcbl profile <data.csv>` — the data-profiling entry point: row count and
// per-attribute distinct counts, nulls, entropy, and modal values. This is
// the information an analyst inspects before choosing a label bound.
//
// `--pairs N` extends the profile with the pairwise label sizes |P_{i,j}|
// of every attribute pair, answered by a pcbl::api Session profile query
// (one parallel sizing batch through the dataset's shared counting
// service) — precisely the quantities that determine which subsets fit a
// bound B_s (the smallest pairs are the seeds of every within-bound
// label). The Dataset acquires its service from the process-wide
// registry (a re-profile of the same data sizes from the warm cache) and
// the registry's hit/miss/resident-bytes counters are reported with the
// pairs. `--threads`, `--cache-budget` and `--no-engine` configure the
// session exactly as in `pcbl build`; `--service-budget` bounds the
// registry's process-wide cache memory.
#include <algorithm>
#include <memory>
#include <ostream>
#include <vector>

#include "api/dataset.h"
#include "api/query.h"
#include "api/session.h"
#include "cli/commands.h"
#include "cli/common.h"
#include "harness/tablefmt.h"
#include "pattern/service_registry.h"
#include "relation/stats.h"
#include "util/str.h"

namespace pcbl {
namespace cli {

namespace {
constexpr char kUsage[] =
    "usage: pcbl profile <data.csv> [flags]\n"
    "\n"
    "Prints per-attribute statistics of a CSV dataset: distinct values,\n"
    "null count, Shannon entropy, and the most common value.\n"
    "\n"
    "flags:\n"
    "  --pairs N          also print the N smallest pairwise label sizes\n"
    "                     |P_S| over all attribute pairs (0 = all pairs);\n"
    "                     these are the candidate seeds of a bound-B_s\n"
    "                     label search\n"
    "  --threads N        worker threads for the pairwise sizing batch\n"
    "                     (0 = all hardware threads)\n"
    "  --no-engine        size pairs with serial one-shot scans instead\n"
    "                     of the batched counting engine\n"
    "  --cache-budget N   engine memoization budget in cached group\n"
    "                     entries (0 disables memoization)\n"
    "  --service-budget N process-wide memory budget (bytes) on the\n"
    "                     counting-service registry's caches\n"
    "                     (0 = unbounded)\n"
    "  --no-result-cache  bypass the whole-query result tier for the\n"
    "                     pairwise sizing (results are identical either\n"
    "                     way)\n"
    "  --result-cache-budget N\n"
    "                     byte budget of the per-service result cache\n"
    "                     (0 = dedup only, cache nothing)\n"
    "  --kernel K         SIMD sizing-kernel ISA for the pairwise sizing:\n"
    "                     scalar, avx2, neon, or auto (default)\n"
    "  --min-rows-per-morsel N\n"
    "                     minimum rows per morsel for intra-subset\n"
    "                     parallel scans (0 disables)\n"
    "  --spill-dir DIR    warm-start spill directory: restores the\n"
    "                     dataset's cached PC sets before sizing and\n"
    "                     spills them back before exit (valid without\n"
    "                     --pairs — it configures the dataset itself)\n";
}  // namespace

int CmdProfile(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.GetBool("help")) {
    out << kUsage;
    return kExitOk;
  }
  if (Status s = args.CheckKnown({"help", "pairs", "threads", "no-engine",
                                  "cache-budget", "service-budget",
                                  "no-result-cache", "result-cache-budget",
                                  "kernel", "min-rows-per-morsel",
                                  "spill-dir"});
      !s.ok()) {
    return FailWith(s, "profile", err);
  }
  if (Status s = args.RequirePositional(1, "pcbl profile <data.csv>");
      !s.ok()) {
    return FailWith(s, "profile", err);
  }
  auto flags = ParseServiceFlags(args);
  if (!flags.ok()) return FailWith(flags.status(), "profile", err);
  // --spill-dir is exempt from the require-pairs rule: it configures the
  // dataset's service (restore on acquire, spill on exit), which happens
  // whether or not the pairwise sizing runs.
  const bool sizing_flags_given =
      args.Has("threads") || args.Has("no-engine") ||
      args.Has("cache-budget") || args.Has("service-budget") ||
      args.Has("no-result-cache") || args.Has("result-cache-budget") ||
      args.Has("kernel") || args.Has("min-rows-per-morsel");
  if (!args.Has("pairs") && sizing_flags_given) {
    return FailWith(
        InvalidArgumentError("--threads/--no-engine/--cache-budget/"
                             "--service-budget/--no-result-cache/"
                             "--result-cache-budget/--kernel/"
                             "--min-rows-per-morsel require --pairs"),
        "profile", err);
  }
  auto pairs_limit = args.GetInt("pairs", 20);
  if (!pairs_limit.ok()) return FailWith(pairs_limit.status(), "profile", err);

  auto dataset =
      api::Dataset::FromCsvFile(args.positional()[0],
                                flags->ToDatasetOptions());
  if (!dataset.ok()) return FailWith(dataset.status(), "profile", err);
  const Table& table = dataset->table();

  out << args.positional()[0] << ": "
      << WithThousandsSeparators(table.num_rows()) << " rows, "
      << table.num_attributes() << " attributes\n\n";
  harness::TextTable grid(
      {"attribute", "distinct", "nulls", "entropy", "top value", "top count"});
  for (const AttributeSummary& a : SummarizeAttributes(table)) {
    grid.AddRowValues(a.name, a.distinct_values, a.null_count,
                      StrFormat("%.2f", a.entropy_bits), a.top_value,
                      a.top_count);
  }
  out << grid.ToMarkdown();

  if (!args.Has("pairs")) {
    // Even without the pairwise sizing the acquire may have warmed the
    // service from the spill; persist whatever is resident before exit.
    if (!flags->spill_dir.empty()) {
      ServiceRegistry::Global().SpillResident();
    }
    return kExitOk;
  }

  auto session = api::Session::Open(*dataset, flags->ToSessionOptions());
  if (!session.ok()) return FailWith(session.status(), "profile", err);
  const api::QueryResult query = (*session)->Run(api::QuerySpec::Profile());
  if (!query.status.ok()) return FailWith(query.status, "profile", err);

  std::vector<size_t> order(query.pairs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return query.pairs[a].size < query.pairs[b].size;
  });
  const size_t limit = *pairs_limit > 0
                           ? std::min<size_t>(order.size(),
                                              static_cast<size_t>(*pairs_limit))
                           : order.size();
  out << "\npairwise label sizes (" << limit << " smallest of "
      << query.pairs.size() << " pairs, "
      << (*session)->options().num_threads << " threads)\n";
  harness::TextTable pair_grid({"pair", "|P_S|", "dense space"});
  for (size_t i = 0; i < limit; ++i) {
    const api::PairwiseSize& p = query.pairs[order[i]];
    const int64_t space =
        static_cast<int64_t>(table.DomainSize(p.attr_a)) *
        static_cast<int64_t>(table.DomainSize(p.attr_b));
    pair_grid.AddRowValues(
        StrCat(table.schema().name(p.attr_a), " x ",
               table.schema().name(p.attr_b)),
        p.size, space);
  }
  out << pair_grid.ToMarkdown();
  out << FormatSizingConfig(*flags);
  // Spill the warmed service back before the stats print so the line
  // already reflects the spilled bytes (docs/PERSISTENCE.md).
  if (!flags->spill_dir.empty()) {
    ServiceRegistry::Global().SpillResident();
  }
  out << FormatRegistryStats();
  return kExitOk;
}

}  // namespace cli
}  // namespace pcbl
