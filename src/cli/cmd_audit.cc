// `pcbl audit <label>` — fitness-for-use warnings from a label alone: the
// paper's motivating workflow (Sec. I) of turning count metadata into
// "inadequate representation" / "dangerous intersected combination"
// warnings without touching the data. Routed through the pcbl::api
// artifact facade, the blessed label-only surface.
#include <ostream>
#include <utility>

#include "api/artifact.h"
#include "cli/commands.h"
#include "cli/common.h"
#include "core/warnings.h"
#include "harness/tablefmt.h"
#include "util/str.h"

namespace pcbl {
namespace cli {

namespace {
constexpr char kUsage[] =
    "usage: pcbl audit <label.{json,bin}> [flags]\n"
    "\n"
    "flags:\n"
    "  --attrs A,B,C     attributes to intersect (default: all)\n"
    "  --min-count N     underrepresentation threshold (default 100)\n"
    "  --max-share F     skew threshold as a fraction of rows (default 0.5)\n"
    "  --corr-factor F   correlation deviation factor (default 2.0)\n"
    "  --max-arity K     intersection arity scanned (default 2)\n"
    "  --limit N         warnings printed per kind (default 20, 0 = all)\n";
}  // namespace

int CmdAudit(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.GetBool("help")) {
    out << kUsage;
    return kExitOk;
  }
  if (Status s = args.CheckKnown({"help", "attrs", "min-count", "max-share",
                                  "corr-factor", "max-arity", "limit"});
      !s.ok()) {
    return FailWith(s, "audit", err);
  }
  if (Status s = args.RequirePositional(1, "pcbl audit <label>"); !s.ok()) {
    return FailWith(s, "audit", err);
  }
  AuditOptions options;
  auto min_count = args.GetInt("min-count", options.min_group_count);
  if (!min_count.ok()) return FailWith(min_count.status(), "audit", err);
  options.min_group_count = *min_count;
  auto max_share = args.GetDouble("max-share", options.max_group_share);
  if (!max_share.ok()) return FailWith(max_share.status(), "audit", err);
  options.max_group_share = *max_share;
  auto corr = args.GetDouble("corr-factor", options.correlation_factor);
  if (!corr.ok()) return FailWith(corr.status(), "audit", err);
  options.correlation_factor = *corr;
  auto arity = args.GetInt("max-arity", options.max_arity);
  if (!arity.ok()) return FailWith(arity.status(), "audit", err);
  options.max_arity = static_cast<int>(*arity);
  auto limit = args.GetInt("limit", 20);
  if (!limit.ok()) return FailWith(limit.status(), "audit", err);

  auto label = api::LoadLabelArtifact(args.positional()[0]);
  if (!label.ok()) return FailWith(label.status(), "audit", err);
  // Index once; the audit estimates every enumerated intersection.
  const api::LabelArtifact artifact(std::move(*label));

  std::vector<std::string> attrs;
  const std::string attrs_flag = args.GetString("attrs");
  if (!attrs_flag.empty()) {
    for (const std::string& raw : Split(attrs_flag, ',')) {
      const std::string name(Trim(raw));
      if (!name.empty()) attrs.push_back(name);
    }
  }

  auto warnings = api::AuditLabelArtifact(artifact, attrs, options);
  if (!warnings.ok()) return FailWith(warnings.status(), "audit", err);

  out << "label:    " << args.positional()[0] << " ("
      << WithThousandsSeparators(artifact.total_rows()) << " rows)\n";
  out << "warnings: " << warnings->size() << " (min-count "
      << options.min_group_count << ", max-share "
      << PercentString(options.max_group_share, 0) << ", corr-factor "
      << StrFormat("%.1f", options.correlation_factor) << ")\n\n";

  WarningKind current = WarningKind::kUnderrepresented;
  bool first_section = true;
  int64_t shown_in_section = 0;
  int64_t suppressed = 0;
  for (const FitnessWarning& w : *warnings) {
    if (first_section || w.kind != current) {
      if (suppressed > 0) {
        out << "  ... " << suppressed << " more\n";
        suppressed = 0;
      }
      current = w.kind;
      first_section = false;
      shown_in_section = 0;
      out << "[" << WarningKindName(w.kind) << "]\n";
    }
    if (*limit > 0 && shown_in_section >= *limit) {
      ++suppressed;
      continue;
    }
    ++shown_in_section;
    if (w.kind == WarningKind::kCorrelated) {
      out << StrFormat("  %-60s est %.1f vs independent %.1f\n",
                       w.GroupString().c_str(), w.estimated, w.reference);
    } else {
      out << StrFormat("  %-60s est %.1f (threshold %.1f)\n",
                       w.GroupString().c_str(), w.estimated, w.reference);
    }
  }
  if (suppressed > 0) out << "  ... " << suppressed << " more\n";
  if (warnings->empty()) out << "no warnings at these thresholds\n";
  return kExitOk;
}

}  // namespace cli
}  // namespace pcbl
