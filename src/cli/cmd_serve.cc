// `pcbl serve` — the out-of-process, multi-tenant label service
// (docs/SERVING.md). Loads a catalog of named CSV datasets, listens on
// a TCP or Unix-domain address, and answers wire-protocol queries
// (server/wire.h) until a client sends shutdown or the process is
// killed. Per-tenant engine/result budgets come from the shared service
// flag set; overload is shed with kResourceExhausted instead of queued.
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "cli/commands.h"
#include "cli/common.h"
#include "pattern/service_registry.h"
#include "server/catalog.h"
#include "server/server.h"
#include "util/str.h"

namespace pcbl {
namespace cli {

namespace {
constexpr char kUsage[] =
    "usage: pcbl serve --listen ADDR --catalog name=file.csv,... [flags]\n"
    "\n"
    "Serves label queries over a socket. ADDR is host:port (port 0 binds\n"
    "an ephemeral port, printed on startup) or unix:/path. Clients query\n"
    "with `pcbl query --connect ADDR --dataset NAME ...`; content-equal\n"
    "datasets share one warm counting service across tenants.\n"
    "\n"
    "flags:\n"
    "  --listen ADDR          listen address (default 127.0.0.1:0)\n"
    "  --catalog SPEC         comma-separated name=csv-path pairs served\n"
    "                         at startup (clients can register more)\n"
    "  --max-inflight N       server-wide concurrent-query ceiling\n"
    "                         (default 64)\n"
    "  --tenant-max-inflight N\n"
    "                         per-tenant in-flight quota; the N+1th\n"
    "                         concurrent query of one tenant is shed with\n"
    "                         ResourceExhausted (default 8)\n"
    "  --retry-after-ms N     backoff hint attached to shed replies\n"
    "                         (default 50)\n"
    "  --max-frame-bytes N    per-frame payload ceiling (default 64MiB)\n"
    "  --service-budget N     process-wide registry memory budget (bytes)\n"
    "  --cache-budget N       per-tenant engine memoization budget\n"
    "  --result-cache-budget N\n"
    "                         per-tenant completed-result cache budget\n"
    "  --spill-dir DIR        warm-start spill directory: restores each\n"
    "                         dataset's cached PC sets on startup (the\n"
    "                         first post-restart query runs without full\n"
    "                         scans) and spills them back on shutdown\n"
    "  --verbose              per-request log lines on stderr\n";

Status BuildCatalog(const std::string& spec, server::Catalog* catalog,
                    std::vector<std::string>* names) {
  if (spec.empty()) return Status::Ok();
  for (const std::string& item : Split(spec, ',')) {
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == item.size()) {
      return InvalidArgumentError(
          StrCat("--catalog entry '", item, "' is not name=path"));
    }
    const std::string name = item.substr(0, eq);
    PCBL_RETURN_IF_ERROR(catalog->AddFromCsvFile(name, item.substr(eq + 1)));
    names->push_back(name);
  }
  return Status::Ok();
}

}  // namespace

int CmdServe(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.GetBool("help")) {
    out << kUsage;
    return kExitOk;
  }
  if (Status s = args.CheckKnown(
          {"help", "listen", "catalog", "max-inflight",
           "tenant-max-inflight", "retry-after-ms", "max-frame-bytes",
           "service-budget", "cache-budget", "result-cache-budget",
           "no-engine", "no-result-cache", "threads", "kernel",
           "min-rows-per-morsel", "spill-dir", "verbose"});
      !s.ok()) {
    return FailWith(s, "serve", err);
  }
  auto flags = ParseServiceFlags(args);
  if (!flags.ok()) return FailWith(flags.status(), "serve", err);
  // Applied up front (not just through each dataset's options) so
  // datasets clients register later warm-start too.
  if (!flags->spill_dir.empty()) {
    ServiceRegistry::Global().SetSpillDirectory(flags->spill_dir);
  }

  server::ServerOptions options;
  options.address = args.GetString("listen", "127.0.0.1:0");
  auto max_inflight = args.GetInt("max-inflight", options.max_inflight);
  if (!max_inflight.ok()) return FailWith(max_inflight.status(), "serve", err);
  auto tenant_inflight =
      args.GetInt("tenant-max-inflight", options.tenant_max_inflight);
  if (!tenant_inflight.ok()) {
    return FailWith(tenant_inflight.status(), "serve", err);
  }
  auto retry_after = args.GetInt("retry-after-ms", options.retry_after_ms);
  if (!retry_after.ok()) return FailWith(retry_after.status(), "serve", err);
  auto max_frame = args.GetInt("max-frame-bytes", options.max_frame_bytes);
  if (!max_frame.ok()) return FailWith(max_frame.status(), "serve", err);
  if (*max_inflight <= 0 || *tenant_inflight <= 0 || *max_frame <= 0) {
    return FailWith(
        InvalidArgumentError("--max-inflight, --tenant-max-inflight, and "
                             "--max-frame-bytes must be positive"),
        "serve", err);
  }
  options.max_inflight = static_cast<int>(*max_inflight);
  options.tenant_max_inflight = static_cast<int>(*tenant_inflight);
  options.retry_after_ms = *retry_after;
  options.max_frame_bytes = *max_frame;
  options.verbose = args.GetBool("verbose");
  if (flags->has_cache_budget) {
    options.tenant_counting_budget = flags->cache_budget;
  }
  if (flags->has_result_cache_budget) {
    options.tenant_result_budget = flags->result_cache_budget;
  }

  server::Catalog catalog(flags->ToDatasetOptions());
  std::vector<std::string> names;
  if (Status s = BuildCatalog(args.GetString("catalog"), &catalog, &names);
      !s.ok()) {
    return FailWith(s, "serve", err);
  }

  server::Server server(&catalog, options);
  if (Status s = server.Start(); !s.ok()) return FailWith(s, "serve", err);
  out << "pcbl serve: listening on " << server.bound_address() << "\n";
  if (names.empty()) {
    out << "catalog:    (empty — clients may register datasets)\n";
  } else {
    out << "catalog:    " << Join(names, ", ") << "\n";
  }
  out.flush();

  server.Wait();

  // Orderly shutdown: spill every warm service before the stats print,
  // so the next `pcbl serve --spill-dir` answers its first query from
  // the spill instead of full-table scans (and the registry line below
  // already shows the spilled bytes).
  if (!flags->spill_dir.empty()) {
    ServiceRegistry::Global().SpillResident();
  }

  // Final per-tenant accounting, the log an operator reads after drain.
  const server::wire::StatsReply stats = server.BuildStatsReply("");
  for (const auto& row : stats.tenants) {
    out << StrFormat(
        "tenant %s: queries=%lld shed=%lld errors=%lld sessions=%lld\n",
        row.tenant.c_str(), static_cast<long long>(row.queries),
        static_cast<long long>(row.shed),
        static_cast<long long>(row.errors),
        static_cast<long long>(row.sessions));
  }
  out << FormatRegistryStats();
  server.Stop();
  return kExitOk;
}

}  // namespace cli
}  // namespace pcbl
