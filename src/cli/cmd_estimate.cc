// `pcbl estimate <label> --pattern "attr=value,..."` — answers a pattern
// count query from a saved label alone, exactly the consumer-side use the
// paper envisages (a judge asking "how many Hispanic women does this
// training set contain?" without access to the data). Routed through the
// pcbl::api façade: the label side via api/artifact.h, the data side via
// a Dataset/Session true-count query.
//
// With `--data <csv>` the command additionally computes the *true* count
// through the dataset's shared counting service — the Dataset acquires
// it from the process-wide registry, so repeated spot checks over the
// same data reuse one warm cache — and reports the estimation error plus
// the registry's hit/miss/resident-bytes counters. `--threads`,
// `--cache-budget` and `--no-engine` configure the session exactly as in
// `pcbl build`; `--service-budget` bounds the registry's process-wide
// cache memory.
#include <cmath>
#include <memory>
#include <ostream>
#include <utility>

#include "api/artifact.h"
#include "api/dataset.h"
#include "api/query.h"
#include "api/session.h"
#include "cli/commands.h"
#include "cli/common.h"
#include "pattern/service_registry.h"
#include "util/str.h"

namespace pcbl {
namespace cli {

namespace {
constexpr char kUsage[] =
    "usage: pcbl estimate <label.{json,bin}> --pattern \"a=x,b=y\" [flags]\n"
    "\n"
    "Estimates the count of the given attribute-value combination from the\n"
    "label (Definition 2.11). Attribute and value strings must match the\n"
    "labeled dataset's.\n"
    "\n"
    "flags:\n"
    "  --data FILE        also compute the true count from this CSV and\n"
    "                     report the estimation error\n"
    "  --threads N        worker threads of the counting service used for\n"
    "                     the true count (0 = all hardware threads)\n"
    "  --no-engine        count with the serial one-shot scan instead of\n"
    "                     the memoized counting engine\n"
    "  --cache-budget N   engine memoization budget in cached group\n"
    "                     entries (0 disables memoization)\n"
    "  --service-budget N process-wide memory budget (bytes) on the\n"
    "                     counting-service registry's caches\n"
    "                     (0 = unbounded)\n"
    "  --no-result-cache  bypass the whole-query result tier for the\n"
    "                     true count (results are identical either way)\n"
    "  --result-cache-budget N\n"
    "                     byte budget of the per-service result cache\n"
    "                     (0 = dedup only, cache nothing)\n"
    "  --kernel K         SIMD sizing-kernel ISA for the true count:\n"
    "                     scalar, avx2, neon, or auto (default)\n"
    "  --min-rows-per-morsel N\n"
    "                     minimum rows per morsel for intra-subset\n"
    "                     parallel scans (0 disables)\n"
    "  --spill-dir DIR    warm-start spill directory for the true-count\n"
    "                     service: restores its cached PC sets before\n"
    "                     the query and spills them back before exit\n";
}  // namespace

int CmdEstimate(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.GetBool("help")) {
    out << kUsage;
    return kExitOk;
  }
  if (Status s = args.CheckKnown({"help", "pattern", "data", "threads",
                                  "no-engine", "cache-budget",
                                  "service-budget", "no-result-cache",
                                  "result-cache-budget", "kernel",
                                  "min-rows-per-morsel", "spill-dir"});
      !s.ok()) {
    return FailWith(s, "estimate", err);
  }
  if (Status s = args.RequirePositional(
          1, "pcbl estimate <label> --pattern \"a=x,b=y\"");
      !s.ok()) {
    return FailWith(s, "estimate", err);
  }
  const std::string pattern_text = args.GetString("pattern");
  if (pattern_text.empty()) {
    return FailWith(InvalidArgumentError("--pattern is required"), "estimate",
                    err);
  }
  auto flags = ParseServiceFlags(args);
  if (!flags.ok()) return FailWith(flags.status(), "estimate", err);
  const std::string data_path = args.GetString("data");
  if (data_path.empty() && flags->any) {
    return FailWith(
        InvalidArgumentError("--threads/--no-engine/--cache-budget/"
                             "--service-budget/--no-result-cache/"
                             "--result-cache-budget/--kernel/"
                             "--min-rows-per-morsel require --data"),
        "estimate", err);
  }
  auto terms = ParseNamedPattern(pattern_text);
  if (!terms.ok()) return FailWith(terms.status(), "estimate", err);
  auto label = api::LoadLabelArtifact(args.positional()[0]);
  if (!label.ok()) return FailWith(label.status(), "estimate", err);
  const api::LabelArtifact artifact(std::move(*label));

  auto estimate = api::EstimateFromLabel(artifact, *terms);
  if (!estimate.ok()) return FailWith(estimate.status(), "estimate", err);

  const double share =
      artifact.total_rows() > 0
          ? *estimate / static_cast<double>(artifact.total_rows())
          : 0.0;
  out << "pattern:   " << pattern_text << "\n";
  out << StrFormat("estimate:  %.2f (~%lld of %lld rows, %s)\n", *estimate,
                   static_cast<long long>(std::llround(*estimate)),
                   static_cast<long long>(artifact.total_rows()),
                   PercentString(share).c_str());

  if (!data_path.empty()) {
    auto dataset =
        api::Dataset::FromCsvFile(data_path, flags->ToDatasetOptions());
    if (!dataset.ok()) return FailWith(dataset.status(), "estimate", err);
    auto session =
        api::Session::Open(*dataset, flags->ToSessionOptions());
    if (!session.ok()) return FailWith(session.status(), "estimate", err);
    const api::QueryResult query =
        (*session)->Run(api::QuerySpec::TrueCount(*terms));
    if (!query.status.ok()) return FailWith(query.status, "estimate", err);
    const int64_t actual = query.true_count;
    const double abs_err =
        std::abs(*estimate - static_cast<double>(actual));
    const double q_err =
        std::max(std::max(*estimate, 1.0),
                 std::max(static_cast<double>(actual), 1.0)) /
        std::min(std::max(*estimate, 1.0),
                 std::max(static_cast<double>(actual), 1.0));
    out << StrFormat("actual:    %lld (from %s)\n",
                     static_cast<long long>(actual), data_path.c_str());
    out << StrFormat("abs error: %.2f\n", abs_err);
    out << StrFormat("q-error:   %.2f\n", q_err);
    out << FormatSizingConfig(*flags);
    // Spill the warmed service back before the stats print so the line
    // already reflects the spilled bytes (docs/PERSISTENCE.md).
    if (!flags->spill_dir.empty()) {
      ServiceRegistry::Global().SpillResident();
    }
    out << FormatRegistryStats();
  }
  return kExitOk;
}

}  // namespace cli
}  // namespace pcbl
