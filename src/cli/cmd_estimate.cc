// `pcbl estimate <label> --pattern "attr=value,..."` — answers a pattern
// count query from a saved label alone, exactly the consumer-side use the
// paper envisages (a judge asking "how many Hispanic women does this
// training set contain?" without access to the data).
#include <cmath>
#include <ostream>

#include "cli/commands.h"
#include "cli/common.h"
#include "util/str.h"

namespace pcbl {
namespace cli {

namespace {
constexpr char kUsage[] =
    "usage: pcbl estimate <label.{json,bin}> --pattern \"a=x,b=y\"\n"
    "\n"
    "Estimates the count of the given attribute-value combination from the\n"
    "label (Definition 2.11). Attribute and value strings must match the\n"
    "labeled dataset's.\n";
}  // namespace

int CmdEstimate(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.GetBool("help")) {
    out << kUsage;
    return kExitOk;
  }
  if (Status s = args.CheckKnown({"help", "pattern"}); !s.ok()) {
    return FailWith(s, "estimate", err);
  }
  if (Status s = args.RequirePositional(
          1, "pcbl estimate <label> --pattern \"a=x,b=y\"");
      !s.ok()) {
    return FailWith(s, "estimate", err);
  }
  const std::string pattern_text = args.GetString("pattern");
  if (pattern_text.empty()) {
    return FailWith(InvalidArgumentError("--pattern is required"), "estimate",
                    err);
  }
  auto terms = ParseNamedPattern(pattern_text);
  if (!terms.ok()) return FailWith(terms.status(), "estimate", err);
  auto label = LoadLabelFile(args.positional()[0]);
  if (!label.ok()) return FailWith(label.status(), "estimate", err);

  auto estimate = label->EstimateCount(*terms);
  if (!estimate.ok()) return FailWith(estimate.status(), "estimate", err);

  const double share =
      label->total_rows > 0
          ? *estimate / static_cast<double>(label->total_rows)
          : 0.0;
  out << "pattern:   " << pattern_text << "\n";
  out << StrFormat("estimate:  %.2f (~%lld of %lld rows, %s)\n", *estimate,
                   static_cast<long long>(std::llround(*estimate)),
                   static_cast<long long>(label->total_rows),
                   PercentString(share).c_str());
  return kExitOk;
}

}  // namespace cli
}  // namespace pcbl
