// `pcbl build <data.csv>` — runs the optimal-label search (Algorithm 1 by
// default, the naive enumeration on request) and optionally writes the
// resulting portable label to disk. Wired through the pcbl::api façade:
// the dataset's counting service comes from the process-wide registry,
// so repeated builds (and concurrent sessions) over content-equal data
// share one warm cache.
#include <memory>
#include <ostream>
#include <string>

#include "api/dataset.h"
#include "api/query.h"
#include "api/session.h"
#include "cli/commands.h"
#include "cli/common.h"
#include "core/portable_label.h"
#include "pattern/service_registry.h"
#include "persist/spill_store.h"
#include "util/str.h"

namespace pcbl {
namespace cli {

namespace {
constexpr char kUsage[] =
    "usage: pcbl build <data.csv> [flags]\n"
    "\n"
    "Searches the optimal label (Definition 2.15) for the dataset.\n"
    "\n"
    "flags:\n"
    "  --bound N          label size bound B_s (default 100)\n"
    "  --algo A           topdown (Algorithm 1, default) or naive\n"
    "  --metric M         max-abs (default), mean-abs, max-q, mean-q\n"
    "  --focus A,B,C      rank labels against the patterns over these\n"
    "                     (e.g. sensitive) attributes instead of P_A\n"
    "                     (Definition 2.15's custom pattern set)\n"
    "  --time-limit SECS  cap candidate generation (0 = unlimited)\n"
    "  --threads N        worker threads for candidate sizing/ranking\n"
    "                     (0 = all hardware threads; results are\n"
    "                     identical for any value)\n"
    "  --no-engine        size candidates with serial per-subset scans\n"
    "                     instead of the batched+memoized counting engine\n"
    "  --cache-budget N   engine memoization budget in cached group\n"
    "                     entries (0 disables memoization)\n"
    "  --service-budget N process-wide memory budget (bytes) on the\n"
    "                     counting-service registry's caches\n"
    "                     (0 = unbounded)\n"
    "  --no-result-cache  bypass the whole-query result tier (identical\n"
    "                     in-flight queries dedup, identical repeats\n"
    "                     answer from cache; results are identical\n"
    "                     either way)\n"
    "  --result-cache-budget N\n"
    "                     byte budget of the per-service result cache\n"
    "                     (0 = dedup only, cache nothing)\n"
    "  --kernel K         SIMD sizing-kernel ISA: scalar, avx2, neon, or\n"
    "                     auto (default: best available for this host;\n"
    "                     results are identical for any choice)\n"
    "  --min-rows-per-morsel N\n"
    "                     minimum rows per morsel when one subset scan\n"
    "                     splits across threads (0 disables intra-subset\n"
    "                     parallelism; results are identical)\n"
    "  --spill-dir DIR    warm-start spill directory: restores the\n"
    "                     counting service's cached PC sets before the\n"
    "                     search, answers an identical repeat build from\n"
    "                     the spilled label artifact, and spills both\n"
    "                     back before exit\n"
    "  --out FILE         save the portable label (JSON; see --binary)\n"
    "  --binary           save in the compact binary format instead\n"
    "  --name NAME        dataset display name stored in the label\n";

std::string BaseName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}
}  // namespace

int CmdBuild(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.GetBool("help")) {
    out << kUsage;
    return kExitOk;
  }
  if (Status s = args.CheckKnown({"help", "bound", "algo", "metric",
                                  "focus", "time-limit", "threads",
                                  "no-engine", "cache-budget",
                                  "service-budget", "no-result-cache",
                                  "result-cache-budget", "kernel",
                                  "min-rows-per-morsel", "spill-dir",
                                  "out", "binary", "name"});
      !s.ok()) {
    return FailWith(s, "build", err);
  }
  if (Status s = args.RequirePositional(1, "pcbl build <data.csv> [flags]");
      !s.ok()) {
    return FailWith(s, "build", err);
  }
  auto bound = args.GetInt("bound", 100);
  if (!bound.ok()) return FailWith(bound.status(), "build", err);
  auto time_limit = args.GetDouble("time-limit", 0.0);
  if (!time_limit.ok()) return FailWith(time_limit.status(), "build", err);
  auto flags = ParseServiceFlags(args);
  if (!flags.ok()) return FailWith(flags.status(), "build", err);
  auto metric = ParseMetric(args.GetString("metric", "max-abs"));
  if (!metric.ok()) return FailWith(metric.status(), "build", err);
  const std::string algo = ToLower(args.GetString("algo", "topdown"));
  if (algo != "topdown" && algo != "naive") {
    return FailWith(
        InvalidArgumentError("--algo expects topdown or naive"), "build",
        err);
  }

  auto dataset =
      api::Dataset::FromCsvFile(args.positional()[0],
                                flags->ToDatasetOptions());
  if (!dataset.ok()) return FailWith(dataset.status(), "build", err);
  const Table& table = dataset->table();

  api::QuerySpec spec = api::QuerySpec::LabelSearch(
      *bound, algo == "naive" ? api::QuerySpec::Algorithm::kNaive
                              : api::QuerySpec::Algorithm::kTopDown);
  spec.metric = *metric;
  spec.time_limit_seconds = *time_limit;

  // Definition 2.15's flexible pattern set: rank against the combinations
  // of the named (e.g. sensitive) attributes instead of P_A.
  std::string focus_desc = "P_A (all full patterns)";
  const std::string focus_flag = args.GetString("focus");
  if (!focus_flag.empty()) {
    std::vector<std::string> names;
    for (const std::string& raw : Split(focus_flag, ',')) {
      const std::string name(Trim(raw));
      if (name.empty()) continue;
      auto idx = table.schema().FindAttribute(name);
      if (!idx.ok()) return FailWith(idx.status(), "build", err);
      spec.focus.Set(*idx);
      names.push_back(name);
    }
    if (spec.focus.empty()) {
      return FailWith(InvalidArgumentError("--focus names no attributes"),
                      "build", err);
    }
    focus_desc = "patterns over {" + Join(names, ", ") + "}";
  }

  std::string label_name = args.GetString("name");
  if (label_name.empty()) label_name = BaseName(args.positional()[0]);
  const std::string out_path = args.GetString("out");

  // Warm-start artifact fast path (docs/PERSISTENCE.md): with
  // --spill-dir, a completed label for this exact (content, query) pair
  // may already be on disk — consume it without any search. A missing
  // or invalid record simply falls through to the cold path below.
  std::shared_ptr<persist::SpillStore> spill;
  QueryResultKey artifact_key{};
  if (!flags->spill_dir.empty() && api::QuerySpecCacheable(spec)) {
    spill = ServiceRegistry::Global().spill_store();
  }
  if (spill != nullptr) {
    artifact_key = api::CanonicalQueryKey(spec, dataset->fingerprint());
    if (auto bytes =
            spill->GetLabelArtifact(dataset->fingerprint(), artifact_key)) {
      auto portable = PortableLabelFromBinary(*bytes);
      if (portable.ok()) {
        out << "dataset:           " << args.positional()[0] << " ("
            << WithThousandsSeparators(table.num_rows()) << " rows, "
            << table.num_attributes() << " attributes)\n";
        std::vector<std::string> restored_attrs;
        for (int a : portable->label_attributes) {
          if (a >= 0 &&
              a < static_cast<int>(portable->attribute_names.size())) {
            restored_attrs.push_back(portable->attribute_names[a]);
          }
        }
        out << "label attributes:  "
            << (restored_attrs.empty() ? "(none within bound)"
                                       : Join(restored_attrs, ", "))
            << "\n";
        out << "label size |PC|:   " << portable->size() << "\n";
        out << "label artifact:    restored from spill (no search)\n";
        out << FormatRegistryStats();
        if (!out_path.empty()) {
          if (Status s =
                  SaveLabel(*portable, out_path, args.GetBool("binary"));
              !s.ok()) {
            return FailWith(s, "build", err);
          }
          out << "label written to:  " << out_path
              << (args.GetBool("binary") ? " (binary)" : " (JSON)") << "\n";
        }
        return kExitOk;
      }
    }
  }

  auto session = api::Session::Open(*dataset, flags->ToSessionOptions());
  if (!session.ok()) return FailWith(session.status(), "build", err);
  const api::QueryResult query = (*session)->Run(spec);
  if (!query.status.ok()) return FailWith(query.status, "build", err);
  const SearchResult& result = query.search;

  out << "dataset:           " << args.positional()[0] << " ("
      << WithThousandsSeparators(table.num_rows()) << " rows, "
      << table.num_attributes() << " attributes)\n";
  out << "algorithm:         " << (algo == "naive" ? "naive" : "top-down")
      << " (bound " << *bound << ", metric " << MetricName(spec.metric)
      << ")\n";
  std::vector<std::string> attr_names;
  for (int a : result.best_attrs.ToIndices()) {
    attr_names.push_back(table.schema().name(a));
  }
  out << "label attributes:  "
      << (attr_names.empty() ? "(none within bound)" : Join(attr_names, ", "))
      << "\n";
  out << "label size |PC|:   " << result.label.size() << "\n";
  out << "subsets examined:  " << result.stats.subsets_examined
      << (result.stats.timed_out ? " (time limit hit)" : "") << "\n";
  if ((*session)->options().use_counting_engine) {
    out << "candidate sizing:  " << result.stats.counting.direct_scans
        << " scans, " << result.stats.counting.rollups << " rollups, "
        << result.stats.counting.cache_hits << " cache hits ("
        << (*session)->options().num_threads << " threads)\n";
  }
  out << StrFormat("search time:       %.3f s\n", result.stats.total_seconds);
  out << "error over " << focus_desc << ":\n"
      << FormatErrorReport(result.error, table.num_rows());
  out << FormatSizingConfig(*flags);
  out << FormatRegistryStats();

  if (!out_path.empty() || spill != nullptr) {
    const PortableLabel portable =
        MakePortable(result.label, table, label_name);
    if (!out_path.empty()) {
      if (Status s = SaveLabel(portable, out_path, args.GetBool("binary"));
          !s.ok()) {
        return FailWith(s, "build", err);
      }
      out << "label written to:  " << out_path
          << (args.GetBool("binary") ? " (binary)" : " (JSON)") << "\n";
    }
    if (spill != nullptr) {
      // Persist the finished artifact and the service's warm state, so
      // an identical rerun answers from disk and a different query over
      // the same content starts with warm PC sets.
      spill->PutLabelArtifact(dataset->fingerprint(), artifact_key,
                              ToBinary(portable));
      ServiceRegistry::Global().SpillResident();
      out << "label artifact:    spilled to " << flags->spill_dir << "\n";
    }
  }
  return kExitOk;
}

}  // namespace cli
}  // namespace pcbl
