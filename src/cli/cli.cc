#include "cli/cli.h"

#include <functional>
#include <map>

#include "cli/args.h"
#include "cli/commands.h"

namespace pcbl {
namespace cli {

namespace {

struct CommandEntry {
  int (*run)(const Args&, std::ostream&, std::ostream&);
  const char* summary;
};

const std::map<std::string, CommandEntry>& CommandTable() {
  static const auto* table = new std::map<std::string, CommandEntry>{
      {"audit", {&CmdAudit, "fitness-for-use warnings from a label"}},
      {"bucketize", {&CmdBucketize, "bin numeric attributes into ranges"}},
      {"diff", {&CmdDiff, "change log between two label versions"}},
      {"profile", {&CmdProfile, "per-attribute statistics of a CSV dataset"}},
      {"build", {&CmdBuild, "search the optimal label for a CSV dataset"}},
      {"render", {&CmdRender, "print a label as a Fig. 1-style nutrition "
                              "label"}},
      {"estimate", {&CmdEstimate, "estimate a pattern count from a label"}},
      {"error", {&CmdError, "evaluate a label against a CSV dataset"}},
      {"synth", {&CmdSynth, "generate one of the paper's datasets"}},
      {"inspect", {&CmdInspect, "show label metadata"}},
      {"serve", {&CmdServe, "run the multi-tenant label server"}},
      {"query", {&CmdQuery, "query a running pcbl serve instance"}},
  };
  return *table;
}

}  // namespace

std::string UsageText() {
  std::string out =
      "pcbl — pattern-count-based labels for datasets (ICDE 2021)\n"
      "\n"
      "usage: pcbl <command> [args...]\n"
      "\n"
      "commands:\n";
  for (const auto& [name, entry] : CommandTable()) {
    out += "  ";
    out += name;
    out.append(name.size() < 10 ? 10 - name.size() : 1, ' ');
    out += entry.summary;
    out += "\n";
  }
  out += "\nRun `pcbl <command> --help` for command-specific flags.\n";
  return out;
}

int RunCli(const std::vector<std::string>& argv, std::ostream& out,
           std::ostream& err) {
  if (argv.empty() || argv[0] == "--help" || argv[0] == "help") {
    out << UsageText();
    return argv.empty() ? 2 : 0;
  }
  const auto it = CommandTable().find(argv[0]);
  if (it == CommandTable().end()) {
    err << "pcbl: unknown command \"" << argv[0] << "\"\n\n" << UsageText();
    return 2;
  }
  auto args = Args::Parse({argv.begin() + 1, argv.end()});
  if (!args.ok()) {
    err << "pcbl " << argv[0] << ": " << args.status().message() << "\n";
    return 2;
  }
  return it->second.run(*args, out, err);
}

}  // namespace cli
}  // namespace pcbl
