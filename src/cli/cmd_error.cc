// `pcbl error <label> <data.csv>` — evaluates a shipped label against a
// dataset: binds the label to the table by attribute name and reports the
// estimation error over the dataset's full patterns (the paper's P = P_A).
// Useful both to verify a freshly built label and to measure drift when
// the data has changed since the label was generated.
#include <ostream>

#include "cli/commands.h"
#include "cli/common.h"
#include "core/bound_label.h"
#include "core/error.h"
#include "core/render.h"
#include "pattern/full_pattern_index.h"
#include "util/str.h"

namespace pcbl {
namespace cli {

namespace {
constexpr char kUsage[] =
    "usage: pcbl error <label.{json,bin}> <data.csv> [flags]\n"
    "\n"
    "flags:\n"
    "  --mode M   exact (default) or early (the Sec. IV-C early-terminated\n"
    "             max-error scan)\n"
    "  --render   also print the Fig. 1-style nutrition label with the\n"
    "             freshly computed error summary block\n";
}  // namespace

int CmdError(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.GetBool("help")) {
    out << kUsage;
    return kExitOk;
  }
  if (Status s = args.CheckKnown({"help", "mode", "render"}); !s.ok()) {
    return FailWith(s, "error", err);
  }
  if (Status s =
          args.RequirePositional(2, "pcbl error <label> <data.csv>");
      !s.ok()) {
    return FailWith(s, "error", err);
  }
  const std::string mode_name = ToLower(args.GetString("mode", "exact"));
  if (mode_name != "exact" && mode_name != "early") {
    return FailWith(InvalidArgumentError("--mode expects exact or early"),
                    "error", err);
  }
  auto label = LoadLabelFile(args.positional()[0]);
  if (!label.ok()) return FailWith(label.status(), "error", err);
  auto table = LoadCsvTable(args.positional()[1]);
  if (!table.ok()) return FailWith(table.status(), "error", err);

  auto bound = BoundPortableLabel::Bind(*label, *table);
  if (!bound.ok()) return FailWith(bound.status(), "error", err);

  const FullPatternIndex index = FullPatternIndex::Build(*table);
  const ErrorReport report = EvaluateOverFullPatterns(
      index, *bound,
      mode_name == "early" ? ErrorMode::kEarlyTermination
                           : ErrorMode::kExact);

  out << "label:    " << args.positional()[0] << " (|PC| = "
      << bound->FootprintEntries() << ", labeled rows = "
      << WithThousandsSeparators(label->total_rows) << ")\n";
  out << "dataset:  " << args.positional()[1] << " ("
      << WithThousandsSeparators(table->num_rows()) << " rows, "
      << WithThousandsSeparators(index.num_patterns())
      << " distinct full patterns)\n";
  if (label->total_rows != table->num_rows()) {
    out << "note:     row counts differ — the label was built on another "
           "version of this data; errors below include that drift\n";
  }
  out << "error over P_A:\n" << FormatErrorReport(report, table->num_rows());
  if (args.GetBool("render")) {
    out << "\n" << RenderNutritionLabel(*label, &report);
  }
  return kExitOk;
}

}  // namespace cli
}  // namespace pcbl
