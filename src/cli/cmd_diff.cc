// `pcbl diff <old-label> <new-label>` — what changed between two releases
// of a dataset, as seen through their labels alone: marginal shifts, new
// or vanished values, and pattern-count churn over the shared S.
// Routed through the pcbl::api artifact facade, the blessed label-only
// surface.
#include <ostream>
#include <utility>

#include "api/artifact.h"
#include "cli/commands.h"
#include "cli/common.h"
#include "core/label_diff.h"
#include "util/str.h"

namespace pcbl {
namespace cli {

namespace {
constexpr char kUsage[] =
    "usage: pcbl diff <old-label.{json,bin}> <new-label.{json,bin}> [flags]\n"
    "\n"
    "flags:\n"
    "  --limit N   rows shown per section (default 20, 0 = all)\n";
}  // namespace

int CmdDiff(const Args& args, std::ostream& out, std::ostream& err) {
  if (args.GetBool("help")) {
    out << kUsage;
    return kExitOk;
  }
  if (Status s = args.CheckKnown({"help", "limit"}); !s.ok()) {
    return FailWith(s, "diff", err);
  }
  if (Status s =
          args.RequirePositional(2, "pcbl diff <old-label> <new-label>");
      !s.ok()) {
    return FailWith(s, "diff", err);
  }
  auto limit = args.GetInt("limit", 20);
  if (!limit.ok()) return FailWith(limit.status(), "diff", err);
  auto old_label = api::LoadLabelArtifact(args.positional()[0]);
  if (!old_label.ok()) return FailWith(old_label.status(), "diff", err);
  auto new_label = api::LoadLabelArtifact(args.positional()[1]);
  if (!new_label.ok()) return FailWith(new_label.status(), "diff", err);

  const api::LabelArtifact old_artifact(std::move(*old_label));
  const api::LabelArtifact new_artifact(std::move(*new_label));
  const LabelDiff diff = api::DiffLabelArtifacts(old_artifact, new_artifact);
  out << args.positional()[0] << " -> " << args.positional()[1] << "\n";
  out << RenderLabelDiff(diff, static_cast<int>(*limit));
  return kExitOk;
}

}  // namespace cli
}  // namespace pcbl
