// Failure-injection tests: corrupted label files and malformed CSV input
// must surface Status errors — never crashes, hangs, or silent garbage.
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "core/portable_label.h"
#include "relation/csv.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

PortableLabel DemoLabel() {
  Table t = workload::MakeFig2Demo();
  Label l = Label::Build(t, AttrMask::FromIndices({1, 3}));
  return MakePortable(l, t, "fig2-demo");
}

TEST(BinaryCorruptionTest, EveryTruncationFailsCleanly) {
  const std::string bytes = ToBinary(DemoLabel());
  ASSERT_GT(bytes.size(), 16u);
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto result = PortableLabelFromBinary(bytes.substr(0, len));
    EXPECT_FALSE(result.ok()) << "truncation at " << len << " parsed";
  }
  // The untruncated form round-trips.
  auto full = PortableLabelFromBinary(bytes);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->dataset_name, "fig2-demo");
  EXPECT_EQ(full->size(), 3);
}

TEST(BinaryCorruptionTest, SingleByteFlipsNeverCrash) {
  const std::string bytes = ToBinary(DemoLabel());
  // Flip each byte through a few values; parsing must either fail with a
  // Status or produce *some* label — never crash or hang.
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    for (uint8_t flip : {0x01, 0x80, 0xff}) {
      std::string corrupt = bytes;
      corrupt[pos] = static_cast<char>(corrupt[pos] ^ flip);
      auto result = PortableLabelFromBinary(corrupt);
      if (result.ok()) {
        // A surviving parse must still be internally consistent enough to
        // summarize without touching out-of-range indices.
        for (int a : result->label_attributes) {
          EXPECT_GE(a, 0);
          EXPECT_LT(static_cast<size_t>(a), result->attribute_names.size());
        }
      }
    }
  }
}

TEST(BinaryCorruptionTest, WrongMagicAndVersionRejected) {
  std::string bytes = ToBinary(DemoLabel());
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_FALSE(PortableLabelFromBinary(bad_magic).ok());
  std::string bad_version = bytes;
  bad_version[4] = static_cast<char>(0x7f);  // version LSB
  EXPECT_FALSE(PortableLabelFromBinary(bad_version).ok());
  EXPECT_FALSE(PortableLabelFromBinary("").ok());
  EXPECT_FALSE(PortableLabelFromBinary("PCB").ok());
}

TEST(JsonCorruptionTest, MalformedDocumentsFailCleanly) {
  const std::string good = ToJson(DemoLabel());
  const std::string cases[] = {
      "",
      "{",
      "[]",
      "null",
      "{\"totally\": \"unrelated\"}",
      good.substr(0, good.size() / 2),
      good + "}",
  };
  for (const std::string& text : cases) {
    EXPECT_FALSE(PortableLabelFromJson(text).ok())
        << "parsed: " << text.substr(0, 40);
  }
  EXPECT_TRUE(PortableLabelFromJson(good).ok());
}

TEST(JsonCorruptionTest, OutOfRangeLabelAttributeRejected) {
  PortableLabel label = DemoLabel();
  label.label_attributes.push_back(99);
  const std::string json = ToJson(label);
  EXPECT_FALSE(PortableLabelFromJson(json).ok());
}

TEST(LabelFileTest, MissingAndUnwritablePaths) {
  EXPECT_FALSE(LoadLabel("/nonexistent/dir/label.json").ok());
  EXPECT_FALSE(SaveLabel(DemoLabel(), "/nonexistent/dir/label.json").ok());
}

TEST(LabelFileTest, GarbageFileFailsToLoad) {
  const std::string path = testing::TempDir() + "/pcbl_garbage.bin";
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is neither JSON nor PCBL binary \x01\x02\x03";
  }
  EXPECT_FALSE(LoadLabel(path).ok());
  std::remove(path.c_str());
}

TEST(CsvCorruptionTest, StructuralErrorsAreStatusErrors) {
  // Ragged row.
  EXPECT_FALSE(ReadCsvString("a,b\n1,2\n3\n").ok());
  // Unterminated quote.
  EXPECT_FALSE(ReadCsvString("a,b\n\"open,2\n").ok());
  // Empty input has no header.
  EXPECT_FALSE(ReadCsvString("").ok());
}

TEST(CsvCorruptionTest, HeaderOnlyIsAValidEmptyTable) {
  auto t = ReadCsvString("a,b,c\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 0);
  EXPECT_EQ(t->num_attributes(), 3);
}

TEST(CsvCorruptionTest, QuotedEdgeCasesParse) {
  auto t = ReadCsvString(
      "name,notes\n"
      "\"Smith, Jane\",\"said \"\"hi\"\"\"\n"
      "\"multi\nline\",plain\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2);
  EXPECT_EQ(t->ValueString(0, 0), "Smith, Jane");
  EXPECT_EQ(t->ValueString(0, 1), "said \"hi\"");
  EXPECT_EQ(t->ValueString(1, 0), "multi\nline");
}

TEST(CsvCorruptionTest, DuplicateHeaderRejected) {
  EXPECT_FALSE(ReadCsvString("a,a\n1,2\n").ok());
}

}  // namespace
}  // namespace pcbl
