// Focused tests for the missing-value label semantics (DESIGN.md §5a),
// the search time limit, and cross-implementation invariants.
#include <gtest/gtest.h>

#include "core/label.h"
#include "core/search.h"
#include "pattern/counter.h"
#include "util/rng.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

// A table with NULLs inside the label attributes:
//   x    y    z
//   a    p    k      (x3)
//   a    -    k      (x2)   <- NULL in y
//   b    p    -      (x1)   <- NULL in z
Table NullyTable() {
  auto b = TableBuilder::Create({"x", "y", "z"});
  PCBL_CHECK(b.ok());
  for (int i = 0; i < 3; ++i) PCBL_CHECK(b->AddRow({"a", "p", "k"}).ok());
  for (int i = 0; i < 2; ++i) PCBL_CHECK(b->AddRow({"a", "", "k"}).ok());
  PCBL_CHECK(b->AddRow({"b", "p", ""}).ok());
  return b->Build();
}

TEST(NullSemanticsTest, PatternCountsStoreArityTwoRestrictions) {
  Table t = NullyTable();
  // S = {x, y}: restrictions are (a,p) x3, (a,NULL) -> arity 1 dropped,
  // (b,p) x1.
  GroupCounts pc = ComputePatternCounts(t, AttrMask::FromIndices({0, 1}));
  EXPECT_EQ(pc.num_groups(), 2);
  int64_t total = pc.total_count();
  EXPECT_EQ(total, 4);  // 3 + 1; the two arity-1 rows carry no PC mass
}

TEST(NullSemanticsTest, RestrictionWithNullKeyStored) {
  Table t = NullyTable();
  // S = {y, z}: restrictions (p,k) x3, (NULL,k) arity 1 dropped,
  // (p,NULL) arity 1 dropped.
  GroupCounts pc = ComputePatternCounts(t, AttrMask::FromIndices({1, 2}));
  EXPECT_EQ(pc.num_groups(), 1);
  EXPECT_EQ(pc.count(0), 3);
  // S = {x, y, z}: (a,p,k) x3, (a,NULL,k) x2 arity 2 kept!, (b,p,NULL)
  // arity 2 kept.
  GroupCounts pc3 = ComputePatternCounts(t, AttrMask::All(3));
  EXPECT_EQ(pc3.num_groups(), 3);
}

TEST(NullSemanticsTest, ContainmentCountsFromLabel) {
  Table t = NullyTable();
  Label l = Label::Build(t, AttrMask::All(3));
  // c(p|S) for p = {x=a, z=k}: containment over PC entries (a,p,k) and
  // (a,NULL,k): 3 + 2 = 5 — which equals the true count.
  auto p = Pattern::Parse(t, {{"x", "a"}, {"z", "k"}});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(l.RestrictedCount(*p), 5);
  EXPECT_EQ(CountMatches(t, *p), 5);
  // For p = {y=p}: entries (a,p,k) + (b,p,NULL) = 4 = true count.
  auto py = Pattern::Parse(t, {{"y", "p"}});
  ASSERT_TRUE(py.ok());
  EXPECT_EQ(l.RestrictedCount(*py), 4);
}

TEST(NullSemanticsTest, SingletonLabelsStoreNothing) {
  Table t = NullyTable();
  Label l = Label::Build(t, AttrMask::Single(0));
  EXPECT_EQ(l.size(), 0);
  EXPECT_EQ(CountDistinctPatterns(t, AttrMask::Single(0)), 0);
}

TEST(NullFreeEquivalenceTest, PatternCountsEqualGroupCounts) {
  // On NULL-free data ComputePatternCounts == ComputeGroupCounts for
  // every mask of size >= 2 (the Def. 2.9 regime).
  Rng rng(31337);
  auto b = TableBuilder::Create({"a", "b", "c", "d"});
  ASSERT_TRUE(b.ok());
  for (int a = 0; a < 4; ++a) {
    for (int v = 0; v < 3; ++v) {
      b->InternValue(a, std::string(1, static_cast<char>('A' + v)));
    }
  }
  std::vector<ValueId> codes(4);
  for (int r = 0; r < 500; ++r) {
    for (auto& c : codes) c = rng.UniformInt(3);
    ASSERT_TRUE(b->AddRowCodes(codes).ok());
  }
  Table t = b->Build();
  for (uint64_t bits = 0; bits < 16; ++bits) {
    AttrMask mask(bits);
    if (mask.Count() < 2) continue;
    GroupCounts a = ComputePatternCounts(t, mask);
    GroupCounts b2 = ComputeGroupCounts(t, mask);
    ASSERT_EQ(a.num_groups(), b2.num_groups()) << mask.ToString();
    for (int64_t g = 0; g < a.num_groups(); ++g) {
      EXPECT_EQ(a.count(g), b2.count(g));
      for (int j = 0; j < a.key_width(); ++j) {
        EXPECT_EQ(a.key(g)[j], b2.key(g)[j]);
      }
    }
    EXPECT_EQ(CountDistinctPatterns(t, mask),
              CountDistinctCombos(t, mask));
  }
}

TEST(SearchTimeLimitTest, TimesOutAndStillReturns) {
  Table t = workload::MakeCreditCard(5000, 3).value();
  LabelSearch search(t);
  SearchOptions options;
  options.size_bound = 100;
  options.time_limit_seconds = 1e-9;  // immediately exceeded
  SearchResult naive = search.Naive(options);
  EXPECT_TRUE(naive.stats.timed_out);
  // A (possibly degenerate) result is still produced and certified.
  EXPECT_GE(naive.error.max_abs, 0.0);
  SearchResult top_down = search.TopDown(options);
  EXPECT_TRUE(top_down.stats.timed_out);
}

TEST(SearchTimeLimitTest, GenerousLimitDoesNotTrigger) {
  Table t = workload::MakeFig2Demo();
  LabelSearch search(t);
  SearchOptions options;
  options.size_bound = 5;
  options.time_limit_seconds = 3600;
  SearchResult r = search.TopDown(options);
  EXPECT_FALSE(r.stats.timed_out);
}

TEST(RandomPatternPropertyTest, EstimatesExactInsideSAndBounded) {
  Table t = workload::MakeCompas(3000, 23).value();
  AttrMask s = AttrMask::FromIndices({0, 1, 2});
  Label l = Label::Build(t, s);
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    // Random pattern over 1-4 random attributes.
    std::vector<PatternTerm> terms;
    AttrMask used;
    int len = 1 + static_cast<int>(rng.UniformInt(4));
    for (int i = 0; i < len; ++i) {
      int attr = static_cast<int>(
          rng.UniformInt(static_cast<uint32_t>(t.num_attributes())));
      if (used.Test(attr)) continue;
      used.Set(attr);
      terms.push_back(
          PatternTerm{attr, rng.UniformInt(t.DomainSize(attr))});
    }
    auto p = Pattern::Create(terms);
    ASSERT_TRUE(p.ok());
    double est = l.EstimateCount(*p);
    EXPECT_GE(est, 0.0);
    EXPECT_LE(est, static_cast<double>(t.num_rows()) + 1e-9);
    if (p->attributes().IsSubsetOf(s)) {
      EXPECT_DOUBLE_EQ(est, static_cast<double>(CountMatches(t, *p)))
          << p->ToString(t);
    }
  }
}

}  // namespace
}  // namespace pcbl
