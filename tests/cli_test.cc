// Integration tests for the pcbl CLI: each test drives RunCli directly
// (no process boundary) against temp files, covering the end-to-end flow
// synth -> profile -> build -> render/inspect/estimate/error.
#include "cli/cli.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/logging.h"
#include "util/str.h"

namespace pcbl {
namespace cli {
namespace {

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun RunTool(const std::vector<std::string>& argv) {
  std::ostringstream out;
  std::ostringstream err;
  CliRun run;
  run.code = RunCli(argv, out, err);
  run.out = out.str();
  run.err = err.str();
  return run;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/pcbl_cli_test_" + name;
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

class CliPipelineTest : public testing::Test {
 protected:
  // One shared fig2 CSV + label for the read-only commands.
  static void SetUpTestSuite() {
    csv_path_ = new std::string(TempPath("fig2.csv"));
    label_path_ = new std::string(TempPath("fig2.json"));
    CliRun synth = RunTool({"synth", "fig2", "--out", *csv_path_});
    PCBL_CHECK(synth.code == 0);
    CliRun build = RunTool({"build", *csv_path_, "--bound", "5", "--out",
                        *label_path_, "--name", "fig2-demo"});
    PCBL_CHECK(build.code == 0);
  }
  static void TearDownTestSuite() {
    std::remove(csv_path_->c_str());
    std::remove(label_path_->c_str());
    delete csv_path_;
    delete label_path_;
  }

  static std::string* csv_path_;
  static std::string* label_path_;
};

std::string* CliPipelineTest::csv_path_ = nullptr;
std::string* CliPipelineTest::label_path_ = nullptr;

TEST(CliTest, NoArgumentsPrintsUsageWithCode2) {
  CliRun run = RunTool({});
  EXPECT_EQ(run.code, 2);
  EXPECT_TRUE(Contains(run.out, "usage: pcbl"));
}

TEST(CliTest, HelpCommandSucceeds) {
  CliRun run = RunTool({"help"});
  EXPECT_EQ(run.code, 0);
  EXPECT_TRUE(Contains(run.out, "build"));
  EXPECT_TRUE(Contains(run.out, "render"));
}

TEST(CliTest, UnknownCommandFails) {
  CliRun run = RunTool({"frobnicate"});
  EXPECT_EQ(run.code, 2);
  EXPECT_TRUE(Contains(run.err, "unknown command"));
}

TEST(CliTest, EveryCommandHasHelp) {
  for (const char* cmd : {"profile", "build", "render", "estimate", "error",
                          "synth", "inspect", "audit", "bucketize"}) {
    CliRun run = RunTool({cmd, "--help"});
    EXPECT_EQ(run.code, 0) << cmd;
    EXPECT_TRUE(Contains(run.out, "usage: pcbl ")) << cmd;
  }
}

TEST(CliTest, UnknownFlagRejected) {
  CliRun run = RunTool({"profile", "--bogus", "x.csv"});
  EXPECT_EQ(run.code, 2);
  EXPECT_TRUE(Contains(run.err, "unknown flag --bogus"));
}

TEST(CliTest, MissingFileReportsIoError) {
  CliRun run = RunTool({"profile", TempPath("does_not_exist.csv")});
  EXPECT_EQ(run.code, 1);
  EXPECT_FALSE(run.err.empty());
}

TEST(CliTest, SynthValidation) {
  EXPECT_EQ(RunTool({"synth", "nosuch", "--out", TempPath("x.csv")}).code, 2);
  EXPECT_EQ(RunTool({"synth", "fig2"}).code, 2);  // missing --out
  EXPECT_EQ(
      RunTool({"synth", "compas", "--rows", "-5", "--out", TempPath("x.csv")})
          .code,
      2);
}

TEST_F(CliPipelineTest, ProfileShowsShape) {
  CliRun run = RunTool({"profile", *csv_path_});
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_TRUE(Contains(run.out, "18 rows, 4 attributes"));
  EXPECT_TRUE(Contains(run.out, "marital status"));
}

TEST_F(CliPipelineTest, BuildReportsPaperExample) {
  // Example 3.7: bound 5 on the Fig. 2 fragment selects
  // {age group, marital status} with |PC| = 3.
  CliRun run = RunTool({"build", *csv_path_, "--bound", "5"});
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_TRUE(Contains(run.out, "age group, marital status"));
  EXPECT_TRUE(Contains(run.out, "label size |PC|:   3"));
}

TEST_F(CliPipelineTest, NaiveAlgorithmAgreesOnTheExample) {
  CliRun run = RunTool({"build", *csv_path_, "--bound", "5", "--algo", "naive"});
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_TRUE(Contains(run.out, "age group, marital status"));
}

TEST_F(CliPipelineTest, BuildValidatesFlags) {
  EXPECT_EQ(RunTool({"build", *csv_path_, "--algo", "quantum"}).code, 2);
  EXPECT_EQ(RunTool({"build", *csv_path_, "--metric", "nope"}).code, 2);
  EXPECT_EQ(RunTool({"build", *csv_path_, "--bound", "ten"}).code, 2);
  EXPECT_EQ(RunTool({"build", *csv_path_, "--focus", "nosuch"}).code, 1);
  EXPECT_EQ(RunTool({"build", *csv_path_, "--focus", ","}).code, 2);
}

TEST_F(CliPipelineTest, BuildWithFocusRanksAgainstSensitivePatterns) {
  // Definition 2.15's custom P: rank against gender x race patterns only.
  CliRun run = RunTool({"build", *csv_path_, "--bound", "8", "--focus",
                        "gender, race"});
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_TRUE(Contains(run.out, "error over patterns over {gender, race}"));
  // The fragment has 6 distinct gender x race combinations.
  EXPECT_TRUE(Contains(run.out, "of 6 evaluated")) << run.out;
}

TEST_F(CliPipelineTest, RenderShowsLabelSections) {
  CliRun run = RunTool({"render", *label_path_});
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_TRUE(Contains(run.out, "fig2-demo"));
  EXPECT_TRUE(Contains(run.out, "gender"));
}

TEST_F(CliPipelineTest, EstimateAnswersExample212) {
  // Example 2.12: Est({gender=Female, age group=20-39,
  // marital status=married}) = 3 under the {age group, marital status}
  // label.
  CliRun run = RunTool({"estimate", *label_path_, "--pattern",
                    "gender=Female, age group=20-39, marital status=married"});
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_TRUE(Contains(run.out, "estimate:  3.00")) << run.out;
}

TEST_F(CliPipelineTest, EstimateRequiresPattern) {
  EXPECT_EQ(RunTool({"estimate", *label_path_}).code, 2);
  EXPECT_EQ(RunTool({"estimate", *label_path_, "--pattern", "garbage"}).code, 2);
}

TEST_F(CliPipelineTest, EstimateUnknownAttributeFails) {
  CliRun run = RunTool({"estimate", *label_path_, "--pattern", "nosuch=attr"});
  EXPECT_EQ(run.code, 1);
}

TEST_F(CliPipelineTest, EstimateWithDataReportsTrueCountAndError) {
  // The counting-service-backed spot check: the label over {age group,
  // marital status} answers Example 2.12's pattern with count 3, and the
  // true count from the data agrees (the fragment label is exact there).
  CliRun run = RunTool({"estimate", *label_path_, "--pattern",
                    "gender=Female, age group=20-39, marital status=married",
                    "--data", *csv_path_, "--threads", "2",
                    "--cache-budget", "4096"});
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_TRUE(Contains(run.out, "estimate:  3.00")) << run.out;
  EXPECT_TRUE(Contains(run.out, "actual:    3")) << run.out;
  EXPECT_TRUE(Contains(run.out, "abs error: 0.00")) << run.out;
  // --no-engine takes the one-shot path and must agree.
  CliRun serial = RunTool({"estimate", *label_path_, "--pattern",
                       "gender=Female, age group=20-39,"
                       " marital status=married",
                       "--data", *csv_path_, "--no-engine"});
  ASSERT_EQ(serial.code, 0) << serial.err;
  EXPECT_TRUE(Contains(serial.out, "actual:    3")) << serial.out;
}

TEST_F(CliPipelineTest, EstimateEngineFlagsRequireData) {
  EXPECT_EQ(RunTool({"estimate", *label_path_, "--pattern", "gender=Female",
                 "--threads", "2"})
                .code,
            2);
  EXPECT_EQ(RunTool({"estimate", *label_path_, "--pattern", "gender=Female",
                 "--no-engine"})
                .code,
            2);
  EXPECT_EQ(RunTool({"estimate", *label_path_, "--pattern", "gender=Female",
                 "--cache-budget", "0"})
                .code,
            2);
}

TEST_F(CliPipelineTest, ProfilePairsListsPairwiseLabelSizes) {
  CliRun run = RunTool({"profile", *csv_path_, "--pairs", "3", "--threads",
                    "2", "--cache-budget", "1024"});
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_TRUE(Contains(run.out, "pairwise label sizes")) << run.out;
  // Fig. 2: the {age group, marital status} pair has the smallest |P_S|
  // (3), which is why the paper's example label uses it.
  EXPECT_TRUE(Contains(run.out, "age group x marital status")) << run.out;
  // Engine off must agree on the listing.
  CliRun serial =
      RunTool({"profile", *csv_path_, "--pairs", "3", "--no-engine"});
  ASSERT_EQ(serial.code, 0) << serial.err;
  EXPECT_TRUE(Contains(serial.out, "age group x marital status"))
      << serial.out;
}

TEST_F(CliPipelineTest, ProfileEngineFlagsRequirePairs) {
  EXPECT_EQ(RunTool({"profile", *csv_path_, "--threads", "2"}).code, 2);
  EXPECT_EQ(RunTool({"profile", *csv_path_, "--no-engine"}).code, 2);
  EXPECT_EQ(RunTool({"profile", *csv_path_, "--cache-budget", "9"}).code, 2);
  EXPECT_EQ(
      RunTool({"profile", *csv_path_, "--service-budget", "1000"}).code, 2);
}

TEST_F(CliPipelineTest, EstimateAndProfileReportRegistryStats) {
  // Both data-backed commands acquire their service from the process-wide
  // registry and surface its counters (the commands run in-process here,
  // so absolute hit/miss counts accumulate across tests — assert shape,
  // not totals).
  CliRun est = RunTool({"estimate", *label_path_, "--pattern",
                        "gender=Female, age group=20-39,"
                        " marital status=married",
                        "--data", *csv_path_});
  ASSERT_EQ(est.code, 0) << est.err;
  EXPECT_TRUE(Contains(est.out, "registry:")) << est.out;
  EXPECT_TRUE(Contains(est.out, "bytes resident")) << est.out;

  CliRun prof = RunTool({"profile", *csv_path_, "--pairs", "2",
                         "--service-budget", "0"});
  ASSERT_EQ(prof.code, 0) << prof.err;
  EXPECT_TRUE(Contains(prof.out, "registry:")) << prof.out;
  // A second profile over the same data rides the shared warm service;
  // the listing itself must be unchanged.
  CliRun again = RunTool({"profile", *csv_path_, "--pairs", "2"});
  ASSERT_EQ(again.code, 0) << again.err;
  EXPECT_TRUE(Contains(again.out, "age group x marital status"))
      << again.out;
}

TEST_F(CliPipelineTest, ServiceBudgetFlagValidation) {
  // Requires the data-backed mode of each command.
  EXPECT_EQ(RunTool({"estimate", *label_path_, "--pattern", "gender=Female",
                     "--service-budget", "1000"})
                .code,
            2);
  EXPECT_EQ(RunTool({"estimate", *label_path_, "--pattern",
                     "gender=Female", "--data", *csv_path_,
                     "--service-budget", "-3"})
                .code,
            2);
}

TEST_F(CliPipelineTest, ErrorEvaluatesLabelAgainstItsData) {
  CliRun run = RunTool({"error", *label_path_, *csv_path_});
  ASSERT_EQ(run.code, 0) << run.err;
  // The bound-5 label over the fragment is exact (Example 3.7 data).
  EXPECT_TRUE(Contains(run.out, "max abs error:   0"));
  EXPECT_TRUE(Contains(run.out, "18 of 18 evaluated"));
}

TEST_F(CliPipelineTest, ErrorRenderIncludesErrorBlock) {
  CliRun run = RunTool({"error", *label_path_, *csv_path_, "--render"});
  ASSERT_EQ(run.code, 0) << run.err;
  // The rendered label carries the freshly computed error summary (the
  // bottom block of the paper's Fig. 1).
  EXPECT_TRUE(Contains(run.out, "fig2-demo"));
  EXPECT_TRUE(Contains(run.out, "Maximal"));
}

TEST(CliTest, SynthIsDeterministicForSeed) {
  const std::string a = TempPath("seed_a.csv");
  const std::string b = TempPath("seed_b.csv");
  ASSERT_EQ(RunTool({"synth", "bluenile", "--rows", "300", "--seed", "9",
                     "--out", a})
                .code,
            0);
  ASSERT_EQ(RunTool({"synth", "bluenile", "--rows", "300", "--seed", "9",
                     "--out", b})
                .code,
            0);
  std::ifstream fa(a), fb(b);
  std::stringstream sa, sb;
  sa << fa.rdbuf();
  sb << fb.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
  EXPECT_FALSE(sa.str().empty());
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST_F(CliPipelineTest, ErrorDetectsSchemaMismatch) {
  const std::string other = TempPath("other.csv");
  std::ofstream f(other);
  f << "colA,colB\nx,y\n";
  f.close();
  CliRun run = RunTool({"error", *label_path_, other});
  EXPECT_EQ(run.code, 1);
  EXPECT_TRUE(Contains(run.err, "not in the table schema"));
  std::remove(other.c_str());
}

TEST_F(CliPipelineTest, DiffOfLabelWithItselfIsQuiet) {
  CliRun run = RunTool({"diff", *label_path_, *label_path_});
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_TRUE(Contains(run.out, "rows: 18 -> 18 (+0)"));
  EXPECT_TRUE(Contains(run.out, "pattern count changes"));
  EXPECT_TRUE(Contains(run.out, ": 0"));
}

TEST_F(CliPipelineTest, DiffValidation) {
  EXPECT_EQ(RunTool({"diff", *label_path_}).code, 2);
  EXPECT_EQ(
      RunTool({"diff", *label_path_, TempPath("missing_label.json")}).code,
      1);
}

TEST_F(CliPipelineTest, InspectSummarizesLabel) {
  CliRun run = RunTool({"inspect", *label_path_});
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_TRUE(Contains(run.out, "fig2-demo"));
  EXPECT_TRUE(Contains(run.out, "|PC|:          3"));
  EXPECT_TRUE(Contains(run.out, "age group, marital status"));
}

TEST_F(CliPipelineTest, BinaryLabelRoundTripsThroughRender) {
  const std::string bin = TempPath("fig2.bin");
  CliRun build = RunTool({"build", *csv_path_, "--bound", "5", "--out", bin,
                      "--binary"});
  ASSERT_EQ(build.code, 0) << build.err;
  EXPECT_TRUE(Contains(build.out, "(binary)"));
  CliRun render = RunTool({"render", bin});
  EXPECT_EQ(render.code, 0) << render.err;
  EXPECT_TRUE(Contains(render.out, "gender"));
  std::remove(bin.c_str());
}

TEST_F(CliPipelineTest, AuditFlagsEverythingOnTinyData) {
  // 18 rows: every intersection is far below the default min-count.
  CliRun run = RunTool({"audit", *label_path_, "--min-count", "100"});
  ASSERT_EQ(run.code, 0) << run.err;
  EXPECT_TRUE(Contains(run.out, "[underrepresented]"));
  EXPECT_TRUE(Contains(run.out, "gender="));
}

TEST_F(CliPipelineTest, AuditValidatesFlags) {
  EXPECT_EQ(RunTool({"audit", *label_path_, "--attrs", "nosuch"}).code, 1);
  EXPECT_EQ(RunTool({"audit", *label_path_, "--min-count", "abc"}).code, 2);
}

TEST(CliTest, BucketizePipelineFeedsBuild) {
  const std::string csv = TempPath("numeric.csv");
  {
    std::ofstream f(csv);
    f << "grade,score\n";
    for (int i = 0; i < 40; ++i) {
      f << (i % 2 == 0 ? "pass" : "fail") << "," << (50 + i) << "\n";
    }
  }
  const std::string binned = TempPath("binned.csv");
  CliRun bucketize = RunTool({"bucketize", csv, "--bins", "4", "--out",
                              binned});
  ASSERT_EQ(bucketize.code, 0) << bucketize.err;
  EXPECT_TRUE(Contains(bucketize.out, "[score]"));
  // The binned output is fully categorical and feeds the search directly.
  CliRun build = RunTool({"build", binned, "--bound", "10"});
  EXPECT_EQ(build.code, 0) << build.err;
  std::remove(csv.c_str());
  std::remove(binned.c_str());
}

TEST(CliTest, BucketizeValidation) {
  const std::string csv = TempPath("nonnumeric.csv");
  {
    std::ofstream f(csv);
    f << "a,b\nx,y\n";
  }
  EXPECT_EQ(RunTool({"bucketize", csv}).code, 2);  // missing --out
  CliRun run = RunTool({"bucketize", csv, "--out", TempPath("o.csv")});
  EXPECT_EQ(run.code, 2);  // no numeric attributes
  EXPECT_EQ(RunTool({"bucketize", csv, "--out", TempPath("o.csv"),
                     "--strategy", "sideways"})
                .code,
            2);
  std::remove(csv.c_str());
}

TEST_F(CliPipelineTest, SynthCompasWritesRequestedRows) {
  const std::string path = TempPath("compas_small.csv");
  CliRun synth =
      RunTool({"synth", "compas", "--rows", "500", "--seed", "7", "--out", path});
  ASSERT_EQ(synth.code, 0) << synth.err;
  EXPECT_TRUE(Contains(synth.out, "500 rows"));
  CliRun profile = RunTool({"profile", path});
  EXPECT_EQ(profile.code, 0);
  EXPECT_TRUE(Contains(profile.out, "500 rows, 17 attributes"));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cli
}  // namespace pcbl
