// Tests for pattern-based row filtering.
#include "relation/filter.h"

#include <gtest/gtest.h>

#include "relation/stats.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

TEST(FilterTest, KeepsExactlyMatchingRows) {
  Table t = workload::MakeFig2Demo();
  auto p = Pattern::Parse(
      t, {{"age group", "under 20"}, {"marital status", "single"}});
  ASSERT_TRUE(p.ok());
  auto filtered = FilterRows(t, *p);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->num_rows(), 6);  // Example 2.4's count
  for (int64_t r = 0; r < filtered->num_rows(); ++r) {
    EXPECT_EQ(filtered->ValueString(r, 1), "under 20");
    EXPECT_EQ(filtered->ValueString(r, 3), "single");
  }
}

TEST(FilterTest, ComplementPartitionsTable) {
  Table t = workload::MakeFig2Demo();
  auto p = Pattern::Parse(t, {{"gender", "Female"}});
  ASSERT_TRUE(p.ok());
  auto in = FilterRows(t, *p);
  auto out = FilterRowsOut(t, *p);
  ASSERT_TRUE(in.ok() && out.ok());
  EXPECT_EQ(in->num_rows() + out->num_rows(), t.num_rows());
  EXPECT_EQ(in->num_rows(), 9);
}

TEST(FilterTest, DictionariesPreserved) {
  Table t = workload::MakeFig2Demo();
  auto p = Pattern::Parse(t, {{"race", "Hispanic"}});
  ASSERT_TRUE(p.ok());
  auto filtered = FilterRows(t, *p);
  ASSERT_TRUE(filtered.ok());
  // Domain sizes unchanged even though some values no longer occur.
  for (int a = 0; a < t.num_attributes(); ++a) {
    EXPECT_EQ(filtered->DomainSize(a), t.DomainSize(a));
  }
  // Codes comparable: the same pattern still parses and matches all rows.
  auto p2 = Pattern::Parse(*filtered, {{"race", "Hispanic"}});
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(CountMatches(*filtered, *p2), filtered->num_rows());
  // Other-race counts drop to zero, visible in VC.
  ValueCounts vc = ValueCounts::Compute(*filtered);
  int race = filtered->schema().FindAttribute("race").value();
  EXPECT_EQ(vc.Count(race, filtered->dictionary(race).Lookup("Caucasian")),
            0);
}

TEST(FilterTest, EmptyPatternKeepsEverything) {
  Table t = workload::MakeFig2Demo();
  auto all = FilterRows(t, Pattern());
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->num_rows(), t.num_rows());
  auto none = FilterRowsOut(t, Pattern());
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->num_rows(), 0);
}

TEST(FilterTest, NullsNeverMatch) {
  auto b = TableBuilder::Create({"x"});
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(b->AddRow({"v"}).ok());
  ASSERT_TRUE(b->AddRow({""}).ok());
  Table t = b->Build();
  auto p = Pattern::Parse(t, {{"x", "v"}});
  ASSERT_TRUE(p.ok());
  auto in = FilterRows(t, *p);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(in->num_rows(), 1);
  // The NULL row lands in the complement.
  auto out = FilterRowsOut(t, *p);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 1);
  EXPECT_TRUE(IsNull(out->value(0, 0)));
}

TEST(FilterTest, RejectsOutOfSchemaPatterns) {
  Table t = workload::MakeFig2Demo();
  auto bad_attr = Pattern::Create({PatternTerm{9, 0}});
  ASSERT_TRUE(bad_attr.ok());
  EXPECT_FALSE(FilterRows(t, *bad_attr).ok());
  auto bad_value = Pattern::Create({PatternTerm{0, 99}});
  ASSERT_TRUE(bad_value.ok());
  EXPECT_FALSE(FilterRows(t, *bad_value).ok());
}

}  // namespace
}  // namespace pcbl
