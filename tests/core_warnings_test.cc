// Tests for the fitness-for-use audit (core/warnings): the Sec. I
// workflow of turning a label into representation/skew/correlation
// warnings.
#include "core/warnings.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/label.h"
#include "core/portable_label.h"
#include "core/search.h"
#include "util/rng.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

PortableLabel LabelFor(const Table& t, AttrMask s) {
  return MakePortable(Label::Build(t, s), t, "test");
}

// gender(2) x race(3): "X"/"r2" is rare (2 rows), "Y" dominates, and
// gender is independent of race except for the rare cell.
Table AuditTable() {
  auto b = TableBuilder::Create({"gender", "race"});
  PCBL_CHECK(b.ok());
  for (int i = 0; i < 70; ++i) PCBL_CHECK(b->AddRow({"Y", "r0"}).ok());
  for (int i = 0; i < 20; ++i) PCBL_CHECK(b->AddRow({"Y", "r1"}).ok());
  for (int i = 0; i < 8; ++i) PCBL_CHECK(b->AddRow({"X", "r1"}).ok());
  for (int i = 0; i < 2; ++i) PCBL_CHECK(b->AddRow({"X", "r2"}).ok());
  return b->Build();
}

TEST(AuditLabelTest, FindsUnderrepresentedIntersections) {
  Table t = AuditTable();
  PortableLabel label = LabelFor(t, AttrMask::FromIndices({0, 1}));
  AuditOptions options;
  options.min_group_count = 5;
  options.correlation_factor = 1e9;  // disable correlation warnings
  auto warnings = AuditLabel(label, {}, options);
  ASSERT_TRUE(warnings.ok()) << warnings.status();
  // X/r2 (2 rows) and the never-seen Y/r2 and X/r0 cells fall below 5.
  bool found_rare = false;
  for (const FitnessWarning& w : *warnings) {
    if (w.kind != WarningKind::kUnderrepresented) continue;
    EXPECT_LT(w.estimated, 5.0);
    if (w.GroupString() == "gender=X, race=r2") found_rare = true;
  }
  EXPECT_TRUE(found_rare);
}

TEST(AuditLabelTest, UnderrepresentedSortedByEstimateAscending) {
  Table t = AuditTable();
  PortableLabel label = LabelFor(t, AttrMask::FromIndices({0, 1}));
  AuditOptions options;
  options.min_group_count = 25;
  options.correlation_factor = 1e9;
  options.max_group_share = 1.1;  // disable skew
  auto warnings = AuditLabel(label, {}, options);
  ASSERT_TRUE(warnings.ok());
  double prev = -1.0;
  for (const FitnessWarning& w : *warnings) {
    ASSERT_EQ(w.kind, WarningKind::kUnderrepresented);
    EXPECT_GE(w.estimated, prev);
    prev = w.estimated;
  }
}

TEST(AuditLabelTest, FindsSkewedGroups) {
  Table t = AuditTable();
  PortableLabel label = LabelFor(t, AttrMask::FromIndices({0, 1}));
  AuditOptions options;
  options.min_group_count = 0;
  options.max_group_share = 0.6;  // Y holds 90%, r0 70%
  options.correlation_factor = 1e9;
  auto warnings = AuditLabel(label, {}, options);
  ASSERT_TRUE(warnings.ok());
  std::vector<std::string> skewed;
  for (const FitnessWarning& w : *warnings) {
    if (w.kind == WarningKind::kSkewed) skewed.push_back(w.GroupString());
  }
  EXPECT_NE(std::find(skewed.begin(), skewed.end(), "gender=Y"),
            skewed.end());
  EXPECT_NE(std::find(skewed.begin(), skewed.end(), "race=r0"),
            skewed.end());
}

TEST(AuditLabelTest, CorrelationRequiresJointEvidence) {
  // a0 == a1 always: a label over {a0,a1} has the joint counts and must
  // flag the dependence; a label over other attributes estimates pairs by
  // independence and must stay silent.
  auto b = TableBuilder::Create({"a0", "a1", "a2"});
  PCBL_CHECK(b.ok());
  Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    const std::string v = "v" + std::to_string(rng.UniformInt(4));
    const std::string w = "w" + std::to_string(rng.UniformInt(4));
    PCBL_CHECK(b->AddRow({v, v, w}).ok());
  }
  Table t = b->Build();

  AuditOptions options;
  options.min_group_count = 0;
  options.max_group_share = 1.1;
  options.correlation_factor = 2.0;

  PortableLabel informed = LabelFor(t, AttrMask::FromIndices({0, 1}));
  auto warnings = AuditLabel(informed, {"a0", "a1"}, options);
  ASSERT_TRUE(warnings.ok());
  int correlated = 0;
  for (const FitnessWarning& w : *warnings) {
    if (w.kind == WarningKind::kCorrelated) ++correlated;
  }
  // Every equal-valued pair deviates ~4x from independence.
  EXPECT_GE(correlated, 4);

  PortableLabel uninformed = LabelFor(t, AttrMask::FromIndices({1, 2}));
  auto silent = AuditLabel(uninformed, {"a0", "a1"}, options);
  ASSERT_TRUE(silent.ok());
  for (const FitnessWarning& w : *silent) {
    EXPECT_NE(w.kind, WarningKind::kCorrelated) << w.GroupString();
  }
}

TEST(AuditLabelTest, RespectsAttributeSubsetAndArity) {
  Table t = workload::MakeFig2Demo();
  PortableLabel label = LabelFor(t, AttrMask::FromIndices({1, 3}));
  AuditOptions options;
  options.min_group_count = 100;  // everything is underrepresented (18 rows)
  options.max_arity = 1;
  auto warnings = AuditLabel(label, {"gender", "race"}, options);
  ASSERT_TRUE(warnings.ok());
  for (const FitnessWarning& w : *warnings) {
    ASSERT_EQ(w.group.size(), 1u);
    EXPECT_TRUE(w.group[0].first == "gender" || w.group[0].first == "race");
  }
  // 2 gender values + 3 race values.
  EXPECT_EQ(warnings->size(), 5u);
}

TEST(AuditLabelTest, ValidatesInput) {
  Table t = workload::MakeFig2Demo();
  PortableLabel label = LabelFor(t, AttrMask::FromIndices({1, 3}));
  EXPECT_FALSE(AuditLabel(label, {"nosuch"}).ok());
  EXPECT_FALSE(AuditLabel(label, {"gender", "gender"}).ok());
  AuditOptions options;
  options.max_arity = 0;
  EXPECT_FALSE(AuditLabel(label, {}, options).ok());
}

TEST(AuditLabelTest, CrossProductCapSkipsWideCombinations) {
  Table t = workload::MakeFig2Demo();
  PortableLabel label = LabelFor(t, AttrMask::FromIndices({1, 3}));
  AuditOptions options;
  options.min_group_count = 100;
  options.max_groups_per_combination = 2;  // only 2-value domains fit
  options.max_arity = 2;
  auto warnings = AuditLabel(label, {}, options);
  ASSERT_TRUE(warnings.ok());
  for (const FitnessWarning& w : *warnings) {
    // gender and age group have 2 values; race/marital (3) and every
    // 2-attribute cross-product (>= 4) exceed the cap.
    ASSERT_EQ(w.group.size(), 1u);
    EXPECT_TRUE(w.group[0].first == "gender" ||
                w.group[0].first == "age group")
        << w.group[0].first;
  }
}

TEST(AuditLabelTest, WarningsAreMostlyTrueOnCompas) {
  // Quantitative version of the paper's motivating scenario: audit
  // demographic intersections from the label alone, then check each
  // warning against the (normally unavailable) ground truth. With a
  // searched label the estimates are good enough that most warnings are
  // real, and no sufficiently-extreme group is missed.
  Table t = workload::MakeCompas(30000, 2021).value();
  LabelSearch search(t);
  SearchOptions search_options;
  search_options.size_bound = 100;
  SearchResult built = search.TopDown(search_options);
  PortableLabel label = MakePortable(built.label, t, "compas");

  AuditOptions options;
  options.min_group_count = 150;
  options.correlation_factor = 1e9;
  options.max_group_share = 1.1;
  auto warnings =
      AuditLabel(label, {"Gender", "Race", "MaritalStatus"}, options);
  ASSERT_TRUE(warnings.ok());
  ASSERT_FALSE(warnings->empty());

  int64_t confirmed = 0;
  for (const FitnessWarning& w : *warnings) {
    std::vector<std::pair<std::string, std::string>> named(w.group.begin(),
                                                           w.group.end());
    auto p = Pattern::Parse(t, named);
    ASSERT_TRUE(p.ok()) << w.GroupString();
    // Allow slack 2x around the threshold for estimate noise.
    if (CountMatches(t, *p) < 2 * options.min_group_count) ++confirmed;
  }
  EXPECT_GE(static_cast<double>(confirmed) /
                static_cast<double>(warnings->size()),
            0.9)
      << confirmed << "/" << warnings->size();

  // Recall at the extreme end: every group with true count < half the
  // threshold must have been flagged.
  const std::vector<std::string> genders = {"Male", "Female"};
  const std::vector<std::string> races = {"African-American", "Caucasian",
                                          "Hispanic", "Other"};
  for (const std::string& g : genders) {
    for (const std::string& r : races) {
      auto p = Pattern::Parse(t, {{"Gender", g}, {"Race", r}});
      ASSERT_TRUE(p.ok());
      if (CountMatches(t, *p) >= options.min_group_count / 2) continue;
      bool flagged = false;
      for (const FitnessWarning& w : *warnings) {
        if (w.GroupString() == "Gender=" + g + ", Race=" + r) {
          flagged = true;
          break;
        }
      }
      EXPECT_TRUE(flagged) << g << "/" << r;
    }
  }
}

TEST(AuditLabelTest, CompasScenarioFlagsSparseIntersections) {
  // The paper's motivating example: sparse demographic intersections in a
  // COMPAS-like dataset surface from the label alone.
  Table t = workload::MakeCompas(20000, 2021).value();
  Label native = Label::Build(t, AttrMask::FromIndices({0, 2}));
  PortableLabel label = MakePortable(native, t, "compas");
  AuditOptions options;
  options.min_group_count = 200;
  options.max_arity = 2;
  auto warnings = AuditLabel(label, {"Gender", "Race", "MaritalStatus"},
                             options);
  ASSERT_TRUE(warnings.ok()) << warnings.status();
  // Fig. 1's marginals guarantee sparse intersections (e.g. widowed
  // minorities) at this threshold.
  EXPECT_FALSE(warnings->empty());
  for (const FitnessWarning& w : *warnings) {
    if (w.kind == WarningKind::kUnderrepresented) {
      EXPECT_LT(w.estimated, 200.0);
    }
  }
}

}  // namespace
}  // namespace pcbl
