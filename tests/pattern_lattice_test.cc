// Tests for the label lattice and the gen(S) operator (Defs. 3.4-3.5,
// Prop. 3.8).
#include "pattern/lattice.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace pcbl {
namespace {

TEST(GenTest, EmptySetYieldsSingletons) {
  auto gen = Gen(AttrMask(), 4);
  ASSERT_EQ(gen.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(gen[static_cast<size_t>(i)], AttrMask::Single(i));
  }
}

TEST(GenTest, ExtendsOnlyBeyondMaxIndex) {
  // Example 3.6: for S = {gender(0), race(2)} over 4 attributes,
  // gen(S) = {{gender, race, marital(3)}} only — {0,1,2} is a child in
  // the lattice but is NOT in gen(S).
  AttrMask s = AttrMask::FromIndices({0, 2});
  auto gen = Gen(s, 4);
  ASSERT_EQ(gen.size(), 1u);
  EXPECT_EQ(gen[0], AttrMask::FromIndices({0, 2, 3}));
  auto children = Children(s, 4);
  EXPECT_EQ(children.size(), 2u);  // {0,1,2} and {0,2,3}
}

TEST(GenTest, MaxElementHasNoExtensions) {
  EXPECT_TRUE(Gen(AttrMask::FromIndices({1, 3}), 4).empty());
  EXPECT_TRUE(Gen(AttrMask::All(4), 4).empty());
}

TEST(GenTest, GenIsSubsetOfChildren) {
  for (uint64_t bits = 0; bits < (1u << 5); ++bits) {
    AttrMask s(bits);
    auto gen = Gen(s, 5);
    auto children = Children(s, 5);
    std::set<AttrMask> child_set(children.begin(), children.end());
    for (AttrMask g : gen) {
      EXPECT_TRUE(child_set.count(g)) << s.ToString() << " -> "
                                      << g.ToString();
    }
  }
}

// Proposition 3.8: a top-down traversal via gen() generates every node of
// the lattice exactly once.
class GenTraversalTest : public ::testing::TestWithParam<int> {};

TEST_P(GenTraversalTest, GeneratesEveryNodeExactlyOnce) {
  int n = GetParam();
  std::multiset<uint64_t> generated;
  std::vector<AttrMask> queue = Gen(AttrMask(), n);
  for (AttrMask s : queue) generated.insert(s.bits());
  size_t head = 0;
  while (head < queue.size()) {
    AttrMask curr = queue[head++];
    for (AttrMask c : Gen(curr, n)) {
      generated.insert(c.bits());
      queue.push_back(c);
    }
  }
  // Every non-empty subset appears exactly once.
  EXPECT_EQ(generated.size(), (1ULL << n) - 1);
  std::set<uint64_t> unique(generated.begin(), generated.end());
  EXPECT_EQ(unique.size(), generated.size()) << "duplicate generation";
}

INSTANTIATE_TEST_SUITE_P(Sweep, GenTraversalTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 10));

TEST(ParentsTest, RemovesOneAttribute) {
  AttrMask s = AttrMask::FromIndices({1, 4, 6});
  auto parents = Parents(s);
  ASSERT_EQ(parents.size(), 3u);
  std::set<AttrMask> expect = {AttrMask::FromIndices({4, 6}),
                               AttrMask::FromIndices({1, 6}),
                               AttrMask::FromIndices({1, 4})};
  EXPECT_EQ(std::set<AttrMask>(parents.begin(), parents.end()), expect);
  EXPECT_TRUE(Parents(AttrMask()).empty());
}

TEST(ChildrenTest, AddsOneAttribute) {
  AttrMask s = AttrMask::Single(1);
  auto children = Children(s, 3);
  std::set<AttrMask> expect = {AttrMask::FromIndices({0, 1}),
                               AttrMask::FromIndices({1, 2})};
  EXPECT_EQ(std::set<AttrMask>(children.begin(), children.end()), expect);
}

TEST(ForEachSubsetOfSizeTest, CountsMatchBinomial) {
  for (int n : {0, 1, 4, 8}) {
    for (int k = 0; k <= n + 1; ++k) {
      int64_t count = 0;
      ForEachSubsetOfSize(n, k, [&](AttrMask m) {
        EXPECT_EQ(m.Count(), k);
        ++count;
      });
      EXPECT_EQ(count, Binomial(n, k)) << "n=" << n << " k=" << k;
    }
  }
}

TEST(ForEachSubsetOfSizeTest, EnumeratesDistinctMasks) {
  std::set<uint64_t> seen;
  ForEachSubsetOfSize(10, 4, [&](AttrMask m) { seen.insert(m.bits()); });
  EXPECT_EQ(static_cast<int64_t>(seen.size()), Binomial(10, 4));
}

TEST(ForEachSubsetOfTest, EnumeratesAllNonEmptySubmasks) {
  AttrMask universe = AttrMask::FromIndices({0, 2, 5});
  std::set<uint64_t> seen;
  ForEachSubsetOf(universe, [&](AttrMask m) {
    EXPECT_TRUE(m.IsSubsetOf(universe));
    EXPECT_FALSE(m.empty());
    seen.insert(m.bits());
  });
  EXPECT_EQ(seen.size(), 7u);  // 2^3 - 1
}

TEST(BinomialTest, KnownValues) {
  EXPECT_EQ(Binomial(0, 0), 1);
  EXPECT_EQ(Binomial(5, 0), 1);
  EXPECT_EQ(Binomial(5, 5), 1);
  EXPECT_EQ(Binomial(5, 2), 10);
  EXPECT_EQ(Binomial(24, 7), 346104);
  EXPECT_EQ(Binomial(4, 5), 0);
  EXPECT_EQ(Binomial(5, -1), 0);
}

TEST(BinomialTest, NaiveLevelSumMatchesPaper) {
  // Sec. IV-D reports the Credit Card naive search examined 536,130
  // subsets at bound 50 — exactly levels 2..7 of a 24-attribute lattice.
  int64_t total = 0;
  for (int k = 2; k <= 7; ++k) total += Binomial(24, k);
  EXPECT_EQ(total, 536130);
}

}  // namespace
}  // namespace pcbl
