// Tests for Status / Result<T> error handling.
#include "util/status.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace pcbl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllConstructorsSetDistinctCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Status CheckEven(int x) {
  PCBL_ASSIGN_OR_RETURN(int h, Half(x));
  (void)h;
  return Status::Ok();
}

Status Chain(int x) {
  PCBL_RETURN_IF_ERROR(CheckEven(x));
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  EXPECT_TRUE(Chain(4).ok());
  Status s = Chain(3);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ResultFromOkStatusBecomesInternalError) {
  // Constructing Result from an OK status is a programming error; it must
  // not silently look like success.
  Result<int> r{Status::Ok()};
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace pcbl
