// Tests for PatchedLabel: additive-corrective patching of a base label's
// worst full-pattern estimates (future-work extension of Sec. II-C / VI).
#include "core/patched_label.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/search.h"
#include "util/rng.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

// A table where independence is badly wrong for a handful of rows: two
// attributes are equal on most rows, plus a few unique outlier rows.
Table CorrelatedTable() {
  auto b = TableBuilder::Create({"a0", "a1", "a2"});
  PCBL_CHECK(b.ok());
  for (int a = 0; a < 3; ++a) {
    for (int v = 0; v < 4; ++v) {
      b->InternValue(a, std::string(1, static_cast<char>('p' + v)));
    }
  }
  Rng rng(99);
  std::vector<ValueId> codes(3);
  for (int r = 0; r < 2000; ++r) {
    ValueId x = rng.UniformInt(4);
    codes[0] = x;
    codes[1] = x;
    codes[2] = rng.UniformInt(4);
    PCBL_CHECK(b->AddRowCodes(codes).ok());
  }
  return b->Build();
}

TEST(PatchedLabelTest, ZeroPatchesEqualsBase) {
  Table t = workload::MakeFig2Demo();
  Label base = Label::Build(t, AttrMask::FromIndices({1, 3}));
  FullPatternIndex index = FullPatternIndex::Build(t);
  PatchedLabel patched(Label::Build(t, AttrMask::FromIndices({1, 3})), index,
                       0);
  EXPECT_EQ(patched.num_patches(), 0);
  EXPECT_EQ(patched.FootprintEntries(), base.size());
  for (int64_t i = 0; i < index.num_patterns(); ++i) {
    EXPECT_DOUBLE_EQ(patched.EstimateFullPattern(index.codes(i),
                                                 index.width()),
                     base.EstimateFullPattern(index.codes(i), index.width()));
  }
}

TEST(PatchedLabelTest, PatchedPatternsEstimateExactly) {
  Table t = CorrelatedTable();
  FullPatternIndex index = FullPatternIndex::Build(t);
  Label base = Label::Build(t, AttrMask::FromIndices({0, 2}));
  PatchedLabel patched(std::move(base), index, 5);
  ASSERT_EQ(patched.num_patches(), 5);
  for (int64_t i = 0; i < patched.num_patches(); ++i) {
    EXPECT_DOUBLE_EQ(
        patched.EstimateFullPattern(patched.patch_codes(i), patched.width()),
        static_cast<double>(patched.patch_count(i)));
  }
}

TEST(PatchedLabelTest, MaxErrorDropsToNextWorstPattern) {
  Table t = CorrelatedTable();
  FullPatternIndex index = FullPatternIndex::Build(t);

  // Errors of the base label over P_A, descending.
  Label base = Label::Build(t, AttrMask::FromIndices({0, 2}));
  std::vector<double> errors;
  for (int64_t i = 0; i < index.num_patterns(); ++i) {
    errors.push_back(std::abs(
        static_cast<double>(index.count(i)) -
        base.EstimateFullPattern(index.codes(i), index.width())));
  }
  std::sort(errors.rbegin(), errors.rend());

  for (int k : {1, 3, 8}) {
    PatchedLabel patched(Label::Build(t, AttrMask::FromIndices({0, 2})),
                         index, k);
    ErrorReport report =
        EvaluateOverFullPatterns(index, patched, ErrorMode::kExact);
    ASSERT_LT(static_cast<size_t>(k), errors.size());
    EXPECT_LE(report.max_abs, errors[static_cast<size_t>(k)] + 1e-9)
        << "k=" << k;
  }
}

TEST(PatchedLabelTest, PartialPatternGetsAdditiveCorrection) {
  Table t = workload::MakeFig2Demo();
  FullPatternIndex index = FullPatternIndex::Build(t);
  Label base = Label::Build(t, AttrMask::FromIndices({1, 3}));
  PatchedLabel patched(Label::Build(t, AttrMask::FromIndices({1, 3})), index,
                       3);
  auto p = Pattern::Parse(t, {{"gender", "Female"}});
  ASSERT_TRUE(p.ok());
  // Expected: base estimate plus the deltas of patches matching the term.
  double expected = base.EstimateCount(*p);
  for (int64_t i = 0; i < patched.num_patches(); ++i) {
    if (patched.patch_codes(i)[0] == p->terms()[0].value) {
      expected += patched.patch_delta(i);
    }
  }
  EXPECT_NEAR(patched.EstimateCount(*p), expected, 1e-9);
}

TEST(PatchedLabelTest, EmptyPatternStaysExact) {
  Table t = CorrelatedTable();
  FullPatternIndex index = FullPatternIndex::Build(t);
  PatchedLabel patched(Label::Build(t, AttrMask::FromIndices({0, 2})), index,
                       10);
  EXPECT_DOUBLE_EQ(patched.EstimateCount(Pattern()),
                   static_cast<double>(t.num_rows()));
}

TEST(PatchedLabelTest, PatchCountClampsToPatternCount) {
  Table t = workload::MakeFig2Demo();
  FullPatternIndex index = FullPatternIndex::Build(t);
  PatchedLabel patched(Label::Build(t, AttrMask::FromIndices({0, 1})), index,
                       1000000);
  EXPECT_EQ(patched.num_patches(), index.num_patterns());
  // Fully patched: every full-pattern estimate is exact.
  ErrorReport report =
      EvaluateOverFullPatterns(index, patched, ErrorMode::kExact);
  EXPECT_DOUBLE_EQ(report.max_abs, 0.0);
}

TEST(PatchedSearchTest, ValidatesOptions) {
  Table t = workload::MakeFig2Demo();
  PatchedSearchOptions options;
  options.total_bound = 0;
  EXPECT_FALSE(SearchPatchedLabel(t, options).ok());
  options.total_bound = 10;
  options.min_base_bound = 0;
  EXPECT_FALSE(SearchPatchedLabel(t, options).ok());
}

TEST(PatchedSearchTest, NeverWorseThanPlainTopDown) {
  Table t = CorrelatedTable();
  for (int64_t budget : {10, 30}) {
    PatchedSearchOptions options;
    options.total_bound = budget;
    auto result = SearchPatchedLabel(t, options);
    ASSERT_TRUE(result.ok());
    LabelSearch search(t);
    SearchOptions plain;
    plain.size_bound = budget;
    SearchResult single = search.TopDown(plain);
    // k = 0 is always in the sweep, so the winner cannot be worse.
    EXPECT_LE(result->error.max_abs, single.error.max_abs + 1e-9)
        << "budget=" << budget;
    EXPECT_LE(result->total_size, budget);
  }
}

TEST(PatchedSearchTest, RecordsAllSplitsAndRespectsMinBase) {
  Table t = workload::MakeFig2Demo();
  PatchedSearchOptions options;
  options.total_bound = 10;
  options.patch_splits = {2, 4, 8, 64};
  options.min_base_bound = 4;
  auto result = SearchPatchedLabel(t, options);
  ASSERT_TRUE(result.ok());
  // k=0 plus {2, 4}; 8 and 64 leave base bound < 4 and are skipped.
  ASSERT_EQ(result->splits.size(), 3u);
  EXPECT_EQ(result->splits[0].num_patches, 0);
  EXPECT_EQ(result->splits[1].base_bound, 8);
  EXPECT_EQ(result->splits[2].base_bound, 6);
  for (const auto& split : result->splits) {
    EXPECT_GE(split.base_bound, options.min_base_bound);
  }
}

TEST(PatchedSearchTest, EstimatorIsReturnedAndConsistent) {
  Table t = CorrelatedTable();
  PatchedSearchOptions options;
  options.total_bound = 20;
  auto result = SearchPatchedLabel(t, options);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->estimator, nullptr);
  EXPECT_EQ(result->estimator->FootprintEntries(), result->total_size);
  FullPatternIndex index = FullPatternIndex::Build(t);
  ErrorReport replay =
      EvaluateOverFullPatterns(index, *result->estimator, ErrorMode::kExact);
  EXPECT_DOUBLE_EQ(replay.max_abs, result->error.max_abs);
}

// Patching is deterministic: equal-error ties resolve by count then index.
TEST(PatchedLabelTest, DeterministicConstruction) {
  Table t = workload::MakeCompas(2000, 7).value();
  FullPatternIndex index = FullPatternIndex::Build(t);
  PatchedLabel a(Label::Build(t, AttrMask::FromIndices({0, 1})), index, 12);
  PatchedLabel b(Label::Build(t, AttrMask::FromIndices({0, 1})), index, 12);
  ASSERT_EQ(a.num_patches(), b.num_patches());
  for (int64_t i = 0; i < a.num_patches(); ++i) {
    EXPECT_EQ(a.patch_count(i), b.patch_count(i));
    for (int w = 0; w < a.width(); ++w) {
      EXPECT_EQ(a.patch_codes(i)[w], b.patch_codes(i)[w]);
    }
  }
}

}  // namespace
}  // namespace pcbl
