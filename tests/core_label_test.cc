// Tests for Label construction and the estimation function, pinned to the
// paper's worked examples (2.6-2.8, 2.10, 2.12, 2.14) and the exactness /
// monotonicity properties of Sec. III-A.
#include "core/label.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "baselines/independence.h"
#include "pattern/full_pattern_index.h"
#include "util/rng.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

// Builds the n-binary-attribute database of Example 2.5: every value
// combination appears exactly once (2^n rows).
Table MakeBinaryCube(int n) {
  std::vector<std::string> names;
  for (int i = 0; i < n; ++i) names.push_back("A" + std::to_string(i + 1));
  auto b = TableBuilder::Create(names);
  PCBL_CHECK(b.ok());
  for (int a = 0; a < n; ++a) {
    b->InternValue(a, "0");
    b->InternValue(a, "1");
  }
  std::vector<ValueId> codes(static_cast<size_t>(n));
  for (uint64_t bits = 0; bits < (1ULL << n); ++bits) {
    for (int a = 0; a < n; ++a) {
      codes[static_cast<size_t>(a)] = (bits >> a) & 1;
    }
    PCBL_CHECK(b->AddRowCodes(codes).ok());
  }
  return b->Build();
}

TEST(LabelTest, SizeMatchesPatternCount) {
  Table t = workload::MakeFig2Demo();
  Label l = Label::Build(t, AttrMask::FromIndices({1, 3}));
  EXPECT_EQ(l.size(), 3);  // Example 2.10
  Label l2 = Label::Build(t, AttrMask::FromIndices({0, 1}));
  EXPECT_EQ(l2.size(), 4);
}

TEST(LabelTest, EmptyLabelEstimatesLikeIndependence) {
  Table t = workload::MakeFig2Demo();
  Label l = Label::Build(t, AttrMask());
  EXPECT_EQ(l.size(), 0);  // no joint counts beyond VC
  auto vc = l.shared_value_counts();
  IndependenceEstimator ind = IndependenceEstimator::Build(t, vc);
  FullPatternIndex idx = FullPatternIndex::Build(t);
  for (int64_t i = 0; i < idx.num_patterns(); ++i) {
    EXPECT_DOUBLE_EQ(l.EstimateFullPattern(idx.codes(i), idx.width()),
                     ind.EstimateFullPattern(idx.codes(i), idx.width()));
  }
}

TEST(LabelTest, Example26IndependenceEstimate) {
  // Example 2.6: n binary attrs, uniform cube; the VC-only estimate of
  // {A1=0, A2=0, A3=0} is 2^(n-3).
  const int n = 6;
  Table t = MakeBinaryCube(n);
  Label l = Label::Build(t, AttrMask());
  auto p = Pattern::Parse(t, {{"A1", "0"}, {"A2", "0"}, {"A3", "0"}});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(l.EstimateCount(*p), std::pow(2.0, n - 3));
}

TEST(LabelTest, Example27CorrelatedAttributeBreaksIndependence) {
  // Example 2.7: overwrite A1 with a copy of A2. True count of
  // {A1=0,A2=0,A3=0} becomes 2^(n-2); the VC-only estimate stays 2^(n-3).
  const int n = 6;
  Table base = MakeBinaryCube(n);
  std::vector<std::string> names = base.schema().names();
  auto b = TableBuilder::Create(names);
  ASSERT_TRUE(b.ok());
  for (int a = 0; a < n; ++a) {
    b->InternValue(a, "0");
    b->InternValue(a, "1");
  }
  std::vector<ValueId> codes(static_cast<size_t>(n));
  for (int64_t r = 0; r < base.num_rows(); ++r) {
    for (int a = 0; a < n; ++a) codes[static_cast<size_t>(a)] = base.value(r, a);
    codes[0] = codes[1];  // A1 := A2
    ASSERT_TRUE(b->AddRowCodes(codes).ok());
  }
  Table t = b->Build();
  auto p = Pattern::Parse(t, {{"A1", "0"}, {"A2", "0"}, {"A3", "0"}});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(CountMatches(t, *p), 1 << (n - 2));
  Label vc_only = Label::Build(t, AttrMask());
  EXPECT_DOUBLE_EQ(vc_only.EstimateCount(*p), std::pow(2.0, n - 3));
  // Example 2.8: adding {A1, A2} to the label gives the exact count.
  Label l12 = Label::Build(t, AttrMask::FromIndices({0, 1}));
  EXPECT_DOUBLE_EQ(l12.EstimateCount(*p), std::pow(2.0, n - 2));
}

TEST(LabelTest, Example212EstimatesWithBothLabels) {
  Table t = workload::MakeFig2Demo();
  auto p = Pattern::Parse(t, {{"gender", "Female"},
                              {"age group", "20-39"},
                              {"marital status", "married"}});
  ASSERT_TRUE(p.ok());
  // l = L_{age group, marital status}: Est = 6 * 9/18 = 3.
  Label l = Label::Build(t, AttrMask::FromIndices({1, 3}));
  EXPECT_DOUBLE_EQ(l.EstimateCount(*p), 3.0);
  // l' = L_{gender, age group}: Est = 6 * 6/18 = 2.
  Label lp = Label::Build(t, AttrMask::FromIndices({0, 1}));
  EXPECT_DOUBLE_EQ(lp.EstimateCount(*p), 2.0);
}

TEST(LabelTest, Example214Errors) {
  Table t = workload::MakeFig2Demo();
  auto p = Pattern::Parse(t, {{"gender", "Female"},
                              {"age group", "20-39"},
                              {"marital status", "married"}});
  ASSERT_TRUE(p.ok());
  int64_t actual = CountMatches(t, *p);
  EXPECT_EQ(actual, 3);
  Label l = Label::Build(t, AttrMask::FromIndices({1, 3}));
  Label lp = Label::Build(t, AttrMask::FromIndices({0, 1}));
  EXPECT_DOUBLE_EQ(l.AbsoluteError(*p, actual), 0.0);
  EXPECT_DOUBLE_EQ(lp.AbsoluteError(*p, actual), 1.0);
}

TEST(LabelTest, ExactWhenPatternAttrsInsideS) {
  // Sec. III-A: if Attr(p) ⊆ S the estimate is exact.
  Table t = workload::MakeFig2Demo();
  AttrMask s = AttrMask::FromIndices({0, 2});
  Label l = Label::Build(t, s);
  for (const char* gender : {"Female", "Male"}) {
    for (const char* race :
         {"African-American", "Caucasian", "Hispanic"}) {
      auto p = Pattern::Parse(t, {{"gender", gender}, {"race", race}});
      ASSERT_TRUE(p.ok());
      EXPECT_DOUBLE_EQ(l.EstimateCount(*p),
                       static_cast<double>(CountMatches(t, *p)))
          << p->ToString(t);
      // Also single-attribute restrictions (marginal lookups).
      auto pg = Pattern::Parse(t, {{"gender", gender}});
      ASSERT_TRUE(pg.ok());
      EXPECT_DOUBLE_EQ(l.EstimateCount(*pg),
                       static_cast<double>(CountMatches(t, *pg)));
    }
  }
}

TEST(LabelTest, RestrictedCountMarginalizesOverPc) {
  Table t = workload::MakeFig2Demo();
  Label l = Label::Build(t, AttrMask::FromIndices({1, 3}));
  // Pattern binding only age: c(p|S) must equal the age marginal.
  auto p = Pattern::Parse(t, {{"age group", "20-39"}, {"gender", "Male"}});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(l.RestrictedCount(*p), 12);
  // Pattern binding nothing in S: |D|.
  auto pg = Pattern::Parse(t, {{"gender", "Male"}});
  ASSERT_TRUE(pg.ok());
  EXPECT_EQ(l.RestrictedCount(*pg), 18);
}

TEST(LabelTest, UnseenCombinationEstimatesZero) {
  Table t = workload::MakeFig2Demo();
  Label l = Label::Build(t, AttrMask::FromIndices({1, 3}));
  // {age=under 20, marital=married} never occurs.
  auto p = Pattern::Parse(
      t, {{"age group", "under 20"}, {"marital status", "married"}});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(l.EstimateCount(*p), 0.0);
}

TEST(LabelTest, FullPatternFastPathAgreesWithGeneralPath) {
  Table t = workload::MakeCompas(2000, 7).value();
  FullPatternIndex idx = FullPatternIndex::Build(t);
  Label l = Label::Build(t, AttrMask::FromIndices({0, 2, 12}));
  LabelEstimator est(l);
  int64_t limit = std::min<int64_t>(idx.num_patterns(), 200);
  for (int64_t i = 0; i < limit; ++i) {
    Pattern p = idx.ToPattern(i);
    EXPECT_NEAR(l.EstimateFullPattern(idx.codes(i), idx.width()),
                l.EstimateCount(p), 1e-9);
  }
}

TEST(LabelTest, SizeMonotoneUnderSubset) {
  // |P_{S1}| <= |P_{S2}| when S1 ⊆ S2.
  Table t = workload::MakeCompas(3000, 11).value();
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    AttrMask s2;
    int k = 2 + static_cast<int>(rng.UniformInt(4));
    while (s2.Count() < k) {
      s2.Set(static_cast<int>(
          rng.UniformInt(static_cast<uint32_t>(t.num_attributes()))));
    }
    AttrMask s1 = s2;
    s1.Clear(s1.ToIndices()[rng.UniformInt(
        static_cast<uint32_t>(s1.Count()))]);
    Label l1 = Label::Build(t, s1);
    Label l2 = Label::Build(t, s2);
    EXPECT_LE(l1.size(), l2.size())
        << s1.ToString() << " vs " << s2.ToString();
  }
}

TEST(LabelTest, EstimatesSumToTotalRowsOverFullPatterns) {
  // Σ_p Est(p) over all full patterns equals |D| when S-attributes
  // partition the data and the independence factors are complete:
  // the estimator distributes each PC group's mass over the non-S
  // attributes, so the grand total is conserved.
  Table t = workload::MakeBlueNile(3000, 3).value();
  FullPatternIndex idx = FullPatternIndex::Build(t);
  // Only exactly true when every non-S attribute is independent of the
  // rest *in the estimator's model*; the identity Σ Est = Σ_pc count *
  // Π(Σ_v freq) = |D| holds per PC group only when grouping covers all
  // full patterns of that group; validate numerically instead.
  Label l = Label::Build(t, AttrMask::FromIndices({1, 4}));
  double total = 0;
  for (int64_t i = 0; i < idx.num_patterns(); ++i) {
    total += l.EstimateFullPattern(idx.codes(i), idx.width());
  }
  // The sum cannot exceed |D| (mass conservation; it is below when some
  // full combination is absent from the data).
  EXPECT_LE(total, static_cast<double>(t.num_rows()) + 1e-6);
  EXPECT_GT(total, 0.0);
}

}  // namespace
}  // namespace pcbl
