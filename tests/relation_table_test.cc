// Tests for Dictionary, Schema, Table and TableBuilder.
#include "relation/table.h"

#include <gtest/gtest.h>

#include "relation/dictionary.h"
#include "relation/schema.h"

namespace pcbl {
namespace {

TEST(DictionaryTest, InternAssignsDenseIdsInFirstSeenOrder) {
  Dictionary d;
  EXPECT_EQ(d.Intern("a"), 0u);
  EXPECT_EQ(d.Intern("b"), 1u);
  EXPECT_EQ(d.Intern("a"), 0u);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.GetString(0), "a");
  EXPECT_EQ(d.GetString(1), "b");
}

TEST(DictionaryTest, LookupDoesNotIntern) {
  Dictionary d;
  EXPECT_EQ(d.Lookup("missing"), kNullValue);
  EXPECT_EQ(d.size(), 0u);
  d.Intern("x");
  EXPECT_EQ(d.Lookup("x"), 0u);
  EXPECT_TRUE(d.Contains("x"));
  EXPECT_FALSE(d.Contains("y"));
}

TEST(SchemaTest, CreateAndFind) {
  auto s = Schema::Create({"a", "b", "c"});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_attributes(), 3);
  EXPECT_EQ(s->name(1), "b");
  EXPECT_EQ(s->FindAttribute("c").value(), 2);
  EXPECT_FALSE(s->FindAttribute("z").ok());
  EXPECT_TRUE(s->HasAttribute("a"));
  EXPECT_FALSE(s->HasAttribute("z"));
}

TEST(SchemaTest, RejectsDuplicates) {
  EXPECT_FALSE(Schema::Create({"a", "b", "a"}).ok());
}

TEST(SchemaTest, RejectsTooManyAttributes) {
  std::vector<std::string> names;
  for (int i = 0; i < 65; ++i) names.push_back("a" + std::to_string(i));
  EXPECT_FALSE(Schema::Create(names).ok());
}

TEST(TableBuilderTest, BuildsFromStringRows) {
  auto b = TableBuilder::Create({"x", "y"});
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(b->AddRow({"1", "a"}).ok());
  ASSERT_TRUE(b->AddRow({"2", "a"}).ok());
  ASSERT_TRUE(b->AddRow({"1", "b"}).ok());
  Table t = b->Build();
  EXPECT_EQ(t.num_rows(), 3);
  EXPECT_EQ(t.num_attributes(), 2);
  EXPECT_EQ(t.ValueString(0, 0), "1");
  EXPECT_EQ(t.ValueString(2, 1), "b");
  EXPECT_EQ(t.DomainSize(0), 2u);
  EXPECT_EQ(t.DomainSize(1), 2u);
  // Same string in different attributes gets independent ids.
  EXPECT_EQ(t.value(0, 0), 0u);
  EXPECT_EQ(t.value(0, 1), 0u);
}

TEST(TableBuilderTest, EmptyAndNullLiteralsAreMissing) {
  auto b = TableBuilder::Create({"x"});
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(b->AddRow({""}).ok());
  ASSERT_TRUE(b->AddRow({"NULL"}).ok());
  ASSERT_TRUE(b->AddRow({"v"}).ok());
  Table t = b->Build();
  EXPECT_TRUE(IsNull(t.value(0, 0)));
  EXPECT_TRUE(IsNull(t.value(1, 0)));
  EXPECT_FALSE(IsNull(t.value(2, 0)));
  EXPECT_EQ(t.NullCount(0), 2);
  EXPECT_EQ(t.ValueString(0, 0), "NULL");
}

TEST(TableBuilderTest, RejectsWrongArity) {
  auto b = TableBuilder::Create({"x", "y"});
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(b->AddRow({"1"}).ok());
  EXPECT_FALSE(b->AddRow({"1", "2", "3"}).ok());
}

TEST(TableBuilderTest, AddRowCodesValidatesRange) {
  auto b = TableBuilder::Create({"x"});
  ASSERT_TRUE(b.ok());
  b->InternValue(0, "a");
  EXPECT_TRUE(b->AddRowCodes({0}).ok());
  EXPECT_TRUE(b->AddRowCodes({kNullValue}).ok());
  EXPECT_FALSE(b->AddRowCodes({5}).ok());
}

TEST(TableBuilderTest, InternValueFixesIdOrder) {
  auto b = TableBuilder::Create({"x"});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->InternValue(0, "z"), 0u);
  EXPECT_EQ(b->InternValue(0, "a"), 1u);
  ASSERT_TRUE(b->AddRow({"a"}).ok());
  Table t = b->Build();
  EXPECT_EQ(t.value(0, 0), 1u);
}

TEST(TableTest, ProjectKeepsSelectedColumns) {
  auto b = TableBuilder::Create({"a", "b", "c"});
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(b->AddRow({"1", "2", "3"}).ok());
  ASSERT_TRUE(b->AddRow({"4", "5", "6"}).ok());
  Table t = b->Build();
  auto p = t.Project(AttrMask::FromIndices({0, 2}));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_attributes(), 2);
  EXPECT_EQ(p->schema().name(0), "a");
  EXPECT_EQ(p->schema().name(1), "c");
  EXPECT_EQ(p->ValueString(1, 1), "6");
  EXPECT_EQ(p->num_rows(), 2);
}

TEST(TableTest, ProjectOutOfRangeFails) {
  auto b = TableBuilder::Create({"a"});
  ASSERT_TRUE(b.ok());
  Table t = b->Build();
  EXPECT_FALSE(t.Project(AttrMask::FromIndices({3})).ok());
}

TEST(TableTest, ProjectPrefix) {
  auto b = TableBuilder::Create({"a", "b", "c"});
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(b->AddRow({"1", "2", "3"}).ok());
  Table t = b->Build();
  auto p = t.ProjectPrefix(2);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_attributes(), 2);
  EXPECT_FALSE(t.ProjectPrefix(5).ok());
  EXPECT_FALSE(t.ProjectPrefix(-1).ok());
}

TEST(TableTest, EmptyTableBasics) {
  auto b = TableBuilder::Create({"a", "b"});
  ASSERT_TRUE(b.ok());
  Table t = b->Build();
  EXPECT_EQ(t.num_rows(), 0);
  EXPECT_EQ(t.num_attributes(), 2);
  EXPECT_EQ(t.DomainSize(0), 0u);
}

TEST(TableTest, DebugStringTruncates) {
  auto b = TableBuilder::Create({"a"});
  ASSERT_TRUE(b.ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(b->AddRow({std::to_string(i)}).ok());
  }
  Table t = b->Build();
  std::string s = t.ToDebugString(5);
  EXPECT_NE(s.find("more rows"), std::string::npos);
}

}  // namespace
}  // namespace pcbl
