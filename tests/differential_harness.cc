#include "tests/differential_harness.h"

#include <gtest/gtest.h>

#include "core/incremental.h"
#include "pattern/lattice.h"
#include "pattern/packed_codec.h"
#include "util/logging.h"
#include "util/rng.h"

namespace pcbl {
namespace testing {

namespace {

Table BuildTable(const std::vector<std::string>& names,
                 const std::vector<const std::vector<std::vector<std::string>>*>&
                     row_blocks) {
  auto builder = TableBuilder::Create(names);
  PCBL_CHECK(builder.ok());
  for (const auto* rows : row_blocks) {
    for (const auto& row : *rows) {
      PCBL_CHECK(builder->AddRow(row).ok());
    }
  }
  return builder->Build();
}

// The reference one-shot PC set, cross-checked across every eligible
// forced strategy so a codec divergence fails here, loudly, rather than
// biasing the comparison below.
GroupCounts ReferencePatternCounts(const Table& table, AttrMask mask,
                                   const std::string& context) {
  GroupCounts reference = ComputePatternCounts(table, mask);
  const std::vector<int> attrs = mask.ToIndices();
  if (attrs.size() >= 2) {
    if (counting::MakePackedLayout(table, attrs).ok) {
      ExpectSameGroupCounts(
          ComputePatternCounts(table, mask, RestrictionStrategy::kPacked),
          reference, context + " packed-vs-auto " + mask.ToString());
    }
    bool encodable = false;
    counting::NullableRadixMultipliers(table, attrs, &encodable);
    if (encodable) {
      ExpectSameGroupCounts(
          ComputePatternCounts(table, mask,
                               RestrictionStrategy::kMixedRadix),
          reference, context + " mixed-vs-auto " + mask.ToString());
    }
    ExpectSameGroupCounts(
        ComputePatternCounts(table, mask, RestrictionStrategy::kSort),
        reference, context + " sort-vs-auto " + mask.ToString());
  }
  return reference;
}

}  // namespace

DifferentialWorkload RandomWorkload(uint64_t seed, int attrs,
                                    int64_t base_rows, int64_t append_rows,
                                    int domain, int append_domain,
                                    int null_percent) {
  Rng rng(seed);
  DifferentialWorkload workload;
  for (int a = 0; a < attrs; ++a) {
    workload.attribute_names.push_back("a" + std::to_string(a));
  }
  auto make_rows = [&](int64_t count, int dom) {
    std::vector<std::vector<std::string>> rows;
    for (int64_t r = 0; r < count; ++r) {
      std::vector<std::string> row;
      for (int a = 0; a < attrs; ++a) {
        if (rng.UniformInt(100) < static_cast<uint32_t>(null_percent)) {
          row.push_back("");
        } else {
          row.push_back("v" + std::to_string(rng.UniformInt(
                                  static_cast<uint32_t>(dom))));
        }
      }
      rows.push_back(std::move(row));
    }
    return rows;
  };
  workload.base_rows = make_rows(base_rows, domain);
  workload.append_rows = make_rows(append_rows, append_domain);
  return workload;
}

std::vector<DifferentialConfig> StandardConfigs() {
  std::vector<DifferentialConfig> configs;
  {
    DifferentialConfig c;
    c.name = "warm-patch-delta";
    c.warm_cache_first = true;
    configs.push_back(c);
  }
  {
    DifferentialConfig c;
    c.name = "cold-bulk-delta";
    c.bulk_append = true;
    configs.push_back(c);
  }
  {
    DifferentialConfig c;
    c.name = "warm-invalidate-bulk";
    c.warm_cache_first = true;
    c.invalidate_before_appends = true;
    c.bulk_append = true;
    configs.push_back(c);
  }
  {
    DifferentialConfig c;
    c.name = "warm-compacted";
    c.warm_cache_first = true;
    c.compact_after_appends = true;
    configs.push_back(c);
  }
  {
    DifferentialConfig c;
    c.name = "auto-compact-threshold-1";
    c.compact_threshold = 1;  // every append folds immediately
    configs.push_back(c);
  }
  {
    DifferentialConfig c;
    c.name = "engine-off-delta";
    c.engine_enabled = false;
    configs.push_back(c);
  }
  {
    DifferentialConfig c;
    c.name = "engine-off-compacted";
    c.engine_enabled = false;
    c.compact_after_appends = true;
    c.bulk_append = true;
    configs.push_back(c);
  }
  {
    DifferentialConfig c;
    c.name = "tiny-cache-threaded";
    c.warm_cache_first = true;
    c.cache_budget = 64;
    c.num_threads = 4;
    configs.push_back(c);
  }
  return configs;
}

void ExpectSameGroupCounts(const GroupCounts& got, const GroupCounts& want,
                           const std::string& context) {
  ASSERT_EQ(got.num_groups(), want.num_groups()) << context;
  ASSERT_EQ(got.key_width(), want.key_width()) << context;
  EXPECT_EQ(got.attrs(), want.attrs()) << context;
  for (int64_t g = 0; g < got.num_groups(); ++g) {
    EXPECT_EQ(got.count(g), want.count(g))
        << context << " group " << g;
    for (int j = 0; j < got.key_width(); ++j) {
      EXPECT_EQ(got.key(g)[j], want.key(g)[j])
          << context << " group " << g << " pos " << j;
    }
  }
}

DifferentialHarness::DifferentialHarness(DifferentialWorkload workload)
    : workload_(std::move(workload)),
      base_(BuildTable(workload_.attribute_names, {&workload_.base_rows})),
      reference_(BuildTable(workload_.attribute_names,
                            {&workload_.base_rows,
                             &workload_.append_rows})) {}

void DifferentialHarness::CheckServiceAgainst(CountingService& service,
                                              const Table& reference,
                                              const std::string& context) {
  std::lock_guard<std::mutex> lock(service.mutex());
  CountingEngine& engine = service.engine();
  ASSERT_EQ(engine.total_rows(), reference.num_rows()) << context;
  const AttrMask universe = AttrMask::All(reference.num_attributes());
  ForEachSubsetOf(universe, [&](AttrMask s) {
    const std::string ctx = context + " " + s.ToString();
    const GroupCounts want = ReferencePatternCounts(reference, s, ctx);
    // Budgeted sizing first, before the exact query below warms the
    // cache — this is the path the searches hammer.
    const int64_t exact = want.num_groups();
    const int64_t budget = exact > 1 ? exact / 2 : 0;
    const int64_t sized = engine.CountPatterns(s, budget);
    if (exact <= budget) {
      EXPECT_EQ(sized, exact) << ctx << " budget " << budget;
    } else {
      EXPECT_GT(sized, budget) << ctx << " budget " << budget;
    }
    EXPECT_EQ(engine.CountPatterns(s), exact) << ctx;
    ExpectSameGroupCounts(*engine.PatternCounts(s), want, ctx);
    EXPECT_EQ(engine.CountCombos(s), CountDistinctCombos(reference, s))
        << ctx;
  });
}

std::shared_ptr<CountingService> DifferentialHarness::Run(
    const DifferentialConfig& config) const {
  const std::string context = "config " + config.name;
  CountingEngineOptions options;
  options.enabled = config.engine_enabled;
  options.num_threads = config.num_threads;
  options.cache_budget = config.cache_budget;
  options.delta_compact_threshold = config.compact_threshold;
  auto service = std::make_shared<CountingService>(base_, options);

  if (config.warm_cache_first) {
    std::lock_guard<std::mutex> lock(service->mutex());
    ForEachSubsetOf(AttrMask::All(base_.num_attributes()), [&](AttrMask s) {
      if (s.Count() >= 2) service->engine().PatternCounts(s);
    });
  }

  if (!workload_.append_rows.empty()) {
    // Appends flow through IncrementalLabel — the production write path:
    // it interns fresh values into the shared code space and notifies
    // the service's invalidate-or-patch hook.
    auto label = IncrementalLabel::Create(
        base_, AttrMask::FromIndices({0, 1}), int64_t{1} << 20, service);
    if (!label.ok()) {
      ADD_FAILURE() << context << ": " << label.status().ToString();
      return service;
    }
    if (config.invalidate_before_appends) service->Invalidate();
    if (config.bulk_append) {
      Table delta =
          BuildTable(workload_.attribute_names, {&workload_.append_rows});
      EXPECT_TRUE(label->AppendTable(delta).ok()) << context;
    } else {
      for (const auto& row : workload_.append_rows) {
        EXPECT_TRUE(label->AppendRow(row).ok()) << context;
      }
    }
    // The incremental label itself must agree with a rebuilt one.
    EXPECT_EQ(label->FootprintEntries(),
              ReferencePatternCounts(reference_,
                                     AttrMask::FromIndices({0, 1}), context)
                  .num_groups())
        << context;
  }

  if (config.compact_after_appends) {
    std::lock_guard<std::mutex> lock(service->mutex());
    service->engine().CompactDeltas();
    EXPECT_EQ(service->engine().num_delta_rows(), 0) << context;
  }

  CheckServiceAgainst(*service, reference_, context);
  return service;
}

void DifferentialHarness::CheckAll() const {
  for (const DifferentialConfig& config : StandardConfigs()) {
    Run(config);
  }
}

}  // namespace testing
}  // namespace pcbl
