// Multi-appender group commit (docs/CONCURRENCY.md §3): N sessions
// appending concurrently to one shared CountingService while M sessions
// search, with every outcome differentially checked against a
// from-scratch TableBuilder rebuild of the rows the service actually
// committed. Covers:
//
//  * the appender x searcher grid (1/2/4 appenders, 1/4 searchers,
//    single-row and bulk tickets) — labels, true counts and profiles
//    byte-identical to the rebuilt table's;
//  * deterministic group-commit merging: concurrent requests parked
//    behind a held query admission commit as ONE batch;
//  * delta compaction mid-stream under concurrent string appends;
//  * transactional failure: a fault-injected or schema-mismatched
//    ticket leaves no trace — no rows, no interned values, siblings in
//    the same batch unaffected;
//  * the solo (group-commit off) arm, same differential contract.
//
// The whole file must be TSan- and ASan-clean (see .github/workflows).
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/dataset.h"
#include "api/query.h"
#include "api/session.h"
#include "core/pattern_set.h"
#include "core/search.h"
#include "pattern/counting_engine.h"
#include "pattern/counting_service.h"
#include "relation/table.h"
#include "tests/differential_harness.h"
#include "util/logging.h"
#include "util/str.h"

namespace pcbl {
namespace {

using api::Dataset;
using api::DatasetOptions;
using api::QueryResult;
using api::QuerySpec;
using api::Session;
using api::SessionOptions;

// Rows appender `k` submits: every cell value is unique to the
// appender, most are fresh (never in the base dictionaries), some NULL.
std::vector<std::vector<std::string>> AppenderRows(int k, int64_t rows,
                                                   int attrs) {
  std::vector<std::vector<std::string>> out;
  out.reserve(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    std::vector<std::string> row(static_cast<size_t>(attrs));
    for (int a = 0; a < attrs; ++a) {
      if ((r + a + k) % 7 == 0) {
        row[static_cast<size_t>(a)] = "NULL";
      } else {
        // Small per-appender domains so patterns repeat.
        row[static_cast<size_t>(a)] =
            StrCat("a", k, "-v", (r + a) % 4);
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<std::vector<std::string>> BaseRows(int64_t rows, int attrs) {
  std::vector<std::vector<std::string>> out;
  out.reserve(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    std::vector<std::string> row(static_cast<size_t>(attrs));
    for (int a = 0; a < attrs; ++a) {
      row[static_cast<size_t>(a)] =
          (r + a) % 11 == 0 ? "NULL" : StrCat("base-", (r + a) % 5);
    }
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<std::string> AttributeNames(int attrs) {
  std::vector<std::string> names;
  for (int a = 0; a < attrs; ++a) names.push_back(StrCat("attr", a));
  return names;
}

Table BuildTable(const std::vector<std::string>& names,
                 const std::vector<std::vector<std::string>>& rows) {
  auto builder = TableBuilder::Create(names);
  PCBL_CHECK(builder.ok()) << builder.status();
  for (const auto& row : rows) PCBL_CHECK(builder->AddRow(row).ok());
  return builder->Build();
}

// Decodes the service's appended rows — in the order the group commits
// actually applied them — back to strings, via the shared interner for
// codes past the base dictionaries.
std::vector<std::vector<std::string>> DecodeAppendedRows(
    const CountingService& service, const Table& base) {
  const CountingEngine& engine = service.engine();
  const int n = base.num_attributes();
  const int64_t appended = engine.total_rows() - base.num_rows();
  std::vector<ValueId> flat(static_cast<size_t>(appended * n));
  if (appended > 0) engine.CopyAppendedRows(0, appended, flat.data());
  std::vector<std::vector<std::string>> rows;
  rows.reserve(static_cast<size_t>(appended));
  for (int64_t r = 0; r < appended; ++r) {
    std::vector<std::string> row(static_cast<size_t>(n));
    for (int a = 0; a < n; ++a) {
      const ValueId v = flat[static_cast<size_t>(r * n + a)];
      row[static_cast<size_t>(a)] =
          IsNull(v) ? "NULL" : service.interner().GetString(a, v);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void ExpectSameSearchResult(const SearchResult& got,
                            const SearchResult& want,
                            const std::string& context) {
  EXPECT_EQ(got.best_attrs.bits(), want.best_attrs.bits()) << context;
  EXPECT_EQ(got.label.size(), want.label.size()) << context;
  EXPECT_EQ(got.label.total_rows(), want.label.total_rows()) << context;
  testing::ExpectSameGroupCounts(got.label.pattern_counts(),
                                 want.label.pattern_counts(), context);
  EXPECT_EQ(got.error.max_abs, want.error.max_abs) << context;
  EXPECT_EQ(got.error.mean_abs, want.error.mean_abs) << context;
  EXPECT_EQ(got.error.max_q, want.error.max_q) << context;
  EXPECT_EQ(got.error.evaluated, want.error.evaluated) << context;
  EXPECT_EQ(got.error.total, want.error.total) << context;
}

// After all appenders drain, every session must agree byte-for-byte
// with a from-scratch rebuild over (base rows + committed rows in
// commit order): label search, focus search, profile and true counts.
void ExpectMatchesRebuild(Session& session, const Dataset& dataset,
                          const std::vector<std::string>& names,
                          std::vector<std::vector<std::string>> base_rows,
                          const std::string& context) {
  const Table& base = dataset.table();
  const std::vector<std::vector<std::string>> appended =
      DecodeAppendedRows(*dataset.service(), base);
  std::vector<std::vector<std::string>> all = std::move(base_rows);
  all.insert(all.end(), appended.begin(), appended.end());
  const Table rebuilt = BuildTable(names, all);
  ASSERT_EQ(session.total_rows(), rebuilt.num_rows()) << context;

  constexpr int64_t kBound = 30;
  SearchOptions reference_options;
  reference_options.size_bound = kBound;
  LabelSearch reference(rebuilt);
  const SearchResult want = reference.TopDown(reference_options);
  QueryResult got = session.Run(QuerySpec::LabelSearch(kBound));
  ASSERT_TRUE(got.status.ok()) << context << ": " << got.status;
  EXPECT_EQ(got.total_rows, rebuilt.num_rows()) << context;
  ExpectSameSearchResult(got.search, want, context + "/search");

  // Focus search over appended data — the carried-over bug this PR
  // fixes; the session derives the set from the engine's PC sets.
  const AttrMask focus = AttrMask::FromIndices({0, 1});
  LabelSearch focused(rebuilt);
  focused.SetEvaluationPatterns(std::make_shared<const PatternSet>(
      PatternSet::OverAttributes(rebuilt, focus)));
  const SearchResult want_focus = focused.TopDown(reference_options);
  QuerySpec focus_spec = QuerySpec::LabelSearch(kBound);
  focus_spec.focus = focus;
  QueryResult got_focus = session.Run(focus_spec);
  ASSERT_TRUE(got_focus.status.ok()) << context << ": "
                                     << got_focus.status;
  ExpectSameSearchResult(got_focus.search, want_focus,
                         context + "/focus");

  // True counts of appended-only values, against a rebuilt-table scan.
  for (const auto& row : appended) {
    if (row.empty() || row[0] == "NULL") continue;
    int64_t want_count = 0;
    for (const auto& other : all) want_count += other[0] == row[0];
    QueryResult count =
        session.Run(QuerySpec::TrueCount({{names[0], row[0]}}));
    ASSERT_TRUE(count.status.ok()) << context << ": " << count.status;
    EXPECT_EQ(count.true_count, want_count) << context << " value "
                                            << row[0];
    break;  // one appended-only predicate per session suffices
  }
}

struct GridConfig {
  int appenders;
  int searchers;
  int64_t rows_per_appender;
  bool bulk;          // one AppendRows ticket vs an AppendRow loop
  bool group_commit;  // off = solo commits (the reference arm)
};

void RunGrid(const GridConfig& config) {
  const std::string context =
      StrCat(config.appenders, "x", config.searchers,
             config.bulk ? "/bulk" : "/rows",
             config.group_commit ? "" : "/solo");
  const int kAttrs = 4;
  const std::vector<std::string> names = AttributeNames(kAttrs);
  std::vector<std::vector<std::string>> base_rows = BaseRows(200, kAttrs);
  DatasetOptions options;
  options.private_service = true;
  auto dataset = Dataset::FromTable(BuildTable(names, base_rows), options);
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  dataset->service()->set_append_group_commit(config.group_commit);

  std::vector<std::unique_ptr<Session>> sessions;
  for (int i = 0; i < config.appenders + config.searchers; ++i) {
    auto session = Session::Open(*dataset);
    ASSERT_TRUE(session.ok()) << session.status();
    sessions.push_back(std::move(*session));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int k = 0; k < config.appenders; ++k) {
    threads.emplace_back([&, k] {
      Session& session = *sessions[static_cast<size_t>(k)];
      const auto rows =
          AppenderRows(k, config.rows_per_appender, kAttrs);
      if (config.bulk) {
        if (!session.AppendRows(rows).ok()) failures.fetch_add(1);
      } else {
        for (const auto& row : rows) {
          if (!session.AppendRow(row).ok()) failures.fetch_add(1);
        }
      }
    });
  }
  for (int s = 0; s < config.searchers; ++s) {
    threads.emplace_back([&, s] {
      Session& session =
          *sessions[static_cast<size_t>(config.appenders + s)];
      const int64_t base = dataset->table().num_rows();
      const int64_t ceiling =
          base + config.appenders * config.rows_per_appender;
      while (!stop.load(std::memory_order_acquire)) {
        // Snapshot isolation: a query admitted at row-count R reports
        // exactly R rows, never a torn in-between state.
        QueryResult got = session.Run(QuerySpec::LabelSearch(30));
        if (!got.status.ok() || got.total_rows < base ||
            got.total_rows > ceiling) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (int k = 0; k < config.appenders; ++k) threads[k].join();
  stop.store(true, std::memory_order_release);
  for (size_t i = config.appenders; i < threads.size(); ++i) {
    threads[i].join();
  }
  ASSERT_EQ(failures.load(), 0) << context;

  const AppendBatchStats stats = dataset->service()->append_stats();
  EXPECT_EQ(stats.committed_rows,
            config.appenders * config.rows_per_appender)
      << context;
  EXPECT_EQ(stats.failed_requests, 0) << context;
  EXPECT_EQ(stats.pending, 0) << context;
  if (!config.group_commit) {
    EXPECT_EQ(stats.batches, stats.requests) << context;
  }

  // Every session — appender or searcher — agrees with the rebuild.
  for (size_t i = 0; i < sessions.size(); ++i) {
    ExpectMatchesRebuild(*sessions[i], *dataset, names, base_rows,
                         StrCat(context, "/session", i));
  }
}

TEST(MultiAppenderTest, AppenderSearcherGridMatchesRebuild) {
  for (int appenders : {1, 2, 4}) {
    for (int searchers : {1, 4}) {
      for (bool bulk : {false, true}) {
        RunGrid({appenders, searchers, /*rows_per_appender=*/24, bulk,
                 /*group_commit=*/true});
      }
    }
  }
}

TEST(MultiAppenderTest, SoloCommitArmMatchesRebuild) {
  RunGrid({/*appenders=*/2, /*searchers=*/1, /*rows_per_appender=*/24,
           /*bulk=*/false, /*group_commit=*/false});
}

// Concurrent requests parked behind a held query admission must commit
// as ONE merged batch: the leader's AppendAdmission wait is the merge
// window, and the batch runs one engine hook / one invalidation.
TEST(MultiAppenderTest, ParkedAppendersMergeIntoOneBatch) {
  const int kAttrs = 3;
  const std::vector<std::string> names = AttributeNames(kAttrs);
  const Table base = BuildTable(names, BaseRows(60, kAttrs));
  CountingService service(base);

  constexpr int kAppenders = 3;
  std::vector<std::thread> threads;
  {
    // Hold the gate in shared (query) mode: the elected append leader
    // blocks in BeginAppend while every sibling enqueues behind it.
    CountingService::QueryAdmission admission(service);
    for (int k = 0; k < kAppenders; ++k) {
      threads.emplace_back([&service, &names, k] {
        const auto rows = AppenderRows(k, 4, static_cast<int>(names.size()));
        PCBL_CHECK(service.AppendStrings(rows).ok());
      });
    }
    while (service.append_stats().pending < kAppenders) {
      std::this_thread::yield();
    }
  }  // release: the leader wakes and drains all three tickets at once
  for (auto& thread : threads) thread.join();

  const AppendBatchStats stats = service.append_stats();
  EXPECT_EQ(stats.requests, kAppenders);
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.merged_batches, 1);
  EXPECT_EQ(stats.committed_rows, kAppenders * 4);
  EXPECT_EQ(service.engine().total_rows(), base.num_rows() + 12);
}

// Delta compaction triggered mid-stream by concurrent string appends:
// the engine folds its delta block into columnar base storage while
// sibling appenders keep committing; codes and rows stay exact.
TEST(MultiAppenderTest, CompactionMidStreamStaysExact) {
  const int kAttrs = 3;
  const std::vector<std::string> names = AttributeNames(kAttrs);
  std::vector<std::vector<std::string>> base_rows = BaseRows(50, kAttrs);
  const Table base = BuildTable(names, base_rows);
  CountingEngineOptions options;
  options.delta_compact_threshold = 8;  // compact many times mid-stream
  CountingService service(base, options);

  constexpr int kAppenders = 3;
  constexpr int64_t kRowsEach = 40;
  std::vector<std::thread> threads;
  for (int k = 0; k < kAppenders; ++k) {
    threads.emplace_back([&service, k] {
      const auto rows = AppenderRows(k, kRowsEach, 3);
      for (const auto& row : rows) {
        std::vector<std::vector<std::string>> one{row};
        PCBL_CHECK(service.AppendStrings(one).ok());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_EQ(service.engine().total_rows(),
            base.num_rows() + kAppenders * kRowsEach);

  // The grown engine's PC sets equal a fresh engine's over the rebuilt
  // extended table — compaction and interning were invisible.
  std::vector<std::vector<std::string>> all = base_rows;
  const auto appended = DecodeAppendedRows(service, base);
  all.insert(all.end(), appended.begin(), appended.end());
  const Table rebuilt = BuildTable(names, all);
  CountingEngine reference(rebuilt);
  for (const AttrMask& mask :
       {AttrMask::FromIndices({0}), AttrMask::FromIndices({0, 1}),
        AttrMask::FromIndices({0, 1, 2})}) {
    auto got = service.engine().PatternCounts(mask);
    auto want = reference.PatternCounts(mask);
    testing::ExpectSameGroupCounts(*got, *want,
                                   StrCat("mask ", mask.bits()));
  }
  // Every interned code round-trips through the shared interner.
  for (int a = 0; a < kAttrs; ++a) {
    EXPECT_EQ(service.interner().NextCode(a),
              service.engine().EffectiveDomainSize(a));
  }
}

// A ticket that fails mid-batch — fault-injected or schema-mismatched —
// must leave no trace: no rows, no interned values, no VC/P_A drift;
// sibling tickets in the same group commit land untouched.
TEST(MultiAppenderTest, FailedTicketIsTransactional) {
  const int kAttrs = 3;
  const std::vector<std::string> names = AttributeNames(kAttrs);
  std::vector<std::vector<std::string>> base_rows = BaseRows(80, kAttrs);
  DatasetOptions options;
  options.private_service = true;
  auto dataset = Dataset::FromTable(BuildTable(names, base_rows), options);
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  CountingService& service = *dataset->service();

  // Fault hook: refuse exactly the 5-row ticket, after its rows were
  // staged in the interner — the rollback must unpublish them.
  constexpr int64_t kPoisonRows = 5;
  service.SetAppendFaultHookForTest([](int64_t rows) {
    return rows == kPoisonRows
               ? InternalError("injected append fault")
               : Status::Ok();
  });

  auto session = Session::Open(*dataset);
  ASSERT_TRUE(session.ok()) << session.status();

  std::vector<std::vector<std::string>> poison;
  for (int64_t r = 0; r < kPoisonRows; ++r) {
    poison.push_back(std::vector<std::string>(
        static_cast<size_t>(kAttrs), StrCat("poison-", r)));
  }
  const Status faulted = (*session)->AppendRows(poison);
  EXPECT_EQ(faulted.code(), StatusCode::kInternal) << faulted;
  EXPECT_EQ((*session)->total_rows(), dataset->table().num_rows());
  // Nothing of the failed ticket was interned.
  EXPECT_TRUE(IsNull(service.interner().Lookup(0, "poison-0")));
  EXPECT_EQ(service.append_stats().failed_requests, 1);
  EXPECT_EQ(service.append_stats().committed_rows, 0);

  // A schema-mismatched row mid-ticket fails the whole ticket too.
  std::vector<std::vector<std::string>> ragged;
  ragged.push_back({"x", "y", "z"});
  ragged.push_back({"short-row"});  // width 1, schema has 3
  const Status mismatched = (*session)->AppendRows(ragged);
  EXPECT_EQ(mismatched.code(), StatusCode::kInvalidArgument)
      << mismatched;
  EXPECT_EQ((*session)->total_rows(), dataset->table().num_rows());
  EXPECT_TRUE(IsNull(service.interner().Lookup(0, "x")));

  service.SetAppendFaultHookForTest(nullptr);

  // After the failures, appends (reusing the once-rolled-back values)
  // succeed and the session still matches a from-scratch rebuild.
  ASSERT_TRUE((*session)->AppendRows(poison).ok());
  ASSERT_TRUE((*session)->AppendRow(ragged[0]).ok());
  ExpectMatchesRebuild(**session, *dataset, names, base_rows,
                       "after rollback");
}

// Transactionality under concurrency: a faulted ticket and healthy
// sibling tickets merged into the same group commit — the siblings
// land, the faulted one vanishes, and the result equals a rebuild over
// exactly the healthy rows.
TEST(MultiAppenderTest, FaultedTicketInMergedBatchSparesSiblings) {
  const int kAttrs = 3;
  const std::vector<std::string> names = AttributeNames(kAttrs);
  std::vector<std::vector<std::string>> base_rows = BaseRows(60, kAttrs);
  const Table base = BuildTable(names, base_rows);
  CountingService service(base);
  constexpr int64_t kPoisonRows = 7;
  service.SetAppendFaultHookForTest([](int64_t rows) {
    return rows == kPoisonRows
               ? InternalError("injected append fault")
               : Status::Ok();
  });

  std::vector<std::thread> threads;
  std::atomic<int> injected_failures{0};
  {
    CountingService::QueryAdmission admission(service);
    // One poisoned ticket (7 rows), two healthy ones (4 rows each),
    // all parked into the same merge window.
    threads.emplace_back([&] {
      std::vector<std::vector<std::string>> rows;
      for (int64_t r = 0; r < kPoisonRows; ++r) {
        rows.push_back(std::vector<std::string>(
            static_cast<size_t>(kAttrs), StrCat("bad-", r)));
      }
      if (service.AppendStrings(rows).code() == StatusCode::kInternal) {
        injected_failures.fetch_add(1);
      }
    });
    for (int k = 0; k < 2; ++k) {
      threads.emplace_back([&service, k] {
        PCBL_CHECK(service.AppendStrings(AppenderRows(k, 4, 3)).ok());
      });
    }
    while (service.append_stats().pending < 3) std::this_thread::yield();
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(injected_failures.load(), 1);
  const AppendBatchStats stats = service.append_stats();
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.failed_requests, 1);
  EXPECT_EQ(stats.committed_rows, 8);
  EXPECT_EQ(service.engine().total_rows(), base.num_rows() + 8);
  EXPECT_TRUE(IsNull(service.interner().Lookup(0, "bad-0")));

  // The committed state equals a rebuild over the healthy rows only.
  std::vector<std::vector<std::string>> all = base_rows;
  const auto appended = DecodeAppendedRows(service, base);
  all.insert(all.end(), appended.begin(), appended.end());
  const Table rebuilt = BuildTable(names, all);
  CountingEngine reference(rebuilt);
  auto got = service.engine().PatternCounts(AttrMask::FromIndices({0, 1}));
  auto want = reference.PatternCounts(AttrMask::FromIndices({0, 1}));
  testing::ExpectSameGroupCounts(*got, *want, "post-fault PC set");
}

}  // namespace
}  // namespace pcbl
