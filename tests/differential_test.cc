// Randomized differential tests over small tables: the two search
// algorithms, the two error-scan modes, and the estimation invariants the
// paper's definitions imply must agree with each other (and with brute
// force) on arbitrary data, not just the curated workloads.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/label.h"
#include "core/search.h"
#include "pattern/counter.h"
#include "pattern/full_pattern_index.h"
#include "pattern/pattern.h"
#include "util/rng.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

// A random categorical table: 3-6 attributes, domains of 2-5 values,
// mildly correlated (attribute i copies attribute 0 with probability
// correlated/100), optional NULL sprinkle.
Table RandomTable(uint64_t seed, bool with_nulls) {
  Rng rng(seed);
  const int attrs = 3 + static_cast<int>(rng.UniformInt(4));
  const int64_t rows = 50 + static_cast<int64_t>(rng.UniformInt(450));
  std::vector<std::string> names;
  for (int a = 0; a < attrs; ++a) names.push_back("a" + std::to_string(a));
  auto b = TableBuilder::Create(names);
  PCBL_CHECK(b.ok());
  std::vector<ValueId> domains(static_cast<size_t>(attrs));
  for (int a = 0; a < attrs; ++a) {
    domains[static_cast<size_t>(a)] = 2 + rng.UniformInt(4);
    for (ValueId v = 0; v < domains[static_cast<size_t>(a)]; ++v) {
      b->InternValue(a, "v" + std::to_string(v));
    }
  }
  const uint32_t correlated = rng.UniformInt(70);
  std::vector<ValueId> codes(static_cast<size_t>(attrs));
  for (int64_t r = 0; r < rows; ++r) {
    for (int a = 0; a < attrs; ++a) {
      const ValueId dom = domains[static_cast<size_t>(a)];
      ValueId v = rng.UniformInt(dom);
      if (a > 0 && rng.UniformInt(100) < correlated) {
        v = std::min<ValueId>(codes[0], dom - 1);
      }
      if (with_nulls && rng.UniformInt(20) == 0) v = kNullValue;
      codes[static_cast<size_t>(a)] = v;
    }
    PCBL_CHECK(b->AddRowCodes(codes).ok());
  }
  return b->Build();
}

class DifferentialTest : public testing::TestWithParam<uint64_t> {};

// The naive algorithm enumerates every within-bound subset; the top-down
// heuristic must discover exactly the same within-bound set (it prunes
// only the *candidate list*, not the exploration of fitting subsets).
TEST_P(DifferentialTest, WithinBoundSubsetCountsAgree) {
  for (bool with_nulls : {false, true}) {
    Table t = RandomTable(GetParam(), with_nulls);
    LabelSearch search(t);
    for (int64_t bound : {5, 20, 80}) {
      SearchOptions options;
      options.size_bound = bound;
      SearchResult naive = search.Naive(options);
      SearchResult top_down = search.TopDown(options);
      EXPECT_EQ(naive.stats.within_bound, top_down.stats.within_bound)
          << "bound=" << bound << " nulls=" << with_nulls;
      EXPECT_LE(top_down.stats.subsets_examined,
                naive.stats.subsets_examined);
    }
  }
}

// The naive algorithm ranks a superset of the heuristic's candidates, so
// its optimum can only be at least as good; and both must return labels
// within the bound.
TEST_P(DifferentialTest, NaiveNeverWorseThanTopDown) {
  Table t = RandomTable(GetParam() ^ 0xabcdef, false);
  LabelSearch search(t);
  for (int64_t bound : {5, 20, 80}) {
    SearchOptions options;
    options.size_bound = bound;
    SearchResult naive = search.Naive(options);
    SearchResult top_down = search.TopDown(options);
    EXPECT_LE(naive.error.max_abs, top_down.error.max_abs + 1e-9)
        << "bound=" << bound;
    EXPECT_LE(naive.label.size(), bound);
    EXPECT_LE(top_down.label.size(), bound);
  }
}

// Definition 2.11 degenerates to an exact count whenever Attr(p) ⊆ S
// (Sec. III-A) — on NULL-free data, for every stored pattern.
TEST_P(DifferentialTest, ExactWhenPatternInsideS) {
  Table t = RandomTable(GetParam() ^ 0x5a5a5a, false);
  Rng rng(GetParam());
  const int n = t.num_attributes();
  for (int trial = 0; trial < 5; ++trial) {
    // Random S of size 2..n.
    std::vector<int> idx;
    for (int a = 0; a < n; ++a) {
      if (rng.UniformInt(2) == 0 || static_cast<int>(idx.size()) + n - a <= 2) {
        idx.push_back(a);
      }
    }
    if (idx.size() < 2) idx = {0, 1};
    AttrMask s = AttrMask::FromIndices(idx);
    Label label = Label::Build(t, s);
    // Every stored PC pattern must estimate exactly.
    const GroupCounts& pc = label.pattern_counts();
    for (int64_t g = 0; g < pc.num_groups(); ++g) {
      Pattern p = pc.ToPattern(g);
      EXPECT_DOUBLE_EQ(label.EstimateCount(p),
                       static_cast<double>(CountMatches(t, p)))
          << p.ToString(t);
    }
  }
}

// Restricting to sub-patterns of S: the containment sum must equal the
// true marginal count on NULL-free data.
TEST_P(DifferentialTest, MarginalCountsMatchBruteForce) {
  Table t = RandomTable(GetParam() ^ 0x123456, false);
  AttrMask s = AttrMask::FromIndices({0, 1, 2});
  Label label = Label::Build(t, s);
  Rng rng(GetParam() + 17);
  for (int trial = 0; trial < 20; ++trial) {
    // A random 1- or 2-term pattern inside S.
    std::vector<PatternTerm> terms;
    const int k = 1 + static_cast<int>(rng.UniformInt(2));
    std::vector<int> attrs = {0, 1, 2};
    for (int j = 0; j < k; ++j) {
      const size_t pick = rng.UniformInt(static_cast<uint32_t>(attrs.size()));
      const int attr = attrs[pick];
      attrs.erase(attrs.begin() + static_cast<int64_t>(pick));
      terms.push_back(
          {attr, rng.UniformInt(t.DomainSize(attr))});
    }
    auto p = Pattern::Create(terms);
    ASSERT_TRUE(p.ok());
    EXPECT_DOUBLE_EQ(label.EstimateCount(*p),
                     static_cast<double>(CountMatches(t, *p)))
        << p->ToString(t);
  }
}

// The early-terminated max-error scan reports a max over a prefix, so it
// can never exceed the exact max.
TEST_P(DifferentialTest, EarlyTerminationNeverExceedsExact) {
  Table t = RandomTable(GetParam() ^ 0x777, true);
  FullPatternIndex index = FullPatternIndex::Build(t);
  for (uint64_t mask_bits : {0b011ULL, 0b110ULL, 0b111ULL}) {
    Label label = Label::Build(t, AttrMask(mask_bits));
    LabelEstimator est(label);
    ErrorReport exact =
        EvaluateOverFullPatterns(index, est, ErrorMode::kExact);
    ErrorReport early =
        EvaluateOverFullPatterns(index, est, ErrorMode::kEarlyTermination);
    EXPECT_LE(early.max_abs, exact.max_abs + 1e-9);
    EXPECT_LE(early.evaluated, exact.evaluated);
  }
}

// |P_S| is monotone under subset inclusion — the property both search
// algorithms' termination arguments rely on.
TEST_P(DifferentialTest, LabelSizeMonotoneUnderInclusion) {
  Table t = RandomTable(GetParam() ^ 0xbeef, true);
  const int n = t.num_attributes();
  Rng rng(GetParam() + 3);
  for (int trial = 0; trial < 10; ++trial) {
    const uint64_t all = AttrMask::All(n).bits();
    const AttrMask big(rng.UniformInt(static_cast<uint32_t>(all)) | 3ULL);
    AttrMask small = big;
    small.Clear(big.MaxIndex());
    EXPECT_LE(CountDistinctPatterns(t, small),
              CountDistinctPatterns(t, big))
        << small.ToString() << " vs " << big.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace pcbl
