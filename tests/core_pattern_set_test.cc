// Tests for PatternSet (Definition 2.15's user-chosen P), q-error-based
// optimization, and searches over custom pattern sets.
#include "core/pattern_set.h"

#include <gtest/gtest.h>

#include "core/search.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

TEST(PatternSetTest, FromPatternsComputesCountsAndSorts) {
  Table t = workload::MakeFig2Demo();
  auto p1 = Pattern::Parse(t, {{"gender", "Female"}});              // 9
  auto p2 = Pattern::Parse(t, {{"age group", "20-39"}});            // 12
  auto p3 = Pattern::Parse(t, {{"gender", "Male"},
                               {"race", "Hispanic"}});              // 3
  ASSERT_TRUE(p1.ok() && p2.ok() && p3.ok());
  PatternSet set = PatternSet::FromPatterns(t, {*p1, *p2, *p3});
  ASSERT_EQ(set.size(), 3);
  EXPECT_EQ(set.count(0), 12);
  EXPECT_EQ(set.count(1), 9);
  EXPECT_EQ(set.count(2), 3);
  // Counts descend.
  for (int64_t i = 1; i < set.size(); ++i) {
    EXPECT_GE(set.count(i - 1), set.count(i));
  }
}

TEST(PatternSetTest, FromPatternsAndCountsValidates) {
  Table t = workload::MakeFig2Demo();
  auto p = Pattern::Parse(t, {{"gender", "Female"}});
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(
      PatternSet::FromPatternsAndCounts({*p}, {1, 2}).ok());
  auto set = PatternSet::FromPatternsAndCounts({*p}, {9});
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->count(0), 9);
}

TEST(PatternSetTest, OverAttributesMatchesGroupCounts) {
  Table t = workload::MakeFig2Demo();
  AttrMask sensitive = AttrMask::FromIndices({0, 2});  // gender, race
  PatternSet set = PatternSet::OverAttributes(t, sensitive);
  EXPECT_EQ(set.size(), 6);  // every gender x race combo appears
  int64_t total = 0;
  for (int64_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(set.pattern(i).attributes(), sensitive);
    EXPECT_EQ(CountMatches(t, set.pattern(i)), set.count(i));
    total += set.count(i);
  }
  EXPECT_EQ(total, t.num_rows());
}

TEST(PatternSetEvaluateTest, ExactForCoveringLabel) {
  Table t = workload::MakeFig2Demo();
  AttrMask sensitive = AttrMask::FromIndices({0, 2});
  PatternSet set = PatternSet::OverAttributes(t, sensitive);
  LabelEstimator est(Label::Build(t, sensitive));
  ErrorReport r = EvaluateOverPatternSet(set, est, ErrorMode::kExact);
  EXPECT_DOUBLE_EQ(r.max_abs, 0.0);
  EXPECT_EQ(r.evaluated, set.size());
}

TEST(PatternSetEvaluateTest, EarlyTerminationStopsOnDescendingCounts) {
  Table t = workload::MakeCompas(5000, 3).value();
  PatternSet set = PatternSet::OverAttributes(
      t, AttrMask::FromIndices({0, 1, 2, 3}));
  // A weak label: VC only.
  LabelEstimator est(Label::Build(t, AttrMask()));
  ErrorReport exact = EvaluateOverPatternSet(set, est, ErrorMode::kExact);
  ErrorReport early =
      EvaluateOverPatternSet(set, est, ErrorMode::kEarlyTermination);
  EXPECT_LE(early.evaluated, exact.evaluated);
  EXPECT_NEAR(early.max_abs, exact.max_abs, 1e-9);
}

TEST(SearchWithPatternSetTest, SensitiveAttributesOnly) {
  // Search against P = patterns over the sensitive demographics only; the
  // optimal label then concentrates budget there, reaching error 0 with a
  // label that covers the sensitive set.
  Table t = workload::MakeCompas(5000, 3).value();
  AttrMask sensitive = AttrMask::FromIndices({0, 1, 2});
  auto set = std::make_shared<const PatternSet>(
      PatternSet::OverAttributes(t, sensitive));
  LabelSearch search(t);
  search.SetEvaluationPatterns(set);
  SearchOptions options;
  options.size_bound = 100;
  SearchResult result = search.TopDown(options);
  // A bound of 100 admits the label over the sensitive set itself
  // (|gender x age x race| <= 32), so the error must be 0.
  EXPECT_DOUBLE_EQ(result.error.max_abs, 0.0);
  EXPECT_TRUE(sensitive.IsSubsetOf(result.best_attrs))
      << result.best_attrs.ToString();
}

TEST(MetricTest, MetricValueExtraction) {
  ErrorReport r;
  r.max_abs = 10;
  r.mean_abs = 2;
  r.max_q = 5;
  r.mean_q = 1.5;
  EXPECT_DOUBLE_EQ(MetricValue(r, OptimizationMetric::kMaxAbsolute), 10);
  EXPECT_DOUBLE_EQ(MetricValue(r, OptimizationMetric::kMeanAbsolute), 2);
  EXPECT_DOUBLE_EQ(MetricValue(r, OptimizationMetric::kMaxQError), 5);
  EXPECT_DOUBLE_EQ(MetricValue(r, OptimizationMetric::kMeanQError), 1.5);
  EXPECT_STREQ(MetricName(OptimizationMetric::kMaxQError), "max-q");
}

TEST(MetricTest, QErrorSearchRanksByQ) {
  Table t = workload::MakeCompas(4000, 5).value();
  LabelSearch search(t);
  SearchOptions options;
  options.size_bound = 50;
  options.metric = OptimizationMetric::kMeanQError;
  SearchResult by_q = search.TopDown(options);
  options.metric = OptimizationMetric::kMaxAbsolute;
  SearchResult by_abs = search.TopDown(options);
  // The q-optimal label's mean q-error is <= the abs-optimal label's.
  EXPECT_LE(by_q.error.mean_q, by_abs.error.mean_q + 1e-9);
  // And vice versa for max absolute error.
  EXPECT_LE(by_abs.error.max_abs, by_q.error.max_abs + 1e-9);
}

TEST(MetricTest, NonAbsMetricForcesExactCandidateScan) {
  Table t = workload::MakeFig2Demo();
  LabelSearch search(t);
  SearchOptions options;
  options.size_bound = 5;
  options.metric = OptimizationMetric::kMeanQError;
  options.candidate_error_mode = ErrorMode::kEarlyTermination;
  SearchResult r = search.TopDown(options);
  // The search must still be deterministic and exact.
  EXPECT_FALSE(r.error.early_terminated);
  EXPECT_LE(r.label.size(), 5);
}

}  // namespace
}  // namespace pcbl
