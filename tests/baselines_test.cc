// Tests for the Sample / Postgres / Independence baselines (Sec. IV-B).
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/independence.h"
#include "baselines/postgres.h"
#include "baselines/sampling.h"
#include "core/error.h"
#include "pattern/full_pattern_index.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

TEST(SamplingTest, FullSampleIsExact) {
  Table t = workload::MakeFig2Demo();
  SamplingEstimator s =
      SamplingEstimator::Build(t, t.num_rows(), /*seed=*/1);
  EXPECT_EQ(s.sample_rows(), t.num_rows());
  FullPatternIndex idx = FullPatternIndex::Build(t);
  for (int64_t i = 0; i < idx.num_patterns(); ++i) {
    EXPECT_DOUBLE_EQ(s.EstimateFullPattern(idx.codes(i), idx.width()),
                     static_cast<double>(idx.count(i)));
  }
  auto p = Pattern::Parse(t, {{"gender", "Female"}});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(s.EstimateCount(*p), 9.0);
}

TEST(SamplingTest, ScaleFactorApplied) {
  Table t = workload::MakeCompas(10000, 5).value();
  SamplingEstimator s = SamplingEstimator::Build(t, 100, /*seed=*/2);
  EXPECT_EQ(s.sample_rows(), 100);
  auto p = Pattern::Parse(t, {{"Gender", "Male"}});
  ASSERT_TRUE(p.ok());
  double est = s.EstimateCount(*p);
  // Estimates are multiples of |D|/|S| = 100.
  EXPECT_NEAR(std::fmod(est, 100.0), 0.0, 1e-9);
  // Roughly 78% of 10000.
  EXPECT_NEAR(est, 7800.0, 1500.0);
}

TEST(SamplingTest, UnsampledPatternEstimatesZero) {
  Table t = workload::MakeCompas(5000, 5).value();
  SamplingEstimator s = SamplingEstimator::Build(t, 50, /*seed=*/3);
  FullPatternIndex idx = FullPatternIndex::Build(t);
  // The rarest full pattern is almost surely not in a 1% sample.
  double est = s.EstimateFullPattern(idx.codes(idx.num_patterns() - 1),
                                     idx.width());
  EXPECT_TRUE(est == 0.0 || est >= 100.0);  // either missed or scaled up
}

TEST(SamplingTest, FullAndGeneralPathsAgree) {
  Table t = workload::MakeBlueNile(3000, 5).value();
  SamplingEstimator s = SamplingEstimator::Build(t, 300, /*seed=*/4);
  FullPatternIndex idx = FullPatternIndex::Build(t);
  int64_t limit = std::min<int64_t>(idx.num_patterns(), 100);
  for (int64_t i = 0; i < limit; ++i) {
    Pattern p = idx.ToPattern(i);
    EXPECT_DOUBLE_EQ(s.EstimateFullPattern(idx.codes(i), idx.width()),
                     s.EstimateCount(p));
  }
}

TEST(SamplingTest, DeterministicPerSeed) {
  Table t = workload::MakeCompas(3000, 5).value();
  SamplingEstimator a = SamplingEstimator::Build(t, 100, 7);
  SamplingEstimator b = SamplingEstimator::Build(t, 100, 7);
  SamplingEstimator c = SamplingEstimator::Build(t, 100, 8);
  auto p = Pattern::Parse(t, {{"Race", "Hispanic"}});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(a.EstimateCount(*p), b.EstimateCount(*p));
  // Different seeds usually differ (not guaranteed, but true here).
  EXPECT_EQ(a.FootprintEntries(), c.FootprintEntries());
}

TEST(SamplingTest, OversizedRequestClamps) {
  Table t = workload::MakeFig2Demo();
  SamplingEstimator s = SamplingEstimator::Build(t, 100000, 1);
  EXPECT_EQ(s.sample_rows(), t.num_rows());
}

TEST(PostgresTest, ExactStatsGiveIndependenceTimesN) {
  // With full-table ANALYZE and stats_target >= |Dom|, the Postgres
  // estimate of a single-attribute pattern is exact.
  Table t = workload::MakeFig2Demo();
  PostgresEstimator pg = PostgresEstimator::Build(t);
  auto p = Pattern::Parse(t, {{"gender", "Female"}});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(pg.EstimateCount(*p), 9.0);
  // Multi-attribute: product of selectivities (9/18 * 12/18 * 18).
  auto p2 = Pattern::Parse(t, {{"gender", "Female"},
                               {"age group", "20-39"}});
  ASSERT_TRUE(p2.ok());
  EXPECT_DOUBLE_EQ(pg.EstimateCount(*p2), 18.0 * 0.5 * (12.0 / 18.0));
}

TEST(PostgresTest, ClampsToOneRow) {
  Table t = workload::MakeCompas(5000, 5).value();
  PostgresEstimator pg = PostgresEstimator::Build(t);
  // A very selective conjunction still estimates >= 1 row (planner rule).
  auto p = Pattern::Parse(t, {{"Gender", "Female"},
                              {"AgeGroup", "under 20"},
                              {"MaritalStatus", "Widowed"},
                              {"Language", "Spanish"}});
  if (p.ok()) {
    EXPECT_GE(pg.EstimateCount(*p), 1.0);
  }
}

TEST(PostgresTest, McvListCapped) {
  // stats_target = 2 keeps only the two most common values per column;
  // the rest share the residual mass.
  Table t = workload::MakeFig2Demo();
  PostgresOptions opts;
  opts.stats_target = 2;
  PostgresEstimator pg = PostgresEstimator::Build(t, opts);
  // marital status has 3 values with 6 each: two MCVs at 1/3, residual
  // 1/3 spread over 1 remaining value.
  int attr = t.schema().FindAttribute("marital status").value();
  double total_sel = 0;
  for (ValueId v = 0; v < t.DomainSize(attr); ++v) {
    total_sel += pg.Selectivity(attr, v);
  }
  EXPECT_NEAR(total_sel, 1.0, 1e-9);
  EXPECT_EQ(pg.FootprintEntries(), 2 * t.num_attributes());
}

TEST(PostgresTest, AnalyzeSampleApproximates) {
  Table t = workload::MakeCompas(20000, 5).value();
  PostgresOptions opts;
  opts.analyze_sample_rows = 3000;
  PostgresEstimator pg = PostgresEstimator::Build(t, opts);
  auto p = Pattern::Parse(t, {{"Gender", "Male"}});
  ASSERT_TRUE(p.ok());
  // Sampled frequency close to the true 78%.
  EXPECT_NEAR(pg.EstimateCount(*p) / 20000.0, 0.78, 0.05);
}

TEST(PostgresTest, NullFracExcludedFromValueSelectivity) {
  auto b = TableBuilder::Create({"x"});
  ASSERT_TRUE(b.ok());
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(b->AddRow({"v"}).ok());
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(b->AddRow({""}).ok());
  Table t = b->Build();
  PostgresEstimator pg = PostgresEstimator::Build(t);
  auto p = Pattern::Parse(t, {{"x", "v"}});
  ASSERT_TRUE(p.ok());
  // freq(v) = 0.5 of all rows -> estimate 50.
  EXPECT_DOUBLE_EQ(pg.EstimateCount(*p), 50.0);
}

TEST(IndependenceTest, MatchesEmptyLabel) {
  Table t = workload::MakeCompas(2000, 5).value();
  IndependenceEstimator ind = IndependenceEstimator::Build(t);
  Label l = Label::Build(t, AttrMask());
  FullPatternIndex idx = FullPatternIndex::Build(t);
  for (int64_t i = 0; i < std::min<int64_t>(idx.num_patterns(), 100); ++i) {
    EXPECT_DOUBLE_EQ(ind.EstimateFullPattern(idx.codes(i), idx.width()),
                     l.EstimateFullPattern(idx.codes(i), idx.width()));
  }
  EXPECT_EQ(ind.FootprintEntries(), l.value_counts().TotalEntries());
}

TEST(IndependenceTest, SingleAttributeIsExact) {
  Table t = workload::MakeFig2Demo();
  IndependenceEstimator ind = IndependenceEstimator::Build(t);
  auto p = Pattern::Parse(t, {{"race", "Hispanic"}});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(ind.EstimateCount(*p), 6.0);
}

TEST(BaselineComparisonTest, LabelBeatsIndependenceOnCorrelatedData) {
  // On the correlated COMPAS score clique, a label over the clique must
  // dominate the independence estimate (this is the paper's whole point).
  Table t = workload::MakeCompas(20000, 5).value();
  FullPatternIndex idx = FullPatternIndex::Build(t);
  Label l = Label::Build(t, AttrMask::FromIndices({12, 13, 14}));
  LabelEstimator label_est(l);
  IndependenceEstimator ind = IndependenceEstimator::Build(t);
  ErrorReport label_err =
      EvaluateOverFullPatterns(idx, label_est, ErrorMode::kExact);
  ErrorReport ind_err =
      EvaluateOverFullPatterns(idx, ind, ErrorMode::kExact);
  EXPECT_LT(label_err.max_abs, ind_err.max_abs);
  EXPECT_LT(label_err.mean_abs, ind_err.mean_abs);
}

}  // namespace
}  // namespace pcbl
