// Tests for the canonical query keys of the result tier (DESIGN.md §5.7):
//
//  * canonicalization — attribute sets key order-insensitively, defaults
//    left implicit key identically to the same values spelled out, and
//    knobs that cannot change result bytes (threads, engine flags,
//    scheduler, the result-cache flags themselves, a true count's
//    consumer-side label) are excluded from the key;
//  * stability — a golden-constant key pins the hash construction, so a
//    process cannot disagree with another (or with its past self) about
//    which results are "the same query";
//  * sensitivity — every result-affecting field moves the key, and so
//    does the table fingerprint;
//  * cacheability — wall-clock-limited searches are excluded from the
//    tier;
//  * validation — the result-cache spec fields go through the central
//    ValidateQuerySpec / Session::Open checks like every other knob.
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/dataset.h"
#include "api/query.h"
#include "api/session.h"
#include "pattern/service_registry.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

using api::CanonicalQueryKey;
using api::Dataset;
using api::DatasetOptions;
using api::QuerySpec;
using api::QuerySpecCacheable;
using api::Session;
using api::SessionOptions;
using api::ValidateQuerySpec;

const TableFingerprint kFingerprint{0x0123456789abcdefULL,
                                    0xfedcba9876543210ULL};

TEST(QueryKeyTest, TrueCountTermOrderDoesNotMoveTheKey) {
  QuerySpec forward = QuerySpec::TrueCount(
      {{"race", "Hispanic"}, {"gender", "Female"}, {"age", "25"}});
  QuerySpec backward = QuerySpec::TrueCount(
      {{"age", "25"}, {"gender", "Female"}, {"race", "Hispanic"}});
  EXPECT_EQ(CanonicalQueryKey(forward, kFingerprint),
            CanonicalQueryKey(backward, kFingerprint));
}

TEST(QueryKeyTest, DefaultsLeftImplicitKeyLikeDefaultsSpelledOut) {
  const QuerySpec implicit = QuerySpec::LabelSearch(100);

  QuerySpec explicit_spec = QuerySpec::LabelSearch(100);
  explicit_spec.algorithm = QuerySpec::Algorithm::kTopDown;
  explicit_spec.metric = OptimizationMetric::kMaxAbsolute;
  explicit_spec.time_limit_seconds = 0.0;
  explicit_spec.record_candidates = false;
  EXPECT_EQ(CanonicalQueryKey(implicit, kFingerprint),
            CanonicalQueryKey(explicit_spec, kFingerprint));
}

TEST(QueryKeyTest, ResultNeutralKnobsAreExcludedFromTheKey) {
  const QuerySpec plain = QuerySpec::LabelSearch(80);

  QuerySpec tuned = QuerySpec::LabelSearch(80);
  tuned.num_threads = 7;
  tuned.use_counting_engine = false;
  tuned.counting_cache_budget = 0;
  tuned.use_wave_scheduler = false;
  tuned.use_result_cache = false;
  tuned.result_cache_budget = 12345;
  EXPECT_EQ(CanonicalQueryKey(plain, kFingerprint),
            CanonicalQueryKey(tuned, kFingerprint));

  // A true count's consumer-side label only feeds the per-caller
  // estimate; the data-backed count is label-independent.
  QuerySpec bare = QuerySpec::TrueCount({{"a", "x"}});
  QuerySpec labeled = QuerySpec::TrueCount({{"a", "x"}});
  labeled.label = std::make_shared<const PortableLabel>();
  EXPECT_EQ(CanonicalQueryKey(bare, kFingerprint),
            CanonicalQueryKey(labeled, kFingerprint));
}

// Golden constants: the key of a fixed spec over a fixed fingerprint.
// If this test moves, every previously persisted or cross-process
// assumption about key identity silently breaks — change the constants
// only with the hash construction itself.
TEST(QueryKeyTest, KeyConstructionIsStable) {
  QuerySpec search = QuerySpec::LabelSearch(64);
  search.metric = OptimizationMetric::kMeanQError;
  const QueryResultKey search_key =
      CanonicalQueryKey(search, kFingerprint);
  EXPECT_EQ(search_key.lo, 0x37b8e84f3c3d704bULL);
  EXPECT_EQ(search_key.hi, 0x44fc8cb045a9815aULL);

  const QuerySpec count =
      QuerySpec::TrueCount({{"gender", "Female"}, {"race", "Hispanic"}});
  const QueryResultKey count_key = CanonicalQueryKey(count, kFingerprint);
  EXPECT_EQ(count_key.lo, 0xad2f244bfad61277ULL);
  EXPECT_EQ(count_key.hi, 0x9d137c465361f68dULL);

  const QueryResultKey profile_key =
      CanonicalQueryKey(QuerySpec::Profile(), kFingerprint);
  EXPECT_EQ(profile_key.lo, 0x27877537fc7b1a59ULL);
  EXPECT_EQ(profile_key.hi, 0x85d695f3ba902d9eULL);
}

TEST(QueryKeyTest, ResultAffectingFieldsMoveTheKey) {
  const QuerySpec base = QuerySpec::LabelSearch(100);
  const QueryResultKey base_key = CanonicalQueryKey(base, kFingerprint);

  QuerySpec bound = base;
  bound.size_bound = 101;
  EXPECT_NE(CanonicalQueryKey(bound, kFingerprint), base_key);

  QuerySpec algorithm = base;
  algorithm.algorithm = QuerySpec::Algorithm::kNaive;
  EXPECT_NE(CanonicalQueryKey(algorithm, kFingerprint), base_key);

  QuerySpec metric = base;
  metric.metric = OptimizationMetric::kMaxQError;
  EXPECT_NE(CanonicalQueryKey(metric, kFingerprint), base_key);

  QuerySpec candidates = base;
  candidates.record_candidates = true;
  EXPECT_NE(CanonicalQueryKey(candidates, kFingerprint), base_key);

  QuerySpec focus = base;
  focus.focus.Set(2);
  EXPECT_NE(CanonicalQueryKey(focus, kFingerprint), base_key);

  // Kind separates even when the shared numeric fields agree.
  EXPECT_NE(CanonicalQueryKey(QuerySpec::Profile(), kFingerprint),
            base_key);

  // Different pattern values are different queries.
  EXPECT_NE(
      CanonicalQueryKey(QuerySpec::TrueCount({{"a", "x"}}), kFingerprint),
      CanonicalQueryKey(QuerySpec::TrueCount({{"a", "y"}}), kFingerprint));
  // (name, value) concatenation must not alias across the boundary.
  EXPECT_NE(
      CanonicalQueryKey(QuerySpec::TrueCount({{"ab", "x"}}), kFingerprint),
      CanonicalQueryKey(QuerySpec::TrueCount({{"a", "bx"}}), kFingerprint));

  // And the same spec over different data is a different key.
  const TableFingerprint other{kFingerprint.lo + 1, kFingerprint.hi};
  EXPECT_NE(CanonicalQueryKey(base, other), base_key);
}

TEST(QueryKeyTest, WallClockLimitedSearchesAreNotCacheable) {
  QuerySpec limited = QuerySpec::LabelSearch(100);
  EXPECT_TRUE(QuerySpecCacheable(limited));
  limited.time_limit_seconds = 1.5;
  EXPECT_FALSE(QuerySpecCacheable(limited));
  EXPECT_TRUE(QuerySpecCacheable(QuerySpec::TrueCount({{"a", "x"}})));
  EXPECT_TRUE(QuerySpecCacheable(QuerySpec::Profile()));
}

TEST(QueryKeyTest, ResultCacheSpecFieldsAreValidatedCentrally) {
  QuerySpec negative = QuerySpec::LabelSearch(50);
  negative.result_cache_budget = -1;
  EXPECT_EQ(ValidateQuerySpec(negative).code(),
            StatusCode::kInvalidArgument);

  QuerySpec conflicting = QuerySpec::LabelSearch(50);
  conflicting.use_result_cache = false;
  conflicting.result_cache_budget = 1024;
  EXPECT_EQ(ValidateQuerySpec(conflicting).code(),
            StatusCode::kInvalidArgument);

  QuerySpec fine = QuerySpec::LabelSearch(50);
  fine.use_result_cache = false;
  fine.result_cache_budget = 0;  // dedup-only is not a conflict
  EXPECT_TRUE(ValidateQuerySpec(fine).ok());
}

TEST(QueryKeyTest, SessionOpenValidatesResultCacheOptions) {
  Table table = workload::MakeCompas(200, 91).value();
  DatasetOptions dataset_options;
  dataset_options.private_service = true;
  auto dataset = Dataset::FromTable(table, dataset_options);
  ASSERT_TRUE(dataset.ok());

  SessionOptions negative;
  negative.result_cache_budget = -2;
  EXPECT_EQ(Session::Open(*dataset, negative).status().code(),
            StatusCode::kInvalidArgument);

  SessionOptions conflicting;
  conflicting.use_result_cache = false;
  conflicting.result_cache_budget = 4096;
  EXPECT_EQ(Session::Open(*dataset, conflicting).status().code(),
            StatusCode::kInvalidArgument);

  // The per-query conflict surfaces through Submit's validation even
  // when the session-level options are consistent.
  auto session = Session::Open(*dataset, SessionOptions{});
  ASSERT_TRUE(session.ok());
  QuerySpec conflicting_spec = QuerySpec::LabelSearch(40);
  conflicting_spec.use_result_cache = false;
  conflicting_spec.result_cache_budget = 4096;
  EXPECT_EQ((*session)->Submit(conflicting_spec).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace pcbl
