// Differential tests for the CountingEngine: every answer — exact or
// budgeted, direct-scan or rollup, serial or parallel, under any cache
// budget including 0 — must be byte-identical to the one-shot counters of
// counter.h. Exercised on NULL-heavy and high-cardinality (including
// non-64-bit-encodable) tables.
#include "pattern/counting_engine.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/search.h"
#include "pattern/counter.h"
#include "pattern/lattice.h"
#include "util/rng.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

// A random categorical table with a tunable NULL rate (percent) and
// mild correlation between attribute 0 and the others.
Table RandomTable(uint64_t seed, int null_percent) {
  Rng rng(seed);
  const int attrs = 3 + static_cast<int>(rng.UniformInt(4));
  const int64_t rows = 100 + static_cast<int64_t>(rng.UniformInt(400));
  std::vector<std::string> names;
  for (int a = 0; a < attrs; ++a) names.push_back("a" + std::to_string(a));
  auto b = TableBuilder::Create(names);
  PCBL_CHECK(b.ok());
  std::vector<ValueId> domains(static_cast<size_t>(attrs));
  for (int a = 0; a < attrs; ++a) {
    domains[static_cast<size_t>(a)] = 2 + rng.UniformInt(5);
    for (ValueId v = 0; v < domains[static_cast<size_t>(a)]; ++v) {
      b->InternValue(a, "v" + std::to_string(v));
    }
  }
  const uint32_t correlated = rng.UniformInt(70);
  std::vector<ValueId> codes(static_cast<size_t>(attrs));
  for (int64_t r = 0; r < rows; ++r) {
    for (int a = 0; a < attrs; ++a) {
      const ValueId dom = domains[static_cast<size_t>(a)];
      ValueId v = rng.UniformInt(dom);
      if (a > 0 && rng.UniformInt(100) < correlated) {
        v = std::min<ValueId>(codes[0], dom - 1);
      }
      if (null_percent > 0 &&
          rng.UniformInt(100) < static_cast<uint32_t>(null_percent)) {
        v = kNullValue;
      }
      codes[static_cast<size_t>(a)] = v;
    }
    PCBL_CHECK(b->AddRowCodes(codes).ok());
  }
  return b->Build();
}

// A high-cardinality table whose nullable key space overflows 64 bits
// (4 attributes with 60000-value domains): forces the sort-based
// fallback paths.
Table WideDomainTable(uint64_t seed) {
  Rng rng(seed);
  const int attrs = 4;
  constexpr ValueId kDomain = 60000;
  auto b = TableBuilder::Create({"w0", "w1", "w2", "w3"});
  PCBL_CHECK(b.ok());
  for (int a = 0; a < attrs; ++a) {
    for (ValueId v = 0; v < kDomain; ++v) {
      b->InternValue(a, std::to_string(v));
    }
  }
  std::vector<ValueId> codes(static_cast<size_t>(attrs));
  for (int64_t r = 0; r < 1500; ++r) {
    for (int a = 0; a < attrs; ++a) {
      // Half the rows share a small hot set of values so some groups
      // repeat; the rest are near-unique. A NULL sprinkle keeps the
      // restriction semantics honest.
      ValueId v = rng.UniformInt(2) == 0 ? rng.UniformInt(8)
                                         : rng.UniformInt(kDomain);
      if (rng.UniformInt(25) == 0) v = kNullValue;
      codes[static_cast<size_t>(a)] = v;
    }
    PCBL_CHECK(b->AddRowCodes(codes).ok());
  }
  return b->Build();
}

void ExpectSameGroupCounts(const GroupCounts& got, const GroupCounts& want,
                           AttrMask mask) {
  ASSERT_EQ(got.num_groups(), want.num_groups()) << mask.ToString();
  ASSERT_EQ(got.key_width(), want.key_width()) << mask.ToString();
  EXPECT_EQ(got.attrs(), want.attrs()) << mask.ToString();
  EXPECT_EQ(got.mask(), want.mask()) << mask.ToString();
  for (int64_t g = 0; g < got.num_groups(); ++g) {
    EXPECT_EQ(got.count(g), want.count(g))
        << mask.ToString() << " group " << g;
    for (int j = 0; j < got.key_width(); ++j) {
      EXPECT_EQ(got.key(g)[j], want.key(g)[j])
          << mask.ToString() << " group " << g << " pos " << j;
    }
  }
}

// Every mask of the table, through a fresh engine configured with
// `options`, must agree with the one-shot counters under several budgets.
void CheckAllMasks(const Table& t, const CountingEngineOptions& options,
                   bool prime_with_universe) {
  const AttrMask universe = AttrMask::All(t.num_attributes());
  CountingEngine engine(t, options);
  if (prime_with_universe) {
    ExpectSameGroupCounts(*engine.PatternCounts(universe),
                          ComputePatternCounts(t, universe), universe);
  }
  ForEachSubsetOf(universe, [&](AttrMask s) {
    const int64_t exact = CountDistinctPatterns(t, s);
    EXPECT_EQ(engine.CountPatterns(s), exact) << s.ToString();
    for (int64_t budget : {int64_t{0}, int64_t{3}, exact, exact + 10}) {
      const int64_t got = engine.CountPatterns(s, budget);
      if (exact <= budget) {
        EXPECT_EQ(got, exact) << s.ToString() << " budget " << budget;
      } else {
        EXPECT_GT(got, budget) << s.ToString() << " budget " << budget;
      }
    }
    ExpectSameGroupCounts(*engine.PatternCounts(s),
                          ComputePatternCounts(t, s), s);
    const int64_t combos = CountDistinctCombos(t, s);
    EXPECT_EQ(engine.CountCombos(s), combos) << s.ToString();
    const int64_t combo_budget = combos / 2;
    const int64_t got = engine.CountCombos(s, combo_budget);
    if (combos <= combo_budget) {
      EXPECT_EQ(got, combos) << s.ToString();
    } else {
      EXPECT_GT(got, combo_budget) << s.ToString();
    }
  });
}

class CountingEngineDifferentialTest
    : public testing::TestWithParam<uint64_t> {};

TEST_P(CountingEngineDifferentialTest, MatchesOneShotCountersNullHeavy) {
  Table t = RandomTable(GetParam(), /*null_percent=*/20);
  for (int64_t cache_budget : {int64_t{0}, int64_t{4}, int64_t{1} << 20}) {
    CountingEngineOptions options;
    options.cache_budget = cache_budget;
    CheckAllMasks(t, options, /*prime_with_universe=*/false);
    CheckAllMasks(t, options, /*prime_with_universe=*/true);
  }
}

TEST_P(CountingEngineDifferentialTest, MatchesOneShotCountersNullFree) {
  Table t = RandomTable(GetParam() + 1000, /*null_percent=*/0);
  CountingEngineOptions options;
  CheckAllMasks(t, options, /*prime_with_universe=*/true);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CountingEngineDifferentialTest,
                         testing::Values(1, 2, 3, 4, 5));

TEST(CountingEngineTest, BatchMatchesSerialForAnyThreadCount) {
  Table t = RandomTable(77, /*null_percent=*/10);
  const int n = t.num_attributes();
  std::vector<AttrMask> masks;
  ForEachSubsetOf(AttrMask::All(n), [&](AttrMask s) { masks.push_back(s); });
  std::vector<int64_t> expected;
  for (AttrMask s : masks) {
    expected.push_back(CountDistinctPatterns(t, s, 25));
  }
  for (int threads : {1, 2, 8}) {
    CountingEngineOptions options;
    options.num_threads = threads;
    CountingEngine engine(t, options);
    EXPECT_EQ(engine.CountPatternsBatch(masks, 25), expected)
        << threads << " threads";
  }
}

TEST(CountingEngineTest, RollupPathIsExercisedAndExact) {
  // With the universe's PC set cached, subsets must be answered by group
  // rollup, not table rescans.
  Table t = RandomTable(123, /*null_percent=*/15);
  CountingEngine engine(t);
  engine.PatternCounts(AttrMask::All(t.num_attributes()));
  const int64_t scans_after_prime = engine.stats().direct_scans;
  ForEachSubsetOf(AttrMask::All(t.num_attributes()), [&](AttrMask s) {
    EXPECT_EQ(engine.CountPatterns(s), CountDistinctPatterns(t, s))
        << s.ToString();
  });
  EXPECT_GT(engine.stats().rollups, 0);
  EXPECT_EQ(engine.stats().direct_scans, scans_after_prime)
      << "a subset of the cached universe fell back to a table scan";
}

TEST(CountingEngineTest, ZeroCacheBudgetNeverCaches) {
  Table t = RandomTable(9, /*null_percent=*/10);
  CountingEngineOptions options;
  options.cache_budget = 0;
  CountingEngine engine(t, options);
  const AttrMask universe = AttrMask::All(t.num_attributes());
  engine.PatternCounts(universe);
  EXPECT_EQ(engine.CachedPatternCounts(universe), nullptr);
  EXPECT_EQ(engine.stats().cached_groups, 0);
  ForEachSubsetOf(universe, [&](AttrMask s) {
    EXPECT_EQ(engine.CountPatterns(s), CountDistinctPatterns(t, s));
  });
  EXPECT_EQ(engine.stats().cache_hits, 0);
  EXPECT_EQ(engine.stats().rollups, 0);
}

TEST(CountingEngineTest, EvictionIsDeterministicAndBounded) {
  Table t = RandomTable(42, /*null_percent=*/5);
  CountingEngineOptions options;
  options.cache_budget = 32;  // tiny: forces steady eviction
  CountingEngine a(t, options);
  CountingEngine b(t, options);
  ForEachSubsetOf(AttrMask::All(t.num_attributes()), [&](AttrMask s) {
    EXPECT_EQ(a.CountPatterns(s), b.CountPatterns(s));
    EXPECT_LE(a.stats().cached_groups, options.cache_budget);
  });
  EXPECT_EQ(a.stats().evictions, b.stats().evictions);
  EXPECT_EQ(a.stats().cache_hits, b.stats().cache_hits);
  EXPECT_EQ(a.stats().cached_groups, b.stats().cached_groups);
}

TEST(CountingEngineTest, PinnedAncestorSurvivesEvictionPressure) {
  // A pinned universe must keep serving rollups even when the sweep's
  // own inserts cycle the FIFO cache (the ExistsZeroErrorLabel pattern).
  Table t = RandomTable(55, /*null_percent=*/10);
  const AttrMask universe = AttrMask::All(t.num_attributes());
  CountingEngineOptions options;
  options.cache_budget = 16;  // far smaller than the sweep's footprint
  CountingEngine engine(t, options);
  engine.PinnedPatternCounts(universe);
  EXPECT_EQ(engine.stats().cached_groups, 0);  // pinned: budget-exempt
  const int64_t scans_after_prime = engine.stats().direct_scans;
  ForEachSubsetOf(universe, [&](AttrMask s) {
    EXPECT_EQ(engine.PatternCounts(s)->num_groups(),
              CountDistinctPatterns(t, s))
        << s.ToString();
  });
  EXPECT_NE(engine.CachedPatternCounts(universe), nullptr)
      << "the pinned entry was evicted";
  EXPECT_EQ(engine.stats().direct_scans, scans_after_prime)
      << "a subset lost its rollup ancestor and rescanned the table";
}

TEST(CountingEngineTest, DisabledEngineDelegates) {
  Table t = RandomTable(7, /*null_percent=*/10);
  CountingEngineOptions options;
  options.enabled = false;
  CountingEngine engine(t, options);
  ForEachSubsetOf(AttrMask::All(t.num_attributes()), [&](AttrMask s) {
    EXPECT_EQ(engine.CountPatterns(s), CountDistinctPatterns(t, s));
    EXPECT_EQ(engine.CountCombos(s), CountDistinctCombos(t, s));
    ExpectSameGroupCounts(*engine.PatternCounts(s),
                          ComputePatternCounts(t, s), s);
  });
  EXPECT_EQ(engine.stats().sizings, 0);
}

TEST(CountingEngineTest, WideDomainsUseSortFallbackAndStayExact) {
  Table t = WideDomainTable(2021);
  const AttrMask all = AttrMask::All(4);
  // The nullable key space of all four attributes overflows 64 bits.
  ASSERT_FALSE(DenseKeySpace(t, all).has_value());
  CountingEngine engine(t);
  ForEachSubsetOf(all, [&](AttrMask s) {
    EXPECT_EQ(engine.CountPatterns(s), CountDistinctPatterns(t, s))
        << s.ToString();
    ExpectSameGroupCounts(*engine.PatternCounts(s),
                          ComputePatternCounts(t, s), s);
  });
  // Budgeted sizing on the non-encodable mask takes the sort fallback's
  // early exit and must honour the same contract.
  const int64_t exact = CountDistinctPatterns(t, all);
  for (int64_t budget : {int64_t{0}, int64_t{10}, exact, exact + 5}) {
    const int64_t got = CountDistinctPatterns(t, all, budget);
    if (exact <= budget) {
      EXPECT_EQ(got, exact) << "budget " << budget;
    } else {
      EXPECT_GT(got, budget) << "budget " << budget;
    }
    CountingEngine fresh(t);
    const int64_t via_engine = fresh.CountPatterns(all, budget);
    if (exact <= budget) {
      EXPECT_EQ(via_engine, exact) << "budget " << budget;
    } else {
      EXPECT_GT(via_engine, budget) << "budget " << budget;
    }
  }
}

TEST(CountingEngineTest, SearchResultsIdenticalWithEngineOnAndOff) {
  for (uint64_t seed : {11u, 22u, 33u}) {
    Table t = RandomTable(seed, /*null_percent=*/10);
    LabelSearch search(t);
    SearchOptions on;
    on.size_bound = 40;
    SearchOptions off = on;
    off.use_counting_engine = false;
    SearchOptions on_parallel = on;
    on_parallel.num_threads = 4;
    SearchOptions on_no_cache = on;
    on_no_cache.counting_cache_budget = 0;
    for (auto algo : {&LabelSearch::Naive, &LabelSearch::TopDown}) {
      const SearchResult want = (search.*algo)(off);
      for (const SearchOptions& options :
           {on, on_parallel, on_no_cache}) {
        const SearchResult got = (search.*algo)(options);
        EXPECT_EQ(got.best_attrs, want.best_attrs);
        EXPECT_EQ(got.label.size(), want.label.size());
        EXPECT_DOUBLE_EQ(got.error.max_abs, want.error.max_abs);
        EXPECT_EQ(got.stats.subsets_examined, want.stats.subsets_examined);
        EXPECT_EQ(got.stats.within_bound, want.stats.within_bound);
      }
    }
  }
}

TEST(CountingEngineTest, Fig2DemoAgreesThroughEveryPath) {
  // The paper's Fig. 2 fragment: direct, cached, and rolled-up answers
  // must all equal the one-shot counter for every attribute pair.
  Table t = workload::MakeFig2Demo();
  CountingEngine primed(t);
  primed.PatternCounts(AttrMask::All(t.num_attributes()));
  CountingEngine cold(t);
  ForEachSubsetOfSize(t.num_attributes(), 2, [&](AttrMask s) {
    const int64_t want = CountDistinctPatterns(t, s);
    EXPECT_EQ(cold.CountPatterns(s), want) << s.ToString();
    EXPECT_EQ(cold.CountPatterns(s), want) << s.ToString();  // cache hit
    EXPECT_EQ(primed.CountPatterns(s), want) << s.ToString();  // rollup
  });
}

}  // namespace
}  // namespace pcbl
