// Differential tests for the bit-packed sizing kernels, focused on the
// packed <-> mixed-radix transcoding boundary: domain sizes at exactly
// 2^k - 1 and 2^k (where the per-attribute field width steps), subsets
// whose packed width lands on 63/64/65 bits (63 is the last eligible
// width; 64/65 engage the fallback), and NULL-slot packing. Every
// strategy must produce byte-identical GroupCounts and identical
// (budgeted) distinct counts.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "pattern/counter.h"
#include "pattern/counting_engine.h"
#include "pattern/lattice.h"
#include "pattern/packed_codec.h"
#include "util/rng.h"

namespace pcbl {
namespace {

void ExpectSameGroupCounts(const GroupCounts& got, const GroupCounts& want,
                           AttrMask mask) {
  ASSERT_EQ(got.num_groups(), want.num_groups()) << mask.ToString();
  ASSERT_EQ(got.key_width(), want.key_width()) << mask.ToString();
  EXPECT_EQ(got.attrs(), want.attrs()) << mask.ToString();
  EXPECT_EQ(got.mask(), want.mask()) << mask.ToString();
  for (int64_t g = 0; g < got.num_groups(); ++g) {
    EXPECT_EQ(got.count(g), want.count(g))
        << mask.ToString() << " group " << g;
    for (int j = 0; j < got.key_width(); ++j) {
      EXPECT_EQ(got.key(g)[j], want.key(g)[j])
          << mask.ToString() << " group " << g << " pos " << j;
    }
  }
}

// A table whose attribute domains are exactly `dom_sizes` (pre-interned),
// filled with `rows` random rows at the given NULL percentage.
Table MakeDomainTable(const std::vector<ValueId>& dom_sizes, int64_t rows,
                      int null_percent, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> names;
  for (size_t a = 0; a < dom_sizes.size(); ++a) {
    names.push_back("a" + std::to_string(a));
  }
  auto b = TableBuilder::Create(names);
  PCBL_CHECK(b.ok());
  for (size_t a = 0; a < dom_sizes.size(); ++a) {
    for (ValueId v = 0; v < dom_sizes[a]; ++v) {
      b->InternValue(static_cast<int>(a), "v" + std::to_string(v));
    }
  }
  std::vector<ValueId> codes(dom_sizes.size());
  for (int64_t r = 0; r < rows; ++r) {
    for (size_t a = 0; a < dom_sizes.size(); ++a) {
      // Skew low so groups repeat.
      ValueId v = rng.UniformInt(dom_sizes[a]);
      if (rng.UniformInt(2) == 0) v = rng.UniformInt(1 + dom_sizes[a] / 8);
      if (null_percent > 0 &&
          rng.UniformInt(100) < static_cast<uint32_t>(null_percent)) {
        v = kNullValue;
      }
      codes[a] = v;
    }
    PCBL_CHECK(b->AddRowCodes(codes).ok());
  }
  return b->Build();
}

// Checks that every forced strategy agrees with every other on all
// subsets of `t`, for both the PC sets and the budgeted sizes.
void CheckStrategiesAgree(const Table& t) {
  const AttrMask universe = AttrMask::All(t.num_attributes());
  ForEachSubsetOf(universe, [&](AttrMask s) {
    if (s.Count() < 2) return;
    const GroupCounts sorted =
        ComputePatternCounts(t, s, RestrictionStrategy::kSort);
    const GroupCounts autod = ComputePatternCounts(t, s);
    ExpectSameGroupCounts(autod, sorted, s);
    if (counting::PackedEligible(t, s)) {
      ExpectSameGroupCounts(
          ComputePatternCounts(t, s, RestrictionStrategy::kPacked), sorted,
          s);
    }
    const int64_t exact =
        CountDistinctPatterns(t, s, -1, RestrictionStrategy::kSort);
    EXPECT_EQ(CountDistinctPatterns(t, s), exact) << s.ToString();
    for (int64_t budget : {int64_t{0}, int64_t{2}, exact - 1, exact,
                           exact + 7}) {
      const int64_t got = CountDistinctPatterns(t, s, budget);
      if (exact <= budget) {
        EXPECT_EQ(got, exact) << s.ToString() << " budget " << budget;
      } else {
        EXPECT_GT(got, budget) << s.ToString() << " budget " << budget;
      }
    }
  });
}

TEST(PackedKernelsTest, PowerOfTwoBoundaryDomains) {
  // |Dom| = 2^k - 1 packs into k bits (the NULL slot is 2^k - 1);
  // |Dom| = 2^k needs k + 1. Both sides of the step, with NULLs.
  for (uint64_t seed : {1u, 2u}) {
    Table t = MakeDomainTable({7, 8, 15, 16, 3}, 400, 20, seed);
    CheckStrategiesAgree(t);
  }
}

TEST(PackedKernelsTest, NullSlotPacking) {
  // NULL-heavy data: the NULL slot |Dom| must round-trip through the
  // packed fields exactly like the mixed-radix codec's last slot.
  Table t = MakeDomainTable({4, 4, 4, 4}, 300, 45, 99);
  CheckStrategiesAgree(t);
}

TEST(PackedKernelsTest, SixtyThreeBitWidthIsEligible) {
  // Nine attributes of 7 bits each (|Dom| = 64 -> slots 0..64): 63 bits,
  // the widest packed-eligible subset.
  std::vector<ValueId> doms(9, 64);
  Table t = MakeDomainTable(doms, 500, 10, 7);
  const AttrMask all = AttrMask::All(9);
  std::vector<int> attrs = all.ToIndices();
  const auto layout = counting::MakePackedLayout(t, attrs);
  ASSERT_TRUE(layout.ok);
  EXPECT_EQ(layout.total_bits, 63);
  ExpectSameGroupCounts(
      ComputePatternCounts(t, all, RestrictionStrategy::kPacked),
      ComputePatternCounts(t, all, RestrictionStrategy::kSort), all);
  EXPECT_EQ(CountDistinctPatterns(t, all, -1, RestrictionStrategy::kPacked),
            CountDistinctPatterns(t, all, -1, RestrictionStrategy::kSort));
}

TEST(PackedKernelsTest, SixtyFourAndSixtyFiveBitWidthsFallBack) {
  // One attribute widened to 8 bits (|Dom| = 128) -> 64 bits; two -> 65.
  for (int wide : {1, 2}) {
    std::vector<ValueId> doms(9, 64);
    for (int i = 0; i < wide; ++i) doms[static_cast<size_t>(i)] = 128;
    Table t = MakeDomainTable(doms, 400, 10, 31 + static_cast<uint64_t>(wide));
    const AttrMask all = AttrMask::All(9);
    std::vector<int> attrs = all.ToIndices();
    const auto layout = counting::MakePackedLayout(t, attrs);
    EXPECT_FALSE(layout.ok);
    EXPECT_EQ(layout.total_bits, 63 + wide);
    EXPECT_FALSE(counting::PackedEligible(t, all));
    // kAuto engages the fallback and still agrees with the sort path.
    ExpectSameGroupCounts(
        ComputePatternCounts(t, all),
        ComputePatternCounts(t, all, RestrictionStrategy::kSort), all);
    EXPECT_EQ(CountDistinctPatterns(t, all),
              CountDistinctPatterns(t, all, -1, RestrictionStrategy::kSort));
    // The engine's direct path crosses the same boundary.
    CountingEngine engine(t);
    EXPECT_EQ(engine.CountPatterns(all),
              CountDistinctPatterns(t, all, -1, RestrictionStrategy::kSort));
  }
}

TEST(PackedKernelsTest, PackedOrderMatchesMixedRadixOrder) {
  // The order-isomorphism claim behind the transcoding: sorting packed
  // codes must yield the exact mixed-radix emission order, including NULL
  // slots and boundary domains.
  Table t = MakeDomainTable({3, 8, 7}, 250, 25, 17);
  const AttrMask all = AttrMask::All(3);
  ExpectSameGroupCounts(
      ComputePatternCounts(t, all, RestrictionStrategy::kPacked),
      ComputePatternCounts(t, all, RestrictionStrategy::kMixedRadix), all);
}

TEST(PackedKernelsTest, WideGenericKernelMatchesSpecializations) {
  // Arity 2 and 3 take the specialized loops, arity >= 4 the tiled
  // generic kernel; all must agree with the reference on the same table,
  // including across tile boundaries (rows > 1024).
  Table t = MakeDomainTable({5, 3, 6, 4, 7, 2}, 3000, 15, 23);
  CheckStrategiesAgree(t);
}

}  // namespace
}  // namespace pcbl
