// Differential tests for the bit-packed sizing kernels, focused on the
// packed <-> mixed-radix transcoding boundary: domain sizes at exactly
// 2^k - 1 and 2^k (where the per-attribute field width steps), subsets
// whose packed width lands on 63/64/65 bits (63 is the last eligible
// width; 64/65 engage the fallback), and NULL-slot packing. Every
// strategy must produce byte-identical GroupCounts and identical
// (budgeted) distinct counts.
#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "pattern/counter.h"
#include "pattern/counting_engine.h"
#include "pattern/kernel_dispatch.h"
#include "pattern/lattice.h"
#include "pattern/packed_codec.h"
#include "pattern/packed_kernels.h"
#include "util/rng.h"

namespace pcbl {
namespace {

void ExpectSameGroupCounts(const GroupCounts& got, const GroupCounts& want,
                           AttrMask mask) {
  ASSERT_EQ(got.num_groups(), want.num_groups()) << mask.ToString();
  ASSERT_EQ(got.key_width(), want.key_width()) << mask.ToString();
  EXPECT_EQ(got.attrs(), want.attrs()) << mask.ToString();
  EXPECT_EQ(got.mask(), want.mask()) << mask.ToString();
  for (int64_t g = 0; g < got.num_groups(); ++g) {
    EXPECT_EQ(got.count(g), want.count(g))
        << mask.ToString() << " group " << g;
    for (int j = 0; j < got.key_width(); ++j) {
      EXPECT_EQ(got.key(g)[j], want.key(g)[j])
          << mask.ToString() << " group " << g << " pos " << j;
    }
  }
}

// A table whose attribute domains are exactly `dom_sizes` (pre-interned),
// filled with `rows` random rows at the given NULL percentage.
Table MakeDomainTable(const std::vector<ValueId>& dom_sizes, int64_t rows,
                      int null_percent, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> names;
  for (size_t a = 0; a < dom_sizes.size(); ++a) {
    names.push_back("a" + std::to_string(a));
  }
  auto b = TableBuilder::Create(names);
  PCBL_CHECK(b.ok());
  for (size_t a = 0; a < dom_sizes.size(); ++a) {
    for (ValueId v = 0; v < dom_sizes[a]; ++v) {
      b->InternValue(static_cast<int>(a), "v" + std::to_string(v));
    }
  }
  std::vector<ValueId> codes(dom_sizes.size());
  for (int64_t r = 0; r < rows; ++r) {
    for (size_t a = 0; a < dom_sizes.size(); ++a) {
      // Skew low so groups repeat.
      ValueId v = rng.UniformInt(dom_sizes[a]);
      if (rng.UniformInt(2) == 0) v = rng.UniformInt(1 + dom_sizes[a] / 8);
      if (null_percent > 0 &&
          rng.UniformInt(100) < static_cast<uint32_t>(null_percent)) {
        v = kNullValue;
      }
      codes[a] = v;
    }
    PCBL_CHECK(b->AddRowCodes(codes).ok());
  }
  return b->Build();
}

// Checks that every forced strategy agrees with every other on all
// subsets of `t`, for both the PC sets and the budgeted sizes.
void CheckStrategiesAgree(const Table& t) {
  const AttrMask universe = AttrMask::All(t.num_attributes());
  ForEachSubsetOf(universe, [&](AttrMask s) {
    if (s.Count() < 2) return;
    const GroupCounts sorted =
        ComputePatternCounts(t, s, RestrictionStrategy::kSort);
    const GroupCounts autod = ComputePatternCounts(t, s);
    ExpectSameGroupCounts(autod, sorted, s);
    if (counting::PackedEligible(t, s)) {
      ExpectSameGroupCounts(
          ComputePatternCounts(t, s, RestrictionStrategy::kPacked), sorted,
          s);
    }
    const int64_t exact =
        CountDistinctPatterns(t, s, -1, RestrictionStrategy::kSort);
    EXPECT_EQ(CountDistinctPatterns(t, s), exact) << s.ToString();
    for (int64_t budget : {int64_t{0}, int64_t{2}, exact - 1, exact,
                           exact + 7}) {
      const int64_t got = CountDistinctPatterns(t, s, budget);
      if (exact <= budget) {
        EXPECT_EQ(got, exact) << s.ToString() << " budget " << budget;
      } else {
        EXPECT_GT(got, budget) << s.ToString() << " budget " << budget;
      }
    }
  });
}

TEST(PackedKernelsTest, PowerOfTwoBoundaryDomains) {
  // |Dom| = 2^k - 1 packs into k bits (the NULL slot is 2^k - 1);
  // |Dom| = 2^k needs k + 1. Both sides of the step, with NULLs.
  for (uint64_t seed : {1u, 2u}) {
    Table t = MakeDomainTable({7, 8, 15, 16, 3}, 400, 20, seed);
    CheckStrategiesAgree(t);
  }
}

TEST(PackedKernelsTest, NullSlotPacking) {
  // NULL-heavy data: the NULL slot |Dom| must round-trip through the
  // packed fields exactly like the mixed-radix codec's last slot.
  Table t = MakeDomainTable({4, 4, 4, 4}, 300, 45, 99);
  CheckStrategiesAgree(t);
}

TEST(PackedKernelsTest, SixtyThreeBitWidthIsEligible) {
  // Nine attributes of 7 bits each (|Dom| = 64 -> slots 0..64): 63 bits,
  // the widest packed-eligible subset.
  std::vector<ValueId> doms(9, 64);
  Table t = MakeDomainTable(doms, 500, 10, 7);
  const AttrMask all = AttrMask::All(9);
  std::vector<int> attrs = all.ToIndices();
  const auto layout = counting::MakePackedLayout(t, attrs);
  ASSERT_TRUE(layout.ok);
  EXPECT_EQ(layout.total_bits, 63);
  ExpectSameGroupCounts(
      ComputePatternCounts(t, all, RestrictionStrategy::kPacked),
      ComputePatternCounts(t, all, RestrictionStrategy::kSort), all);
  EXPECT_EQ(CountDistinctPatterns(t, all, -1, RestrictionStrategy::kPacked),
            CountDistinctPatterns(t, all, -1, RestrictionStrategy::kSort));
}

TEST(PackedKernelsTest, SixtyFourAndSixtyFiveBitWidthsFallBack) {
  // One attribute widened to 8 bits (|Dom| = 128) -> 64 bits; two -> 65.
  for (int wide : {1, 2}) {
    std::vector<ValueId> doms(9, 64);
    for (int i = 0; i < wide; ++i) doms[static_cast<size_t>(i)] = 128;
    Table t = MakeDomainTable(doms, 400, 10, 31 + static_cast<uint64_t>(wide));
    const AttrMask all = AttrMask::All(9);
    std::vector<int> attrs = all.ToIndices();
    const auto layout = counting::MakePackedLayout(t, attrs);
    EXPECT_FALSE(layout.ok);
    EXPECT_EQ(layout.total_bits, 63 + wide);
    EXPECT_FALSE(counting::PackedEligible(t, all));
    // kAuto engages the fallback and still agrees with the sort path.
    ExpectSameGroupCounts(
        ComputePatternCounts(t, all),
        ComputePatternCounts(t, all, RestrictionStrategy::kSort), all);
    EXPECT_EQ(CountDistinctPatterns(t, all),
              CountDistinctPatterns(t, all, -1, RestrictionStrategy::kSort));
    // The engine's direct path crosses the same boundary.
    CountingEngine engine(t);
    EXPECT_EQ(engine.CountPatterns(all),
              CountDistinctPatterns(t, all, -1, RestrictionStrategy::kSort));
  }
}

TEST(PackedKernelsTest, PackedOrderMatchesMixedRadixOrder) {
  // The order-isomorphism claim behind the transcoding: sorting packed
  // codes must yield the exact mixed-radix emission order, including NULL
  // slots and boundary domains.
  Table t = MakeDomainTable({3, 8, 7}, 250, 25, 17);
  const AttrMask all = AttrMask::All(3);
  ExpectSameGroupCounts(
      ComputePatternCounts(t, all, RestrictionStrategy::kPacked),
      ComputePatternCounts(t, all, RestrictionStrategy::kMixedRadix), all);
}

TEST(PackedKernelsTest, WideGenericKernelMatchesSpecializations) {
  // Arity 2 and 3 take the specialized loops, arity >= 4 the tiled
  // generic kernel; all must agree with the reference on the same table,
  // including across tile boundaries (rows > 1024).
  Table t = MakeDomainTable({5, 3, 6, 4, 7, 2}, 3000, 15, 23);
  CheckStrategiesAgree(t);
}

// ---------------------------------------------------------------------------
// SIMD-vs-scalar and morsel-vs-serial differentials. Every available ISA
// and every morsel split must be byte-identical to the forced-scalar
// serial reference — the contract that lets the dispatch table and the
// intra-subset parallelism stay invisible to every caller.

/// Forces `isa` for the scope and restores auto-detection on exit.
class ScopedKernelIsa {
 public:
  explicit ScopedKernelIsa(counting::KernelIsa isa) {
    PCBL_CHECK(counting::SetKernelIsa(isa).ok());
  }
  ~ScopedKernelIsa() {
    PCBL_CHECK(counting::SetKernelIsaByName("auto").ok());
  }
};

std::vector<counting::KernelIsa> AvailableIsas() {
  std::vector<counting::KernelIsa> isas;
  for (counting::KernelIsa isa :
       {counting::KernelIsa::kScalar, counting::KernelIsa::kAvx2,
        counting::KernelIsa::kNeon}) {
    if (counting::KernelIsaAvailable(isa)) isas.push_back(isa);
  }
  return isas;
}

/// Raw column data behind a SubsetColumns view: base columns plus an
/// optional row-major delta block, values drawn from `doms` (with
/// `null_percent` NULLs when > 0).
struct RawSubset {
  std::vector<std::vector<ValueId>> cols;
  std::vector<ValueId> delta;
  counting::SubsetColumns view;
  counting::PackedLayout layout;
};

RawSubset MakeRawSubset(const std::vector<int64_t>& doms, int64_t rows,
                        int64_t delta_rows, int null_percent, Rng& rng) {
  RawSubset raw;
  const int width = static_cast<int>(doms.size());
  auto draw = [&](int j) -> ValueId {
    if (null_percent > 0 &&
        rng.UniformInt(100) < static_cast<uint32_t>(null_percent)) {
      return kNullValue;
    }
    // Skew low so groups repeat across morsels.
    ValueId v = rng.UniformInt(static_cast<uint32_t>(doms[static_cast<size_t>(j)]));
    if (rng.UniformInt(2) == 0) {
      v = rng.UniformInt(
          1 + static_cast<uint32_t>(doms[static_cast<size_t>(j)]) / 8);
    }
    return v;
  };
  raw.cols.resize(static_cast<size_t>(width));
  for (int j = 0; j < width; ++j) {
    raw.cols[static_cast<size_t>(j)].resize(static_cast<size_t>(rows));
    for (int64_t r = 0; r < rows; ++r) {
      raw.cols[static_cast<size_t>(j)][static_cast<size_t>(r)] = draw(j);
    }
  }
  raw.delta.resize(static_cast<size_t>(delta_rows * width));
  for (int64_t r = 0; r < delta_rows; ++r) {
    for (int j = 0; j < width; ++j) {
      raw.delta[static_cast<size_t>(r * width + j)] = draw(j);
    }
  }
  raw.view.width = width;
  raw.view.rows = rows;
  for (int j = 0; j < width; ++j) {
    raw.view.cols[j] = raw.cols[static_cast<size_t>(j)].data();
    raw.view.nullable[j] = null_percent > 0;
    raw.view.delta_attr[j] = j;
  }
  if (delta_rows > 0) {
    raw.view.delta = raw.delta.data();
    raw.view.delta_rows = delta_rows;
    raw.view.delta_stride = width;
  }
  raw.layout = counting::MakePackedLayout(doms.data(), width);
  return raw;
}

std::vector<std::pair<int64_t, int64_t>> SortedGroups(
    const RawSubset& raw, int64_t groups_hint,
    const counting::MorselConfig& morsel) {
  auto groups =
      counting::PackedCountGroups(raw.view, raw.layout, groups_hint, morsel);
  std::sort(groups.begin(), groups.end());
  return groups;
}

/// Checks every available ISA x morsel split of `raw` against the
/// forced-scalar serial reference: identical sorted groups, identical
/// exact distinct counts, and the same early-exit budget behavior (which
/// must ignore the morsel config entirely).
void CheckIsaAndMorselGrid(const RawSubset& raw, const std::string& what) {
  std::vector<std::pair<int64_t, int64_t>> reference;
  int64_t exact = 0;
  {
    ScopedKernelIsa scalar(counting::KernelIsa::kScalar);
    reference = SortedGroups(raw, -1, {});
    exact = counting::PackedCountDistinct(raw.view, raw.layout, -1, {});
  }
  ASSERT_EQ(exact, static_cast<int64_t>(reference.size())) << what;
  const int64_t total = raw.view.rows + raw.view.delta_rows;
  for (counting::KernelIsa isa : AvailableIsas()) {
    ScopedKernelIsa forced(isa);
    const std::string where =
        what + " isa " + counting::KernelIsaName(isa);
    for (int threads : {1, 2, 3, 5, 8}) {
      // min_rows_per_morsel = 1 forces real splits even on small inputs.
      const counting::MorselConfig morsel{threads, 1};
      EXPECT_EQ(counting::PackedCountDistinct(raw.view, raw.layout, -1,
                                              morsel),
                exact)
          << where << " threads " << threads;
      EXPECT_EQ(SortedGroups(raw, -1, morsel), reference)
          << where << " threads " << threads;
      // A correct hint must not change anything (and makes the pass
      // rehash-free, DCHECK-asserted inside PackedCountGroups).
      EXPECT_EQ(SortedGroups(raw, exact, morsel), reference)
          << where << " threads " << threads << " hinted";
      if (counting::PackedDenseCountEligible(raw.layout, total)) {
        std::vector<std::pair<int64_t, int64_t>> items;
        EXPECT_EQ(counting::PackedCountGroupsDense(raw.view, raw.layout, -1,
                                                   &items, morsel),
                  exact)
            << where << " threads " << threads;
        EXPECT_EQ(items, reference) << where << " threads " << threads;
      }
      // Budgeted scans ignore the morsel config: byte-identical returns
      // to the serial budgeted call, early-exit contract intact.
      for (int64_t budget : {int64_t{0}, int64_t{2}, exact - 1, exact}) {
        const int64_t serial =
            counting::PackedCountDistinct(raw.view, raw.layout, budget, {});
        const int64_t got = counting::PackedCountDistinct(
            raw.view, raw.layout, budget, morsel);
        EXPECT_EQ(got, serial)
            << where << " threads " << threads << " budget " << budget;
        if (exact <= budget) {
          EXPECT_EQ(got, exact) << where << " budget " << budget;
        } else {
          EXPECT_GT(got, budget) << where << " budget " << budget;
        }
      }
    }
  }
}

TEST(KernelDispatchTest, ScalarTableIsTheReference) {
  // The scalar table is always compiled in and always available; the
  // probe never reports an ISA the binary cannot run.
  EXPECT_TRUE(counting::KernelIsaAvailable(counting::KernelIsa::kScalar));
  for (counting::KernelIsa isa : AvailableIsas()) {
    ScopedKernelIsa forced(isa);
    EXPECT_EQ(counting::ActiveKernelIsa(), isa);
    EXPECT_TRUE(counting::KernelIsaForced());
  }
  EXPECT_FALSE(counting::KernelIsaForced());
  EXPECT_EQ(counting::ActiveKernelIsa(), counting::BestKernelIsa());
}

TEST(KernelDispatchTest, SetByNameValidatesCentrally) {
  EXPECT_TRUE(counting::SetKernelIsaByName("scalar").ok());
  EXPECT_TRUE(counting::SetKernelIsaByName("AUTO").ok());
  EXPECT_FALSE(counting::SetKernelIsaByName("sse9").ok());
  EXPECT_FALSE(counting::SetKernelIsaByName("").ok());
  if (!counting::KernelIsaAvailable(counting::KernelIsa::kNeon)) {
    EXPECT_FALSE(counting::SetKernelIsaByName("neon").ok());
  }
  PCBL_CHECK(counting::SetKernelIsaByName("auto").ok());
}

TEST(KernelDispatchTest, BoundaryDomainGrid) {
  // 2^k - 1 / 2^k / 2^k + 1 domains at every kernel width class
  // (arity-2, arity-3, generic), with and without NULLs and delta rows.
  Rng rng(101);
  const std::vector<std::vector<int64_t>> grids = {
      {7, 8},          {15, 16, 17},    {3, 4, 5, 7},
      {8, 9, 15, 16, 31, 32},
  };
  for (const auto& doms : grids) {
    for (int null_percent : {0, 25}) {
      for (int64_t delta_rows : {int64_t{0}, int64_t{77}}) {
        RawSubset raw = MakeRawSubset(doms, 350, delta_rows, null_percent, rng);
        ASSERT_TRUE(raw.layout.ok);
        CheckIsaAndMorselGrid(
            raw, "width " + std::to_string(doms.size()) + " nulls " +
                     std::to_string(null_percent) + " delta " +
                     std::to_string(delta_rows));
      }
    }
  }
}

TEST(KernelDispatchTest, WidthSweepToPackedLimit) {
  // Prefix subsets of 31 two-value attributes: widths 2..31 walk the
  // generic gather kernel all the way to a 62-bit packed code, the
  // widest class the morsel merge must reproduce byte-identically.
  Rng rng(202);
  for (int width : {2, 3, 4, 8, 16, 31}) {
    const std::vector<int64_t> doms(static_cast<size_t>(width), 2);
    RawSubset raw = MakeRawSubset(doms, 400, 33, 15, rng);
    ASSERT_TRUE(raw.layout.ok) << width;
    CheckIsaAndMorselGrid(raw, "sweep width " + std::to_string(width));
  }
}

TEST(KernelDispatchTest, LargeSpaceDenseFillFallback) {
  // Code spaces past the AVX2 byte-presence limit (total_bits > 15 but
  // still dense-bitmap eligible): the fused dense_fill kernels must take
  // their large-space scatter branch and stay bit-identical, including
  // at morsel splits whose partial bitmaps merge by OR.
  Rng rng(303);
  const std::vector<std::vector<int64_t>> grids = {
      {260, 260},       // ~18 bits, arity-2 scatter fallback
      {300, 110},       // ~16 bits, just past the byte-table limit
      {70, 70, 17},     // ~19 bits, arity-3 scatter fallback
  };
  for (const auto& doms : grids) {
    for (int64_t delta_rows : {int64_t{0}, int64_t{61}}) {
      RawSubset raw = MakeRawSubset(doms, 5000, delta_rows, 0, rng);
      ASSERT_TRUE(raw.layout.ok);
      ASSERT_GT(raw.layout.total_bits, 15);
      CheckIsaAndMorselGrid(
          raw, "large-space width " + std::to_string(doms.size()) +
                   " delta " + std::to_string(delta_rows));
    }
  }
}

TEST(KernelDispatchTest, RandomizedDifferential) {
  // 300 random trials over width, boundary-biased domains, NULL density,
  // delta rows, and morsel splits — the fuzz arm of the grid above.
  Rng rng(20260808);
  static constexpr int64_t kDomChoices[] = {2,  3,  4,  5,  7,  8,
                                            9,  15, 16, 17, 31, 33};
  for (int trial = 0; trial < 300; ++trial) {
    const int width = 2 + static_cast<int>(rng.UniformInt(7));
    std::vector<int64_t> doms(static_cast<size_t>(width));
    for (auto& d : doms) d = kDomChoices[rng.UniformInt(12)];
    const int64_t rows = 1 + rng.UniformInt(300);
    const int64_t delta_rows = rng.UniformInt(120);
    const int null_percent =
        rng.UniformInt(2) == 0 ? 0 : static_cast<int>(rng.UniformInt(40));
    RawSubset raw = MakeRawSubset(doms, rows, delta_rows, null_percent, rng);
    if (!raw.layout.ok) continue;  // random widths can exceed 63 bits
    std::vector<std::pair<int64_t, int64_t>> reference;
    int64_t exact = 0;
    {
      ScopedKernelIsa scalar(counting::KernelIsa::kScalar);
      reference = SortedGroups(raw, -1, {});
      exact = counting::PackedCountDistinct(raw.view, raw.layout, -1, {});
    }
    ASSERT_EQ(exact, static_cast<int64_t>(reference.size())) << trial;
    const counting::MorselConfig morsel{
        1 + static_cast<int>(rng.UniformInt(8)), 1};
    for (counting::KernelIsa isa : AvailableIsas()) {
      ScopedKernelIsa forced(isa);
      ASSERT_EQ(counting::PackedCountDistinct(raw.view, raw.layout, -1,
                                              morsel),
                exact)
          << "trial " << trial << " isa " << counting::KernelIsaName(isa);
      ASSERT_EQ(SortedGroups(raw, exact, morsel), reference)
          << "trial " << trial << " isa " << counting::KernelIsaName(isa);
    }
  }
}

TEST(KernelDispatchTest, MorselCountRespectsConfig) {
  using counting::MorselCount;
  EXPECT_EQ(MorselCount(1000, {1, 1}), 1);       // one thread: serial
  EXPECT_EQ(MorselCount(1000, {4, 0}), 1);       // disabled threshold
  EXPECT_EQ(MorselCount(1000, {4, 2000}), 1);    // too small to split
  EXPECT_EQ(MorselCount(1000, {4, 500}), 2);     // rows bound the split
  EXPECT_EQ(MorselCount(100000, {4, 500}), 4);   // threads bound it
  EXPECT_EQ(MorselCount(0, {8, 1}), 1);          // empty scan stays sane
}

TEST(KernelDispatchTest, EngineMorselPlumbingIsResultNeutral) {
  // The engine-level knob (CountingEngineOptions::min_rows_per_morsel)
  // must be invisible in results: byte-identical GroupCounts for every
  // thread count and threshold.
  Table t = MakeDomainTable({7, 8, 15, 5}, 2000, 20, 77);
  const AttrMask universe = AttrMask::All(t.num_attributes());
  CountingEngine reference(t);
  for (int threads : {2, 4}) {
    CountingEngineOptions options;
    options.num_threads = threads;
    options.min_rows_per_morsel = 64;
    CountingEngine engine(t, options);
    ForEachSubsetOf(universe, [&](AttrMask s) {
      if (s.Count() < 2) return;
      ExpectSameGroupCounts(*engine.PatternCounts(s),
                            *reference.PatternCounts(s), s);
      EXPECT_EQ(engine.CountPatterns(s), reference.CountPatterns(s))
          << s.ToString();
    });
  }
}

}  // namespace
}  // namespace pcbl
