// DifferentialHarness: one workload, every configuration of the counting
// stack, byte-identical answers — the reusable fixture behind the
// counting-service, incremental, and append-path suites.
//
// The paper's labels are exact artifacts: the engine's packed, mixed-radix
// and sort codecs, its memoized/rollup/batched paths, and the append
// machinery (delta block, patched entries, compacted base) must all
// produce *byte-identical* PC sets, |P_S| values and combo counts, or
// labels silently drift from the data they describe (the CM-sketch
// baselines show what silent divergence looks like). The harness drives
// the same base+append workload through a grid of configurations —
// engine on/off, warm/cold cache, patch/invalidate arm, row-at-a-time vs
// bulk appends, delta block vs compacted base — and asserts every
// answer against the one-shot counters over a from-scratch rebuild of
// the extended table, across every forced RestrictionStrategy.
#ifndef PCBL_TESTS_DIFFERENTIAL_HARNESS_H_
#define PCBL_TESTS_DIFFERENTIAL_HARNESS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pattern/counter.h"
#include "pattern/counting_service.h"
#include "relation/table.h"
#include "util/attr_mask.h"

namespace pcbl {
namespace testing {

/// A counting workload: attribute names, base rows, appended rows.
/// Values are strings ("" = NULL), interned exactly as TableBuilder /
/// IncrementalLabel would.
struct DifferentialWorkload {
  std::vector<std::string> attribute_names;
  std::vector<std::vector<std::string>> base_rows;
  std::vector<std::vector<std::string>> append_rows;
};

/// Seeded random workload: `domain` distinct values per attribute in the
/// base rows, `append_domain` (>= domain introduces fresh values) in the
/// appended ones, `null_percent` NULL cells in both.
DifferentialWorkload RandomWorkload(uint64_t seed, int attrs,
                                    int64_t base_rows, int64_t append_rows,
                                    int domain, int append_domain,
                                    int null_percent);

/// One configuration of the counting stack under test.
struct DifferentialConfig {
  std::string name;
  bool engine_enabled = true;
  int num_threads = 1;
  int64_t cache_budget = int64_t{1} << 20;
  /// Auto-compaction threshold while appending (<= 0 = never).
  int64_t compact_threshold = 0;
  /// Explicitly fold the delta block once every append landed.
  bool compact_after_appends = false;
  /// Drop the warm cache before appending (forces rebuild-from-scan).
  bool invalidate_before_appends = false;
  /// Prime every subset's PC set before the appends (exercises the
  /// patch arm on a full cache; otherwise the cache starts cold).
  bool warm_cache_first = false;
  /// Append through one bulk AppendRows call instead of row-at-a-time
  /// AppendRow calls (exercises the invalidate-or-patch cost pivot).
  bool bulk_append = false;
};

/// The standard grid: engine on/off × warm/cold × delta/compacted ×
/// single/bulk appends.
std::vector<DifferentialConfig> StandardConfigs();

/// Byte-identity assertion between two GroupCounts (attrs, group count,
/// every key cell, every count). `context` prefixes failure messages.
void ExpectSameGroupCounts(const GroupCounts& got, const GroupCounts& want,
                           const std::string& context);

class DifferentialHarness {
 public:
  explicit DifferentialHarness(DifferentialWorkload workload);

  /// The base table (workload.base_rows only).
  const Table& base() const { return base_; }

  /// The reference: base + append rows rebuilt from scratch through one
  /// TableBuilder — the ground truth every configuration must match.
  const Table& reference() const { return reference_; }

  /// Runs one configuration: builds a CountingService over base(),
  /// optionally warms it, replays the appends through the service's
  /// invalidate-or-patch hook, optionally compacts, then asserts that
  /// every attribute subset's PC set, |P_S| (budgeted and exact) and
  /// combo count are byte-identical to the one-shot counters over
  /// reference() — which are themselves cross-checked across every
  /// eligible RestrictionStrategy. Returns the service so callers can
  /// assert configuration-specific stats on top.
  std::shared_ptr<CountingService> Run(
      const DifferentialConfig& config) const;

  /// Run() over StandardConfigs().
  void CheckAll() const;

  /// Asserts every engine answer of `service` (whatever its history)
  /// against the one-shot counters on `reference`. Usable standalone for
  /// services the caller mutated in custom ways.
  static void CheckServiceAgainst(CountingService& service,
                                  const Table& reference,
                                  const std::string& context);

 private:
  DifferentialWorkload workload_;
  Table base_;
  Table reference_;
};

}  // namespace testing
}  // namespace pcbl

#endif  // PCBL_TESTS_DIFFERENTIAL_HARNESS_H_
