// Tests for the dataset generators: determinism, published marginals,
// correlation structure, augmentation, and the Fig. 2 demo.
#include "workload/datasets.h"

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/pairwise_histogram.h"
#include "core/multi_label.h"
#include "core/search.h"
#include "pattern/counter.h"
#include "relation/stats.h"
#include "workload/generator.h"

namespace pcbl {
namespace {

using workload::MakeBlueNile;
using workload::MakeCompas;
using workload::MakeCreditCard;
using workload::MakeFig2Demo;

double Fraction(const Table& t, const ValueCounts& vc, const char* attr,
                const char* value) {
  int a = t.schema().FindAttribute(attr).value();
  ValueId v = t.dictionary(a).Lookup(value);
  return static_cast<double>(vc.Count(a, v)) /
         static_cast<double>(t.num_rows());
}

TEST(GeneratorFrameworkTest, ValidatesSpecs) {
  DatasetSpec spec;
  spec.name = "bad";
  EXPECT_FALSE(GenerateDataset(spec, 10, 1).ok());  // no attributes

  AttributeSpec a;
  a.name = "a";
  a.values = {"x", "y"};
  a.marginal = {1.0};  // wrong arity
  spec.attributes = {a};
  EXPECT_FALSE(GenerateDataset(spec, 10, 1).ok());

  a.marginal = {1.0, 1.0};
  a.parent = 0;  // self/forward dependency
  spec.attributes = {a};
  EXPECT_FALSE(GenerateDataset(spec, 10, 1).ok());
}

TEST(GeneratorFrameworkTest, ConditionalDependencyRealized) {
  DatasetSpec spec;
  spec.name = "dep";
  AttributeSpec parent;
  parent.name = "p";
  parent.values = {"0", "1"};
  parent.marginal = {0.5, 0.5};
  AttributeSpec child;
  child.name = "c";
  child.values = {"0", "1"};
  child.parent = 0;
  child.conditional = {{1.0, 0.0}, {0.0, 1.0}};  // c == p exactly
  spec.attributes = {parent, child};
  Table t = GenerateDataset(spec, 2000, 3).value();
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(t.value(r, 0), t.value(r, 1));
  }
}

TEST(GeneratorFrameworkTest, NoiseSoftensDependency) {
  DatasetSpec spec;
  spec.name = "noisy";
  AttributeSpec parent;
  parent.name = "p";
  parent.values = {"0", "1"};
  parent.marginal = {0.5, 0.5};
  AttributeSpec child;
  child.name = "c";
  child.values = {"0", "1"};
  child.parent = 0;
  child.noise = 0.5;
  child.marginal = {0.5, 0.5};
  child.conditional = {{1.0, 0.0}, {0.0, 1.0}};
  spec.attributes = {parent, child};
  Table t = GenerateDataset(spec, 20000, 3).value();
  int64_t equal = 0;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    if (t.value(r, 0) == t.value(r, 1)) ++equal;
  }
  double frac = static_cast<double>(equal) /
                static_cast<double>(t.num_rows());
  // 50% follow the parent exactly + 50% coin flip => ~75% agreement.
  EXPECT_NEAR(frac, 0.75, 0.02);
}

TEST(DatasetShapeTest, RowAndAttributeCountsMatchPaper) {
  Table bn = MakeBlueNile(5000, 1).value();
  EXPECT_EQ(bn.num_attributes(), 7);
  EXPECT_EQ(bn.num_rows(), 5000);
  Table cp = MakeCompas(5000, 1).value();
  EXPECT_EQ(cp.num_attributes(), 17);
  Table cc = MakeCreditCard(5000, 1).value();
  EXPECT_EQ(cc.num_attributes(), 24);
  EXPECT_EQ(workload::kBlueNileRows, 116300);
  EXPECT_EQ(workload::kCompasRows, 60843);
  EXPECT_EQ(workload::kCreditCardRows, 30000);
}

TEST(DatasetShapeTest, DeterministicPerSeed) {
  Table a = MakeCompas(500, 42).value();
  Table b = MakeCompas(500, 42).value();
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    for (int c = 0; c < a.num_attributes(); ++c) {
      ASSERT_EQ(a.value(r, c), b.value(r, c));
    }
  }
  Table c = MakeCompas(500, 43).value();
  bool any_diff = false;
  for (int64_t r = 0; r < a.num_rows() && !any_diff; ++r) {
    for (int col = 0; col < a.num_attributes(); ++col) {
      if (a.value(r, col) != c.value(r, col)) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(CompasTest, Fig1MarginalsReproduced) {
  Table t = MakeCompas(60843, 2021).value();
  ValueCounts vc = ValueCounts::Compute(t);
  EXPECT_NEAR(Fraction(t, vc, "Gender", "Male"), 0.78, 0.01);
  EXPECT_NEAR(Fraction(t, vc, "Gender", "Female"), 0.22, 0.01);
  EXPECT_NEAR(Fraction(t, vc, "Race", "African-American"), 0.45, 0.01);
  EXPECT_NEAR(Fraction(t, vc, "Race", "Caucasian"), 0.36, 0.01);
  EXPECT_NEAR(Fraction(t, vc, "Race", "Hispanic"), 0.14, 0.01);
  EXPECT_NEAR(Fraction(t, vc, "AgeGroup", "20-39"), 0.66, 0.01);
  EXPECT_NEAR(Fraction(t, vc, "MaritalStatus", "Single"), 0.75, 0.03);
}

TEST(CompasTest, Fig1GenderRaceJointReproduced) {
  Table t = MakeCompas(60843, 2021).value();
  auto p = Pattern::Parse(
      t, {{"Gender", "Female"}, {"Race", "African-American"}});
  ASSERT_TRUE(p.ok());
  // Fig. 1: 5583 / 60843 ≈ 9%.
  double frac = static_cast<double>(CountMatches(t, *p)) /
                static_cast<double>(t.num_rows());
  EXPECT_NEAR(frac, 0.092, 0.01);
  auto p2 =
      Pattern::Parse(t, {{"Gender", "Male"}, {"Race", "Hispanic"}});
  ASSERT_TRUE(p2.ok());
  double frac2 = static_cast<double>(CountMatches(t, *p2)) /
                 static_cast<double>(t.num_rows());
  EXPECT_NEAR(frac2, 0.115, 0.01);
}

TEST(CompasTest, ScoreCliqueIsNearFunctional) {
  Table t = MakeCompas(20000, 2021).value();
  int scale = t.schema().FindAttribute("Scale_ID").value();
  int display = t.schema().FindAttribute("DisplayText").value();
  int rec = t.schema().FindAttribute("RecSupervisionLevel").value();
  int rec_text =
      t.schema().FindAttribute("RecSupervisionLevelText").value();
  // DisplayText is a function of Scale_ID: the pair has exactly
  // |Dom(Scale_ID)| combinations.
  EXPECT_EQ(CountDistinctCombos(
                t, AttrMask::FromIndices({scale, display})),
            3);
  EXPECT_EQ(CountDistinctCombos(
                t, AttrMask::FromIndices({rec, rec_text})),
            4);
  // The whole 6-attribute clique stays small (near-functional), which is
  // what lets the search pick it under a 100-pattern budget.
  int decile = t.schema().FindAttribute("DecileScore").value();
  int score_text = t.schema().FindAttribute("ScoreText").value();
  int64_t clique = CountDistinctCombos(
      t, AttrMask::FromIndices(
             {scale, display, decile, score_text, rec, rec_text}));
  EXPECT_LE(clique, 150);
  EXPECT_GE(clique, 30);
}

TEST(BlueNileTest, FinishingCliqueCorrelated) {
  Table t = MakeBlueNile(20000, 2021).value();
  int cut = t.schema().FindAttribute("cut").value();
  int polish = t.schema().FindAttribute("polish").value();
  int symmetry = t.schema().FindAttribute("symmetry").value();
  // Correlated pair: joint distinct combos exist but are skewed — compare
  // mutual agreement of top categories instead: P(polish=Excellent |
  // cut=Ideal) must far exceed P(polish=Excellent | cut=Good).
  auto frac_cond = [&](int attr, const char* val, int cond_attr,
                       const char* cond_val) {
    auto p_joint = Pattern::Create(
        {{attr, t.dictionary(attr).Lookup(val)},
         {cond_attr, t.dictionary(cond_attr).Lookup(cond_val)}});
    auto p_cond = Pattern::Create(
        {{cond_attr, t.dictionary(cond_attr).Lookup(cond_val)}});
    PCBL_CHECK(p_joint.ok() && p_cond.ok());
    return static_cast<double>(CountMatches(t, *p_joint)) /
           static_cast<double>(CountMatches(t, *p_cond));
  };
  double excellent_given_ideal =
      frac_cond(polish, "Excellent", cut, "Ideal");
  double excellent_given_good = frac_cond(polish, "Excellent", cut, "Good");
  EXPECT_GT(excellent_given_ideal, excellent_given_good + 0.3);
  // Symmetry correlates with polish the same way.
  double sym_given_excellent =
      frac_cond(symmetry, "Excellent", polish, "Excellent");
  double sym_given_good = frac_cond(symmetry, "Excellent", polish, "Good");
  EXPECT_GT(sym_given_excellent, sym_given_good + 0.3);
}

TEST(CreditCardTest, BucketizedDomainsAndCorrelation) {
  Table t = MakeCreditCard(10000, 2021).value();
  // Every numeric attribute has at most 5 buckets.
  for (const char* name :
       {"LIMIT_BAL", "AGE", "PAY_0", "BILL_AMT3", "PAY_AMT6"}) {
    int a = t.schema().FindAttribute(name).value();
    EXPECT_LE(t.DomainSize(a), 5u) << name;
    EXPECT_GE(t.DomainSize(a), 2u) << name;
  }
  // PAY chain is autocorrelated: distinct combos of (PAY_0, PAY_2) are
  // far fewer than the independent-worst-case 25 would suggest given the
  // mass concentration; check via joint vs product-of-marginal entropy
  // proxy: joint combos <= 25 but agreement probability is high.
  int p0 = t.schema().FindAttribute("PAY_0").value();
  int p2 = t.schema().FindAttribute("PAY_2").value();
  int64_t agree = 0;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    if (t.value(r, p0) == t.value(r, p2)) ++agree;
  }
  double frac = static_cast<double>(agree) /
                static_cast<double>(t.num_rows());
  EXPECT_GT(frac, 0.5);  // same bucket more than half the time
}

TEST(CreditCardTest, DefaultRateSane) {
  Table t = MakeCreditCard(20000, 2021).value();
  ValueCounts vc = ValueCounts::Compute(t);
  double rate = Fraction(t, vc, "default_payment_next_month", "yes");
  EXPECT_GT(rate, 0.10);
  EXPECT_LT(rate, 0.40);
}

TEST(AugmentTest, PreservesOriginalAndAddsUniformRows) {
  Table t = MakeFig2Demo();
  Table big = AugmentWithRandomRows(t, 100, 9).value();
  EXPECT_EQ(big.num_rows(), 118);
  // Original rows intact.
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    for (int a = 0; a < t.num_attributes(); ++a) {
      ASSERT_EQ(big.value(r, a), t.value(r, a));
    }
  }
  // Domains unchanged (augmentation only reuses existing values).
  for (int a = 0; a < t.num_attributes(); ++a) {
    EXPECT_EQ(big.DomainSize(a), t.DomainSize(a));
  }
}

TEST(AugmentTest, ZeroExtraRowsIsCopy) {
  Table t = MakeFig2Demo();
  Table same = AugmentWithRandomRows(t, 0, 1).value();
  EXPECT_EQ(same.num_rows(), t.num_rows());
  EXPECT_FALSE(AugmentWithRandomRows(t, -1, 1).ok());
}

TEST(Fig2DemoTest, ExactContent) {
  Table t = MakeFig2Demo();
  EXPECT_EQ(t.num_rows(), 18);
  EXPECT_EQ(t.num_attributes(), 4);
  EXPECT_EQ(t.ValueString(0, 0), "Female");
  EXPECT_EQ(t.ValueString(17, 2), "Hispanic");
  EXPECT_EQ(t.ValueString(3, 3), "married");
}

TEST(MakePaperDatasetsTest, ScaleApplies) {
  auto datasets = workload::MakePaperDatasets(0.01, 1).value();
  ASSERT_EQ(datasets.size(), 3u);
  EXPECT_EQ(datasets[0].name, "BlueNile");
  EXPECT_EQ(datasets[0].table.num_rows(), 1163);
  EXPECT_EQ(datasets[1].table.num_rows(), 608);
  EXPECT_EQ(datasets[2].table.num_rows(), 300);
  EXPECT_FALSE(workload::MakePaperDatasets(0.0, 1).ok());
}

TEST(TwoCliqueTest, ShapeAndDeterminism) {
  auto a = workload::MakeTwoClique(5000, 7);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->num_rows(), 5000);
  EXPECT_EQ(a->num_attributes(), 4);
  for (int attr = 0; attr < 4; ++attr) {
    EXPECT_EQ(a->DomainSize(attr), 4u);
  }
  auto b = workload::MakeTwoClique(5000, 7);
  ASSERT_TRUE(b.ok());
  for (int64_t r = 0; r < 100; ++r) {
    for (int attr = 0; attr < 4; ++attr) {
      EXPECT_EQ(a->value(r, attr), b->value(r, attr));
    }
  }
  EXPECT_FALSE(workload::MakeTwoClique(100, 1, 1.5).ok());
}

TEST(TwoCliqueTest, CliquesAreDependentAndMutuallyIndependent) {
  Table t = workload::MakeTwoClique(20000, 2021).value();
  // Within-clique dependence dominates cross-clique (near zero).
  EXPECT_GT(MutualInformationBits(t, 0, 1), 1.0);
  EXPECT_GT(MutualInformationBits(t, 2, 3), 1.0);
  EXPECT_LT(MutualInformationBits(t, 0, 2), 0.05);
  EXPECT_LT(MutualInformationBits(t, 1, 3), 0.05);
  // With 15% noise every value combination of a clique appears.
  EXPECT_EQ(CountDistinctPatterns(t, AttrMask::FromIndices({0, 1})), 16);
}

TEST(TwoCliqueTest, SplittingTheBudgetWins) {
  // The regime the bench records: one pair label fits in 20-40 entries;
  // covering both cliques in a single label needs |P_S| >= 64.
  Table t = workload::MakeTwoClique(20000, 2021).value();
  LabelSearch search(t);
  SearchOptions single;
  single.size_bound = 40;
  SearchResult one = search.TopDown(single);

  MultiSearchOptions multi_options;
  multi_options.total_bound = 40;
  multi_options.max_labels = 2;
  multi_options.strategy = CombineStrategy::kFactorized;
  auto multi = SearchLabelSet(t, multi_options);
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(multi->labels.size(), 2u);
  EXPECT_LT(multi->error.max_abs, one.error.max_abs);
  // The two labels cover the two cliques.
  AttrMask combined;
  for (AttrMask s : multi->label_attrs) combined = combined.Union(s);
  EXPECT_EQ(combined.Count(), 4);
}

}  // namespace
}  // namespace pcbl
