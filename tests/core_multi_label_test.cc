// Tests for multi-label estimation and the greedy label-set search (the
// conclusion's future-work extension).
#include "core/multi_label.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

Table TwoCliqueTable() {
  // Two independent correlated cliques: (a0,a1) equal-valued and (a2,a3)
  // equal-valued, all uniform over 4 values. No single small label covers
  // both cliques; two labels do.
  auto b = TableBuilder::Create({"a0", "a1", "a2", "a3"});
  PCBL_CHECK(b.ok());
  for (int a = 0; a < 4; ++a) {
    for (int v = 0; v < 4; ++v) {
      b->InternValue(a, std::string(1, static_cast<char>('p' + v)));
    }
  }
  Rng rng(1234);
  std::vector<ValueId> codes(4);
  for (int r = 0; r < 4096; ++r) {
    ValueId x = rng.UniformInt(4);
    ValueId y = rng.UniformInt(4);
    codes[0] = x;
    codes[1] = x;
    codes[2] = y;
    codes[3] = y;
    PCBL_CHECK(b->AddRowCodes(codes).ok());
  }
  return b->Build();
}

TEST(MultiLabelEstimatorTest, SingleLabelBehavesLikeThatLabel) {
  Table t = workload::MakeFig2Demo();
  Label l = Label::Build(t, AttrMask::FromIndices({1, 3}));
  MultiLabelEstimator multi({l}, CombineStrategy::kMaxOverlap);
  auto p = Pattern::Parse(t, {{"gender", "Female"},
                              {"age group", "20-39"},
                              {"marital status", "married"}});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(multi.EstimateCount(*p), l.EstimateCount(*p));
  EXPECT_EQ(multi.FootprintEntries(), l.size());
}

TEST(MultiLabelEstimatorTest, MaxOverlapPicksCoveringLabel) {
  Table t = workload::MakeFig2Demo();
  Label l_am = Label::Build(t, AttrMask::FromIndices({1, 3}));
  Label l_gr = Label::Build(t, AttrMask::FromIndices({0, 2}));
  MultiLabelEstimator multi({l_am, l_gr}, CombineStrategy::kMaxOverlap);
  // A gender+race pattern overlaps l_gr fully: estimate must be exact.
  auto p = Pattern::Parse(
      t, {{"gender", "Female"}, {"race", "Hispanic"}});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(multi.EstimateCount(*p),
                   static_cast<double>(CountMatches(t, *p)));
  // An age+marital pattern overlaps l_am fully.
  auto p2 = Pattern::Parse(
      t, {{"age group", "under 20"}, {"marital status", "single"}});
  ASSERT_TRUE(p2.ok());
  EXPECT_DOUBLE_EQ(multi.EstimateCount(*p2), 6.0);
}

TEST(MultiLabelEstimatorTest, MedianAndGeoMeanCombine) {
  Table t = workload::MakeFig2Demo();
  Label l1 = Label::Build(t, AttrMask::FromIndices({1, 3}));  // est 3
  Label l2 = Label::Build(t, AttrMask::FromIndices({0, 1}));  // est 2
  auto p = Pattern::Parse(t, {{"gender", "Female"},
                              {"age group", "20-39"},
                              {"marital status", "married"}});
  ASSERT_TRUE(p.ok());
  MultiLabelEstimator median({l1, l2}, CombineStrategy::kMedian);
  EXPECT_DOUBLE_EQ(median.EstimateCount(*p), 2.5);
  MultiLabelEstimator geo({l1, l2}, CombineStrategy::kGeometricMean);
  EXPECT_NEAR(geo.EstimateCount(*p), std::sqrt(6.0), 1e-12);
}

TEST(MultiLabelEstimatorTest, GeoMeanZeroPropagates) {
  Table t = workload::MakeFig2Demo();
  Label l1 = Label::Build(t, AttrMask::FromIndices({1, 3}));
  Label l2 = Label::Build(t, AttrMask::FromIndices({0, 1}));
  // Unseen combination: l1 estimates 0.
  auto p = Pattern::Parse(
      t, {{"age group", "under 20"}, {"marital status", "married"}});
  ASSERT_TRUE(p.ok());
  MultiLabelEstimator geo({l1, l2}, CombineStrategy::kGeometricMean);
  EXPECT_DOUBLE_EQ(geo.EstimateCount(*p), 0.0);
}

TEST(MultiLabelEstimatorTest, FactorizedSingleLabelEqualsThatLabel) {
  Table t = workload::MakeCompas(2000, 7).value();
  Label l = Label::Build(t, AttrMask::FromIndices({0, 2}));
  MultiLabelEstimator multi({l}, CombineStrategy::kFactorized);
  FullPatternIndex idx = FullPatternIndex::Build(t);
  for (int64_t i = 0; i < idx.num_patterns(); ++i) {
    ASSERT_NEAR(multi.EstimateFullPattern(idx.codes(i), idx.width()),
                l.EstimateFullPattern(idx.codes(i), idx.width()), 1e-9)
        << i;
  }
  auto partial = Pattern::Parse(t, {{"Gender", "Female"},
                                    {"MaritalStatus", "Widowed"}});
  ASSERT_TRUE(partial.ok());
  EXPECT_NEAR(multi.EstimateCount(*partial), l.EstimateCount(*partial),
              1e-9);
}

TEST(MultiLabelEstimatorTest, FactorizedComposesDisjointCliques) {
  Table t = TwoCliqueTable();
  Label l_a = Label::Build(t, AttrMask::FromIndices({0, 1}));
  Label l_b = Label::Build(t, AttrMask::FromIndices({2, 3}));
  MultiLabelEstimator multi({l_a, l_b}, CombineStrategy::kFactorized);
  // Full pattern (x,x,y,y): truth ~ N/16; factorized estimate is
  // N * c(x,x)/N * c(y,y)/N — both cliques joint. A single label (or
  // max-overlap) can only use one clique and lands near N/64.
  auto p = Pattern::Parse(t, {{"a0", "p"}, {"a1", "p"},
                              {"a2", "q"}, {"a3", "q"}});
  ASSERT_TRUE(p.ok());
  const double truth = static_cast<double>(CountMatches(t, *p));
  const double factorized = multi.EstimateCount(*p);
  MultiLabelEstimator overlap({l_a, l_b}, CombineStrategy::kMaxOverlap);
  const double single_sided = overlap.EstimateCount(*p);
  EXPECT_LT(std::abs(factorized - truth), std::abs(single_sided - truth));
  // Exact composition: both blocks stored exactly, cliques independent by
  // construction up to sampling noise.
  EXPECT_NEAR(factorized,
              static_cast<double>(CountMatches(
                  t, Pattern::Parse(t, {{"a0", "p"}, {"a1", "p"}}).value())) *
                  static_cast<double>(CountMatches(
                      t,
                      Pattern::Parse(t, {{"a2", "q"}, {"a3", "q"}}).value())) /
                  static_cast<double>(t.num_rows()),
              1e-9);
}

TEST(MultiLabelEstimatorTest, FactorizedZeroBlockPropagates) {
  Table t = workload::MakeFig2Demo();
  Label l = Label::Build(t, AttrMask::FromIndices({1, 3}));
  MultiLabelEstimator multi({l}, CombineStrategy::kFactorized);
  // (under 20, married) never occurs.
  auto p = Pattern::Parse(
      t, {{"age group", "under 20"}, {"marital status", "married"}});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(multi.EstimateCount(*p), 0.0);
}

TEST(MultiLabelEstimatorTest, FullPatternPathAgreesWithGeneral) {
  Table t = workload::MakeCompas(2000, 11).value();
  Label l1 = Label::Build(t, AttrMask::FromIndices({0, 2}));
  Label l2 = Label::Build(t, AttrMask::FromIndices({12, 13}));
  FullPatternIndex idx = FullPatternIndex::Build(t);
  for (CombineStrategy s :
       {CombineStrategy::kMaxOverlap, CombineStrategy::kGeometricMean,
        CombineStrategy::kMedian, CombineStrategy::kFactorized}) {
    MultiLabelEstimator multi({l1, l2}, s);
    for (int64_t i = 0; i < std::min<int64_t>(idx.num_patterns(), 50);
         ++i) {
      Pattern p = idx.ToPattern(i);
      EXPECT_NEAR(multi.EstimateFullPattern(idx.codes(i), idx.width()),
                  multi.EstimateCount(p), 1e-9)
          << static_cast<int>(s);
    }
  }
}

TEST(SearchLabelSetTest, ValidatesOptions) {
  Table t = workload::MakeFig2Demo();
  MultiSearchOptions options;
  options.total_bound = 0;
  EXPECT_FALSE(SearchLabelSet(t, options).ok());
  options.total_bound = 10;
  options.max_labels = 0;
  EXPECT_FALSE(SearchLabelSet(t, options).ok());
}

TEST(SearchLabelSetTest, SingleLabelBudgetMatchesTopDown) {
  Table t = workload::MakeFig2Demo();
  MultiSearchOptions options;
  options.total_bound = 5;
  options.max_labels = 1;
  auto result = SearchLabelSet(t, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->labels.size(), 1u);
  LabelSearch search(t);
  SearchOptions single;
  single.size_bound = 5;
  SearchResult expected = search.TopDown(single);
  EXPECT_DOUBLE_EQ(result->error.max_abs, expected.error.max_abs);
}

TEST(SearchLabelSetTest, SplitsBudgetWhenTwoCliquesExist) {
  Table t = TwoCliqueTable();
  MultiSearchOptions options;
  // Each clique label has 4 patterns; the cross-clique label has ~16.
  // With a budget of 12, one label cannot cover both cliques, but two
  // size-4 labels can.
  options.total_bound = 12;
  options.max_labels = 2;
  auto result = SearchLabelSet(t, options);
  ASSERT_TRUE(result.ok());
  // The single-label plan at bound 12 cannot reach the two-label error.
  LabelSearch search(t);
  SearchOptions single;
  single.size_bound = 12;
  SearchResult one = search.TopDown(single);
  EXPECT_LE(result->error.max_abs, one.error.max_abs);
  EXPECT_LE(result->total_size, 12);
  if (result->labels.size() == 2) {
    // When it does split, both cliques should be covered.
    AttrMask combined;
    for (AttrMask s : result->label_attrs) combined = combined.Union(s);
    EXPECT_GE(combined.Count(), 3);
  }
}

TEST(SearchLabelSetTest, NeverExceedsBudget) {
  Table t = workload::MakeCompas(3000, 7).value();
  for (int64_t budget : {20, 60, 100}) {
    MultiSearchOptions options;
    options.total_bound = budget;
    options.max_labels = 3;
    auto result = SearchLabelSet(t, options);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->total_size, budget);
    EXPECT_GE(result->labels.size(), 1u);
    EXPECT_LE(result->labels.size(), 3u);
  }
}

}  // namespace
}  // namespace pcbl
