// Tests for the experiment harness: table formatting and bench config.
#include <cstdlib>

#include <gtest/gtest.h>

#include "harness/accuracy.h"
#include "harness/bench_config.h"
#include "harness/tablefmt.h"
#include "workload/datasets.h"

namespace pcbl {
namespace harness {
namespace {

TEST(TextTableTest, MarkdownAlignsColumns) {
  TextTable t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer-name", "22"});
  std::string md = t.ToMarkdown();
  EXPECT_NE(md.find("| name        | value |"), std::string::npos);
  EXPECT_NE(md.find("| longer-name | 22    |"), std::string::npos);
  // Header separator present.
  EXPECT_NE(md.find("|---"), std::string::npos);
}

TEST(TextTableTest, AddRowValuesStringifies) {
  TextTable t({"a", "b", "c"});
  t.AddRowValues(42, "x", 2.5);
  std::string md = t.ToMarkdown();
  EXPECT_NE(md.find("42"), std::string::npos);
  EXPECT_NE(md.find("2.5"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 1);
}

TEST(TextTableTest, ArityMismatchDies) {
  TextTable t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "arity");
}

TEST(TextTableTest, CsvQuotesOnlyWhenNeeded) {
  TextTable t({"k", "v"});
  t.AddRow({"plain", "with,comma"});
  t.AddRow({"quote\"d", "line\nbreak"});
  std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("plain,\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"d\""), std::string::npos);
}

TEST(BenchConfigTest, DefaultsAndEnvOverrides) {
  unsetenv("PCBL_BENCH_SCALE");
  unsetenv("PCBL_BENCH_SEED");
  unsetenv("PCBL_BENCH_TIME_LIMIT");
  BenchConfig def = BenchConfig::FromEnv();
  EXPECT_DOUBLE_EQ(def.scale, 1.0);
  EXPECT_EQ(def.seed, 2021u);
  EXPECT_DOUBLE_EQ(def.time_limit_seconds, 120.0);

  setenv("PCBL_BENCH_SCALE", "25", 1);
  setenv("PCBL_BENCH_SEED", "7", 1);
  setenv("PCBL_BENCH_TIME_LIMIT", "30", 1);
  BenchConfig cfg = BenchConfig::FromEnv();
  EXPECT_DOUBLE_EQ(cfg.scale, 0.25);
  EXPECT_EQ(cfg.seed, 7u);
  EXPECT_DOUBLE_EQ(cfg.time_limit_seconds, 30.0);

  // Garbage values fall back to defaults.
  setenv("PCBL_BENCH_SCALE", "not-a-number", 1);
  setenv("PCBL_BENCH_SEED", "-3", 1);
  BenchConfig bad = BenchConfig::FromEnv();
  EXPECT_DOUBLE_EQ(bad.scale, 1.0);
  EXPECT_EQ(bad.seed, 2021u);

  unsetenv("PCBL_BENCH_SCALE");
  unsetenv("PCBL_BENCH_SEED");
  unsetenv("PCBL_BENCH_TIME_LIMIT");
}

TEST(BenchConfigTest, ToStringMentionsAllFields) {
  BenchConfig cfg;
  cfg.scale = 0.5;
  cfg.seed = 9;
  std::string s = cfg.ToString();
  EXPECT_NE(s.find("50%"), std::string::npos);
  EXPECT_NE(s.find("seed=9"), std::string::npos);
}

TEST(AccuracySweepTest, ProducesConsistentPoints) {
  Table t = workload::MakeCompas(3000, 5).value();
  AccuracySweepOptions options;
  options.bounds = {10, 50};
  options.sample_seeds = 2;
  auto points = RunAccuracySweep(t, options);
  ASSERT_EQ(points.size(), 2u);
  for (const AccuracyPoint& p : points) {
    EXPECT_LE(p.label_size, p.bound);
    EXPECT_GT(p.sample_rows, p.bound);  // bound + |VC|
    EXPECT_GE(p.pcbl.max_abs, 0.0);
    EXPECT_GE(p.sample_mean.max_abs, 0.0);
    EXPECT_GT(p.postgres.max_abs, 0.0);
    EXPECT_GE(p.search_seconds, 0.0);
  }
  // Larger bound can only improve (or match) the PCBL max error.
  EXPECT_LE(points[1].pcbl.max_abs, points[0].pcbl.max_abs + 1e-9);
  // Postgres line is bound-independent.
  EXPECT_DOUBLE_EQ(points[0].postgres.max_abs, points[1].postgres.max_abs);
}

}  // namespace
}  // namespace harness
}  // namespace pcbl
