// Tests for BoundPortableLabel: re-attaching a shipped PortableLabel to a
// table and estimating through the ordinary estimator interface.
#include "core/bound_label.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/label.h"
#include "core/portable_label.h"
#include "pattern/full_pattern_index.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

TEST(BoundLabelTest, AgreesWithNativeLabelOnFullPatterns) {
  Table t = workload::MakeCompas(2000, 7).value();
  Label native = Label::Build(t, AttrMask::FromIndices({0, 2, 12}));
  PortableLabel portable = MakePortable(native, t, "compas");
  auto bound = BoundPortableLabel::Bind(portable, t);
  ASSERT_TRUE(bound.ok()) << bound.status();
  FullPatternIndex index = FullPatternIndex::Build(t);
  for (int64_t i = 0; i < index.num_patterns(); ++i) {
    EXPECT_NEAR(bound->EstimateFullPattern(index.codes(i), index.width()),
                native.EstimateFullPattern(index.codes(i), index.width()),
                1e-6)
        << "pattern " << i;
  }
}

TEST(BoundLabelTest, AgreesWithNativeLabelOnPartialPatterns) {
  Table t = workload::MakeFig2Demo();
  Label native = Label::Build(t, AttrMask::FromIndices({1, 3}));
  PortableLabel portable = MakePortable(native, t);
  auto bound = BoundPortableLabel::Bind(portable, t);
  ASSERT_TRUE(bound.ok());
  const std::vector<std::vector<std::pair<std::string, std::string>>> cases =
      {
          {{"gender", "Female"}},
          {{"gender", "Female"}, {"age group", "20-39"}},
          {{"age group", "20-39"}, {"marital status", "married"}},
          {{"gender", "Female"},
           {"age group", "20-39"},
           {"marital status", "married"}},
          {{"race", "Hispanic"}, {"marital status", "single"}},
      };
  for (const auto& named : cases) {
    auto p = Pattern::Parse(t, named);
    ASSERT_TRUE(p.ok());
    EXPECT_NEAR(bound->EstimateCount(*p), native.EstimateCount(*p), 1e-9);
  }
}

TEST(BoundLabelTest, ErrorReportMatchesNativeLabel) {
  Table t = workload::MakeBlueNile(5000, 3).value();
  Label native = Label::Build(t, AttrMask::FromIndices({1, 4}));
  PortableLabel portable = MakePortable(native, t);
  auto bound = BoundPortableLabel::Bind(portable, t);
  ASSERT_TRUE(bound.ok());
  FullPatternIndex index = FullPatternIndex::Build(t);
  LabelEstimator native_est(native);
  ErrorReport a = EvaluateOverFullPatterns(index, native_est,
                                           ErrorMode::kExact);
  ErrorReport b = EvaluateOverFullPatterns(index, *bound, ErrorMode::kExact);
  EXPECT_NEAR(a.max_abs, b.max_abs, 1e-6);
  EXPECT_NEAR(a.mean_abs, b.mean_abs, 1e-6);
}

TEST(BoundLabelTest, MissingAttributeFailsToBind) {
  Table t = workload::MakeFig2Demo();
  Label native = Label::Build(t, AttrMask::FromIndices({0, 1}));
  PortableLabel portable = MakePortable(native, t);
  portable.attribute_names[2] = "renamed_attribute";
  auto bound = BoundPortableLabel::Bind(portable, t);
  EXPECT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kNotFound);
}

TEST(BoundLabelTest, MalformedPcRowFails) {
  Table t = workload::MakeFig2Demo();
  Label native = Label::Build(t, AttrMask::FromIndices({0, 1}));
  PortableLabel portable = MakePortable(native, t);
  portable.pattern_counts.push_back({{"only-one-value"}, 3});
  EXPECT_FALSE(BoundPortableLabel::Bind(portable, t).ok());
}

TEST(BoundLabelTest, EmptySDegeneratesToIndependence) {
  Table t = workload::MakeFig2Demo();
  Label native = Label::Build(t, AttrMask());
  PortableLabel portable = MakePortable(native, t);
  auto bound = BoundPortableLabel::Bind(portable, t);
  ASSERT_TRUE(bound.ok());
  FullPatternIndex index = FullPatternIndex::Build(t);
  for (int64_t i = 0; i < index.num_patterns(); ++i) {
    EXPECT_NEAR(bound->EstimateFullPattern(index.codes(i), index.width()),
                native.EstimateFullPattern(index.codes(i), index.width()),
                1e-9);
  }
}

TEST(BoundLabelTest, UnknownLabelValuesPredictZero) {
  // Build the label on a 2-value domain, bind to a table missing one value.
  auto b1 = TableBuilder::Create({"a", "b"});
  PCBL_CHECK(b1.ok());
  PCBL_CHECK(b1->AddRow({"x", "p"}).ok());
  PCBL_CHECK(b1->AddRow({"y", "q"}).ok());
  PCBL_CHECK(b1->AddRow({"y", "p"}).ok());
  Table t1 = b1->Build();
  Label native = Label::Build(t1, AttrMask::FromIndices({0, 1}));
  PortableLabel portable = MakePortable(native, t1);

  auto b2 = TableBuilder::Create({"a", "b"});
  PCBL_CHECK(b2.ok());
  PCBL_CHECK(b2->AddRow({"x", "p"}).ok());
  PCBL_CHECK(b2->AddRow({"x", "p"}).ok());
  Table t2 = b2->Build();

  auto bound = BoundPortableLabel::Bind(portable, t2);
  ASSERT_TRUE(bound.ok());
  // (x, p) exists in both: the label's stored count answers.
  auto p = Pattern::Parse(t2, {{"a", "x"}, {"b", "p"}});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(bound->EstimateCount(*p), 1.0);
}

TEST(BoundLabelTest, DriftShowsUpAsError) {
  // Label built at 2000 rows, data regenerated at 3000: binding succeeds
  // and the error report reflects the count drift.
  Table old_data = workload::MakeCompas(2000, 7).value();
  Table new_data = workload::MakeCompas(3000, 7).value();
  Label native = Label::Build(old_data, AttrMask::FromIndices({0, 2}));
  PortableLabel portable = MakePortable(native, old_data);
  auto bound = BoundPortableLabel::Bind(portable, new_data);
  ASSERT_TRUE(bound.ok());
  FullPatternIndex index = FullPatternIndex::Build(new_data);
  ErrorReport report =
      EvaluateOverFullPatterns(index, *bound, ErrorMode::kExact);
  EXPECT_GT(report.max_abs, 0.0);
}

TEST(BoundLabelTest, LabelTotalRowsPreserved) {
  Table t = workload::MakeFig2Demo();
  Label native = Label::Build(t, AttrMask::FromIndices({1, 3}));
  PortableLabel portable = MakePortable(native, t);
  auto bound = BoundPortableLabel::Bind(portable, t);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound->label_total_rows(), 18);
  EXPECT_EQ(bound->FootprintEntries(), native.size());
  EXPECT_EQ(bound->attributes(), native.attributes());
}

}  // namespace
}  // namespace pcbl
