// Tests for the NP-hardness reduction (Theorem 2.17 / appendix A):
// structural lemmas A.5 and A.8, and the end-to-end equivalence of
// Proposition A.4 on exhaustive families of small graphs.
#include "theory/reduction.h"

#include <gtest/gtest.h>

#include "core/label.h"
#include "pattern/counter.h"
#include "relation/stats.h"
#include "theory/graph.h"

namespace pcbl {
namespace theory {
namespace {

Graph PathGraph(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) {
    PCBL_CHECK(g.AddEdge(i, i + 1).ok());
  }
  return g;
}

Graph TriangleGraph() {
  Graph g(3);
  PCBL_CHECK(g.AddEdge(0, 1).ok());
  PCBL_CHECK(g.AddEdge(1, 2).ok());
  PCBL_CHECK(g.AddEdge(0, 2).ok());
  return g;
}

TEST(GraphTest, BasicInvariants) {
  Graph g(4);
  EXPECT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_TRUE(g.AddEdge(2, 1).ok());
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.AddEdge(0, 0).ok());   // self-loop
  EXPECT_FALSE(g.AddEdge(0, 1).ok());   // duplicate
  EXPECT_FALSE(g.AddEdge(1, 0).ok());   // duplicate reversed
  EXPECT_FALSE(g.AddEdge(0, 9).ok());   // out of range
}

TEST(VertexCoverTest, KnownCovers) {
  // Path v0-v1-v2: min cover {v1}.
  EXPECT_EQ(MinVertexCoverSize(PathGraph(3)), 1);
  // Triangle: min cover size 2.
  EXPECT_EQ(MinVertexCoverSize(TriangleGraph()), 2);
  // Path of 5: covers {v1, v3}.
  EXPECT_EQ(MinVertexCoverSize(PathGraph(5)), 2);
  EXPECT_TRUE(HasVertexCoverOfSize(TriangleGraph(), 2));
  EXPECT_FALSE(HasVertexCoverOfSize(TriangleGraph(), 1));
  EXPECT_TRUE(IsVertexCover(PathGraph(3), 0b010));
  EXPECT_FALSE(IsVertexCover(PathGraph(3), 0b001));
}

TEST(ReductionTest, RejectsDegenerateInputs) {
  Graph no_edges(3);
  EXPECT_FALSE(BuildReduction(no_edges).ok());
  Graph tiny(1);
  EXPECT_FALSE(BuildReduction(tiny).ok());
  Graph one_edge(2);
  ASSERT_TRUE(one_edge.AddEdge(0, 1).ok());
  EXPECT_FALSE(BuildReduction(one_edge).ok());
}

TEST(ReductionTest, Fig12ExampleStructure) {
  // The appendix's example: path v1-v2-v3 (edges e1={v1,v2}, e2={v2,v3}).
  Graph g = PathGraph(3);
  auto inst = BuildReduction(g);
  ASSERT_TRUE(inst.ok()) << inst.status();
  const Table& t = inst->table;
  EXPECT_EQ(t.num_attributes(), 4);  // A1, A2, A3, AE
  // |D| = edge blocks 2*4*2 = 16, edge pair blocks 2*2*8 = 32,
  // non-edge pair (v1,v3) 4*2 = 8; total 56.
  EXPECT_EQ(t.num_rows(), 56);
  EXPECT_EQ(inst->patterns.size(), 2u);

  // Lemma A.5 premises: c_D(p) = |E| for each pattern in P.
  for (size_t i = 0; i < inst->patterns.size(); ++i) {
    EXPECT_EQ(CountMatches(t, inst->patterns[i]), 2);
    EXPECT_EQ(inst->pattern_counts[i], 2);
  }
  // Vertex attributes are balanced: sel(x1) = 1/2.
  ValueCounts vc = ValueCounts::Compute(t);
  for (int a = 0; a < 3; ++a) {
    EXPECT_EQ(vc.Count(a, 0), vc.Count(a, 1)) << "A" << a + 1;
  }
  // Each A_E value occurs 4|E| = 8 times.
  for (ValueId v = 0; v < t.DomainSize(3); ++v) {
    EXPECT_EQ(vc.Count(3, v), 8);
  }
}

TEST(ReductionTest, LemmaA5CoverDirection) {
  // S = {A_E, A_i} with v_i covering the edge gives exact (error 0)
  // estimates; S missing A_E or missing both endpoints does not.
  Graph g = PathGraph(3);
  auto inst = BuildReduction(g);
  ASSERT_TRUE(inst.ok());
  const Table& t = inst->table;
  auto vc = std::make_shared<const ValueCounts>(ValueCounts::Compute(t));
  const int ae = inst->edge_attribute;

  // v_1 (attr 1) covers both edges of the path.
  Label cover_label = Label::Build(t, AttrMask::FromIndices({1, ae}), vc);
  for (size_t i = 0; i < inst->patterns.size(); ++i) {
    EXPECT_NEAR(cover_label.EstimateCount(inst->patterns[i]),
                static_cast<double>(inst->pattern_counts[i]), 1e-9);
  }

  // {A_1, A_2} without A_E over-estimates (Lemma A.5's second case:
  // error |E| + 1).
  Label no_ae = Label::Build(t, AttrMask::FromIndices({0, 1}), vc);
  double est = no_ae.EstimateCount(inst->patterns[0]);
  EXPECT_NEAR(est, 2.0 * 2 + 1, 1e-9);  // 2|E| + 1 with |E| = 2
  // VC-only estimate is |E|^2 + something > |E| (third case).
  Label vc_only = Label::Build(t, AttrMask(), vc);
  EXPECT_GT(vc_only.EstimateCount(inst->patterns[0]),
            static_cast<double>(inst->pattern_counts[0]));
}

TEST(ReductionTest, LemmaA8LabelSize) {
  // |L_S(D)| = 2|E'| + 4*Σ_{i=1}^{k-1} i for S = {A_E} ∪ k vertex attrs,
  // where E' is the set of edges covered by S's vertices.
  Graph g = TriangleGraph();
  auto inst = BuildReduction(g);
  ASSERT_TRUE(inst.ok());
  const Table& t = inst->table;
  const int ae = inst->edge_attribute;
  // k = 1: S = {AE, A0}; A0 covers edges {0,1} and {0,2} -> |E'| = 2.
  EXPECT_EQ(CountDistinctPatterns(t, AttrMask::FromIndices({ae, 0})),
            2 * 2);
  // k = 2: S = {AE, A0, A1}; covers all 3 edges -> 2*3 + 4*1 = 10.
  EXPECT_EQ(
      CountDistinctPatterns(t, AttrMask::FromIndices({ae, 0, 1})), 10);
  // k = 3: all edges covered -> 2*3 + 4*(1+2) = 18.
  EXPECT_EQ(
      CountDistinctPatterns(t, AttrMask::FromIndices({ae, 0, 1, 2})), 18);
}

TEST(ReductionTest, SizeBoundFormula) {
  Graph g = TriangleGraph();
  EXPECT_EQ(ReductionSizeBound(g, 1), 6);   // 2*3 + 0
  EXPECT_EQ(ReductionSizeBound(g, 2), 10);  // 2*3 + 4*1
  EXPECT_EQ(ReductionSizeBound(g, 3), 18);  // 2*3 + 4*3
}

// Proposition A.4 — both directions, on an exhaustive family of graphs.
struct GraphCase {
  const char* name;
  Graph (*make)();
  int k;
  bool expect_cover;
};

Graph MakePath3() { return PathGraph(3); }
Graph MakePath4() { return PathGraph(4); }
Graph MakeTriangle() { return TriangleGraph(); }
Graph MakeStar4() {
  Graph g(4);
  PCBL_CHECK(g.AddEdge(0, 1).ok());
  PCBL_CHECK(g.AddEdge(0, 2).ok());
  PCBL_CHECK(g.AddEdge(0, 3).ok());
  return g;
}
Graph MakeSquare() {
  Graph g(4);
  PCBL_CHECK(g.AddEdge(0, 1).ok());
  PCBL_CHECK(g.AddEdge(1, 2).ok());
  PCBL_CHECK(g.AddEdge(2, 3).ok());
  PCBL_CHECK(g.AddEdge(0, 3).ok());
  return g;
}
Graph MakeTwoEdges() {
  Graph g(4);
  PCBL_CHECK(g.AddEdge(0, 1).ok());
  PCBL_CHECK(g.AddEdge(2, 3).ok());
  return g;
}

class PropositionA4Test : public ::testing::TestWithParam<GraphCase> {};

TEST_P(PropositionA4Test, LabelExistsIffVertexCoverExists) {
  const GraphCase& c = GetParam();
  Graph g = c.make();
  ASSERT_EQ(HasVertexCoverOfSize(g, c.k), c.expect_cover) << c.name;
  auto inst = BuildReduction(g);
  ASSERT_TRUE(inst.ok()) << inst.status();
  bool label_exists =
      ExistsZeroErrorLabel(*inst, ReductionSizeBound(g, c.k));
  EXPECT_EQ(label_exists, c.expect_cover) << c.name << " k=" << c.k;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PropositionA4Test,
    ::testing::Values(
        GraphCase{"path3-k1", &MakePath3, 1, true},
        GraphCase{"path4-k1", &MakePath4, 1, false},
        GraphCase{"path4-k2", &MakePath4, 2, true},
        GraphCase{"triangle-k1", &MakeTriangle, 1, false},
        GraphCase{"triangle-k2", &MakeTriangle, 2, true},
        GraphCase{"star4-k1", &MakeStar4, 1, true},
        GraphCase{"square-k1", &MakeSquare, 1, false},
        GraphCase{"square-k2", &MakeSquare, 2, true},
        GraphCase{"two-edges-k1", &MakeTwoEdges, 1, false},
        GraphCase{"two-edges-k2", &MakeTwoEdges, 2, true}),
    [](const ::testing::TestParamInfo<GraphCase>& info) {
      std::string name = info.param.name;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace theory
}  // namespace pcbl
