// End-to-end integration tests: the full pipeline from dataset to label,
// Proposition 3.2's monotonicity claim validated empirically (the paper's
// Sec. IV-E experiment in miniature), and the PCBL-vs-baselines ordering
// that Figs. 4-5 report.
#include <gtest/gtest.h>

#include "baselines/postgres.h"
#include "baselines/sampling.h"
#include "core/portable_label.h"
#include "core/render.h"
#include "core/search.h"
#include "pcbl/pcbl.h"
#include "util/rng.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

TEST(PipelineTest, CsvToLabelToJsonRoundTrip) {
  // The full user journey: CSV in, search, portable label out, estimates
  // from the detached label.
  Table t = workload::MakeFig2Demo();
  std::string csv = WriteCsvString(t);
  auto loaded = ReadCsvString(csv);
  ASSERT_TRUE(loaded.ok());

  LabelSearch search(*loaded);
  SearchOptions options;
  options.size_bound = 5;
  SearchResult result = search.TopDown(options);

  PortableLabel portable = MakePortable(result.label, *loaded, "demo");
  auto back = PortableLabelFromJson(ToJson(portable));
  ASSERT_TRUE(back.ok());
  // Every full pattern's estimate survives the round trip.
  FullPatternIndex idx = FullPatternIndex::Build(*loaded);
  for (int64_t i = 0; i < idx.num_patterns(); ++i) {
    Pattern p = idx.ToPattern(i);
    std::vector<std::pair<std::string, std::string>> named;
    for (const PatternTerm& term : p.terms()) {
      named.emplace_back(loaded->schema().name(term.attr),
                         loaded->dictionary(term.attr).GetString(term.value));
    }
    auto est = back->EstimateCount(named);
    ASSERT_TRUE(est.ok());
    EXPECT_NEAR(*est, result.label.EstimateCount(p), 1e-9);
  }
}

TEST(Proposition32Test, SupersetLabelsNoWorseInPractice) {
  // Sec. IV-E validates that labels from supersets of S have error at most
  // the error of labels from S. This holds on all three (synthetic)
  // datasets, which is what justifies Algorithm 1's parent pruning.
  struct Case {
    std::string name;
    Table table;
  };
  std::vector<Case> cases;
  cases.push_back({"bluenile", workload::MakeBlueNile(5000, 17).value()});
  cases.push_back({"compas", workload::MakeCompas(5000, 17).value()});
  cases.push_back({"creditcard", workload::MakeCreditCard(5000, 17).value()});
  Rng rng(99);
  for (auto& [name, t] : cases) {
    auto vc = std::make_shared<const ValueCounts>(ValueCounts::Compute(t));
    FullPatternIndex idx = FullPatternIndex::Build(t);
    for (int trial = 0; trial < 5; ++trial) {
      // Random S2 of size 3, S1 = S2 minus one attribute.
      AttrMask s2;
      while (s2.Count() < 3) {
        s2.Set(static_cast<int>(rng.UniformInt(
            static_cast<uint32_t>(t.num_attributes()))));
      }
      AttrMask s1 = s2;
      auto indices = s1.ToIndices();
      s1.Clear(indices[rng.UniformInt(static_cast<uint32_t>(
          indices.size()))]);
      LabelEstimator e1(Label::Build(t, s1, vc));
      LabelEstimator e2(Label::Build(t, s2, vc));
      ErrorReport r1 =
          EvaluateOverFullPatterns(idx, e1, ErrorMode::kExact);
      ErrorReport r2 =
          EvaluateOverFullPatterns(idx, e2, ErrorMode::kExact);
      EXPECT_LE(r2.max_abs, r1.max_abs * 1.05 + 1e-9)
          << name << " S1=" << s1.ToString() << " S2=" << s2.ToString();
    }
  }
}

TEST(BaselineOrderingTest, PcblBeatsSampleOfEqualFootprint) {
  // The Fig. 4/5 headline: at equal footprint, the searched label beats a
  // uniform sample on mean error.
  Table t = workload::MakeCompas(20000, 7).value();
  LabelSearch search(t);
  SearchOptions options;
  options.size_bound = 50;
  SearchResult result = search.TopDown(options);
  LabelEstimator pcbl(result.label);
  ErrorReport pcbl_err = EvaluateOverFullPatterns(
      search.full_patterns(), pcbl, ErrorMode::kExact);

  int64_t footprint =
      options.size_bound + search.value_counts().TotalEntries();
  double mean_sum = 0;
  const int kSeeds = 3;
  for (int seed = 0; seed < kSeeds; ++seed) {
    SamplingEstimator sample = SamplingEstimator::Build(
        t, footprint, static_cast<uint64_t>(seed) + 1);
    ErrorReport err = EvaluateOverFullPatterns(
        search.full_patterns(), sample, ErrorMode::kExact);
    mean_sum += err.mean_abs;
  }
  EXPECT_LT(pcbl_err.mean_abs, mean_sum / kSeeds);
}

TEST(BaselineOrderingTest, PcblAtLeastMatchesPostgresOnMaxError) {
  // The gray Postgres line in Fig. 4 sits above PCBL at bound 100 on all
  // three datasets.
  Table t = workload::MakeBlueNile(20000, 7).value();
  LabelSearch search(t);
  SearchOptions options;
  options.size_bound = 100;
  SearchResult result = search.TopDown(options);
  LabelEstimator pcbl(result.label);
  ErrorReport pcbl_err = EvaluateOverFullPatterns(
      search.full_patterns(), pcbl, ErrorMode::kExact);
  PostgresEstimator pg = PostgresEstimator::Build(t);
  ErrorReport pg_err = EvaluateOverFullPatterns(search.full_patterns(), pg,
                                                ErrorMode::kExact);
  EXPECT_LE(pcbl_err.max_abs, pg_err.max_abs + 1e-9);
}

TEST(RenderPipelineTest, SearchedLabelRenders) {
  Table t = workload::MakeCompas(3000, 3).value();
  LabelSearch search(t);
  SearchOptions options;
  options.size_bound = 30;
  SearchResult result = search.TopDown(options);
  PortableLabel portable = MakePortable(result.label, t, "COMPAS");
  std::string rendered = RenderNutritionLabel(portable, &result.error);
  EXPECT_NE(rendered.find("Total size: 3,000"), std::string::npos);
  EXPECT_NE(rendered.find("Maximal Error"), std::string::npos);
}

TEST(ScalingSmokeTest, AugmentedSearchStillAgrees) {
  // The Fig. 7 protocol at miniature scale: augmentation grows the data,
  // both algorithms still terminate and agree on error.
  Table t = workload::MakeCreditCard(1000, 3).value();
  Table big = AugmentWithRandomRows(t, 2000, 5).value();
  LabelSearch search(big);
  SearchOptions options;
  options.size_bound = 50;
  options.candidate_error_mode = ErrorMode::kExact;
  SearchResult naive = search.Naive(options);
  SearchResult top_down = search.TopDown(options);
  EXPECT_NEAR(naive.error.max_abs, top_down.error.max_abs, 1e-9);
}

}  // namespace
}  // namespace pcbl
