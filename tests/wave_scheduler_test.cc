// Tests for the cross-query wave scheduler (PR 5):
//
//  * the differential arm of the concurrency model — scheduler on/off ×
//    1..8 concurrent sessions over one shared service, byte-identical
//    labels against the serialized solo reference, and a full_scans
//    ceiling (concurrent sessions never scan more than one cold solo
//    search; the serialized arm stays *exactly* at the solo count);
//  * merged budgets: concurrent searches with different size bounds stay
//    byte-identical to their solo references (a wave folded into a more
//    generous budget may return exact values above a requester's bound —
//    still "> bound", so candidate sets cannot shift);
//  * the appended arm: an appender grows the shared service, then N
//    sessions search concurrently and every label matches a from-scratch
//    rebuild of the extended table;
//  * a deterministic forced merge: requests queued while the engine
//    mutex is held must coalesce into (at most two) merged waves with
//    deduped masks, every answer exact;
//  * eviction: a query on a service the registry evicted comes back as a
//    retryable kUnavailable and is logged in the registry stats.
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/dataset.h"
#include "api/query.h"
#include "api/session.h"
#include "core/search.h"
#include "pattern/counter.h"
#include "pattern/counting_service.h"
#include "pattern/service_registry.h"
#include "tests/differential_harness.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

using api::Dataset;
using api::DatasetOptions;
using api::QueryFuture;
using api::QueryResult;
using api::QuerySpec;
using api::Session;
using api::SessionOptions;
using testing::DifferentialHarness;
using testing::DifferentialWorkload;
using testing::RandomWorkload;

Dataset PrivateDataset(const Table& table) {
  DatasetOptions options;
  options.private_service = true;
  auto dataset = Dataset::FromTable(table, options);
  PCBL_CHECK(dataset.ok()) << dataset.status();
  return *dataset;
}

std::unique_ptr<Session> OpenSession(Dataset dataset,
                                     SessionOptions options = {}) {
  auto session = Session::Open(std::move(dataset), options);
  PCBL_CHECK(session.ok()) << session.status();
  return std::move(*session);
}

void ExpectSameSearchResult(const SearchResult& got,
                            const SearchResult& want,
                            const std::string& context) {
  EXPECT_EQ(got.best_attrs.bits(), want.best_attrs.bits()) << context;
  EXPECT_EQ(got.label.size(), want.label.size()) << context;
  EXPECT_EQ(got.label.total_rows(), want.label.total_rows()) << context;
  testing::ExpectSameGroupCounts(got.label.pattern_counts(),
                                 want.label.pattern_counts(), context);
  EXPECT_EQ(got.error.max_abs, want.error.max_abs) << context;
  EXPECT_EQ(got.error.mean_abs, want.error.mean_abs) << context;
  EXPECT_EQ(got.error.max_q, want.error.max_q) << context;
  EXPECT_EQ(got.error.evaluated, want.error.evaluated) << context;
}

// The differential arm: scheduler on/off × 1..8 concurrent sessions over
// one shared (private) service, every label byte-identical to a solo
// serialized search, full_scans bounded by one cold solo search.
TEST(WaveSchedulerTest, SchedulerGridMatchesSerializedAcrossSessions) {
  constexpr int64_t kRows = 1800;
  constexpr uint64_t kSeed = 67;
  constexpr int64_t kBound = 60;
  Table table = workload::MakeCompas(kRows, kSeed).value();

  // Solo serialized reference + the cold scan count that is the ceiling.
  SearchOptions reference_options;
  reference_options.size_bound = kBound;
  reference_options.use_wave_scheduler = false;
  LabelSearch reference(table);
  const SearchResult want = reference.TopDown(reference_options);
  const int64_t cold_full_scans =
      reference.counting_service()->stats().full_scans;
  ASSERT_GT(cold_full_scans, 0);

  for (const bool scheduler_on : {true, false}) {
    for (const int num_sessions : {1, 2, 4, 8}) {
      const std::string arm =
          std::string(scheduler_on ? "scheduler" : "serialized") + "/x" +
          std::to_string(num_sessions);
      Dataset dataset = PrivateDataset(table);  // one service per arm
      SessionOptions options;
      options.num_threads = 1;
      options.use_wave_scheduler = scheduler_on;
      std::vector<std::unique_ptr<Session>> sessions;
      std::vector<QueryFuture> futures;
      for (int i = 0; i < num_sessions; ++i) {
        sessions.push_back(OpenSession(dataset, options));
        auto future =
            sessions.back()->Submit(QuerySpec::LabelSearch(kBound));
        ASSERT_TRUE(future.ok()) << arm << ": " << future.status();
        futures.push_back(*future);
      }
      for (int i = 0; i < num_sessions; ++i) {
        const QueryResult& r = futures[static_cast<size_t>(i)].Get();
        ASSERT_TRUE(r.status.ok()) << arm << ": " << r.status;
        ExpectSameSearchResult(r.search, want,
                               arm + "/s" + std::to_string(i));
      }
      const int64_t full_scans =
          dataset.service()->StatsSnapshot().full_scans;
      if (scheduler_on) {
        // Merged waves + the warm cache: never more work than one cold
        // solo search (out-of-phase queries may even roll up and do
        // less).
        EXPECT_LE(full_scans, cold_full_scans) << arm;
        EXPECT_GT(full_scans, 0) << arm;
      } else {
        // The serialized arm reproduces the solo search exactly, N
        // times over one warm cache.
        EXPECT_EQ(full_scans, cold_full_scans) << arm;
      }
    }
  }
}

// Concurrent searches with different bounds: a merged wave runs under
// the most generous budget, which may turn early-exit abort values into
// exact ones — candidate sets, and therefore labels, must not move.
TEST(WaveSchedulerTest, MixedBoundsStayByteIdenticalUnderMerging) {
  Table table = workload::MakeCompas(1500, 71).value();
  const std::vector<int64_t> bounds = {30, 60, 120, 240};

  std::vector<SearchResult> want;
  for (const int64_t bound : bounds) {
    LabelSearch solo(table);
    SearchOptions options;
    options.size_bound = bound;
    options.use_wave_scheduler = false;
    want.push_back(solo.TopDown(options));
  }

  for (int round = 0; round < 3; ++round) {
    Dataset dataset = PrivateDataset(table);
    std::vector<std::unique_ptr<Session>> sessions;
    std::vector<QueryFuture> futures;
    for (const int64_t bound : bounds) {
      sessions.push_back(OpenSession(dataset));
      auto future = sessions.back()->Submit(QuerySpec::LabelSearch(bound));
      ASSERT_TRUE(future.ok()) << future.status();
      futures.push_back(*future);
    }
    for (size_t i = 0; i < bounds.size(); ++i) {
      const QueryResult& r = futures[i].Get();
      ASSERT_TRUE(r.status.ok()) << r.status;
      ExpectSameSearchResult(
          r.search, want[i],
          "bound " + std::to_string(bounds[i]) + " round " +
              std::to_string(round));
    }
  }
}

// The appended arm of the differential grid: an appender grows the
// shared service, then N concurrent sessions (the appender among them)
// search and every label must match a from-scratch rebuild of the
// extended table.
TEST(WaveSchedulerTest, ConcurrentSearchesAfterAppendMatchRebuild) {
  DifferentialWorkload workload = RandomWorkload(
      /*seed=*/203, /*attrs=*/4, /*base_rows=*/320, /*append_rows=*/60,
      /*domain=*/5, /*append_domain=*/8, /*null_percent=*/10);
  DifferentialHarness harness(std::move(workload));
  DifferentialWorkload rows = RandomWorkload(203, 4, 320, 60, 5, 8, 10);
  constexpr int64_t kBound = 40;

  SearchOptions reference_options;
  reference_options.size_bound = kBound;
  reference_options.use_wave_scheduler = false;
  LabelSearch rebuilt(harness.reference());
  const SearchResult want = rebuilt.TopDown(reference_options);

  Dataset dataset = PrivateDataset(harness.base());
  auto appender = OpenSession(dataset);
  for (const auto& row : rows.append_rows) {
    ASSERT_TRUE(appender->AppendRow(row).ok());
  }

  constexpr int kSiblings = 4;
  std::vector<std::unique_ptr<Session>> sessions;
  std::vector<QueryFuture> futures;
  for (int i = 0; i < kSiblings; ++i) {
    sessions.push_back(OpenSession(dataset));
    auto future = sessions.back()->Submit(QuerySpec::LabelSearch(kBound));
    ASSERT_TRUE(future.ok()) << future.status();
    futures.push_back(*future);
  }
  auto own = appender->Submit(QuerySpec::LabelSearch(kBound));
  ASSERT_TRUE(own.ok()) << own.status();
  for (int i = 0; i < kSiblings; ++i) {
    const QueryResult& r = futures[static_cast<size_t>(i)].Get();
    ASSERT_TRUE(r.status.ok()) << r.status;
    EXPECT_EQ(r.total_rows, harness.reference().num_rows());
    ExpectSameSearchResult(r.search, want,
                           "sibling " + std::to_string(i));
  }
  const QueryResult& r = own->Get();
  ASSERT_TRUE(r.status.ok()) << r.status;
  ExpectSameSearchResult(r.search, want, "appender");
}

// Deterministic merge: requests queued while the engine mutex is held
// must coalesce — at most two waves run (the first coordinator's batch
// and one merged batch of everything that queued behind it), masks are
// deduped across requests, and every answer is exact.
TEST(WaveSchedulerTest, ForcedMergeDedupesInFlightRequests) {
  Table table = workload::MakeCompas(800, 73).value();
  CountingService service(table);
  const AttrMask a = AttrMask::FromIndices({0, 1});
  const AttrMask b = AttrMask::FromIndices({1, 2});
  const AttrMask c = AttrMask::FromIndices({0, 2});
  const std::vector<std::vector<AttrMask>> requests = {
      {a, b}, {b, c}, {a, c}};

  std::vector<std::vector<int64_t>> sizes(requests.size());
  std::vector<std::thread> threads;
  {
    // Hold the engine mutex: the first coordinator blocks inside its
    // wave, everything else queues behind it.
    std::unique_lock<std::mutex> engine_lock(service.mutex());
    for (size_t i = 0; i < requests.size(); ++i) {
      threads.emplace_back([&, i] {
        sizes[i] = service.WaveCountPatterns(requests[i], /*budget=*/-1,
                                             CountingEngineOptions{});
      });
    }
    // All three requests admitted (the counter bumps at enqueue).
    while (service.wave_stats().requests < 3) {
      std::this_thread::yield();
    }
  }
  for (auto& t : threads) t.join();

  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_EQ(sizes[i].size(), requests[i].size());
    for (size_t j = 0; j < requests[i].size(); ++j) {
      EXPECT_EQ(sizes[i][j], CountDistinctPatterns(table, requests[i][j]))
          << "request " << i << " mask " << j;
    }
  }
  const WaveSchedulerStats stats = service.wave_stats();
  EXPECT_EQ(stats.requests, 3);
  EXPECT_LE(stats.waves, 2);
  EXPECT_GE(stats.merged_waves, 1);
  EXPECT_EQ(stats.request_masks, 6);
  EXPECT_LT(stats.executed_masks, stats.request_masks)
      << "in-flight duplicates were not deduped";
}

// Losing the race with registry eviction: the session's service stays
// exact for anything already running, but new queries are refused with a
// retryable kUnavailable (re-open the Dataset) and counted in the
// registry stats — not silently served from a detached service.
TEST(WaveSchedulerTest, EvictedServiceQueryReturnsRetryableUnavailable) {
  ServiceRegistry::Global().Clear();
  Table table = workload::MakeCompas(500, 79).value();
  auto dataset = Dataset::FromTable(table);  // registry-shared service
  ASSERT_TRUE(dataset.ok());
  auto session = OpenSession(*dataset);
  ASSERT_TRUE(session->Run(QuerySpec::LabelSearch(40)).status.ok());

  const int64_t rejections_before =
      ServiceRegistry::Global().stats().evicted_rejections;
  ServiceRegistry::Global().Clear();  // evicts + drains the held service
  ASSERT_TRUE(dataset->service()->evicted());

  QueryResult refused = session->Run(QuerySpec::LabelSearch(40));
  EXPECT_EQ(refused.status.code(), StatusCode::kUnavailable)
      << refused.status;
  QueryResult refused_count = session->Run(QuerySpec::TrueCount(
      {{table.schema().name(0), table.dictionary(0).GetString(0)}}));
  EXPECT_EQ(refused_count.status.code(), StatusCode::kUnavailable);
  EXPECT_GE(ServiceRegistry::Global().stats().evicted_rejections,
            rejections_before + 2);

  // Re-opening the Dataset acquires a fresh, findable service — the
  // retry the Status asks for.
  auto fresh = Dataset::FromTable(table);
  ASSERT_TRUE(fresh.ok());
  ASSERT_FALSE(fresh->service()->evicted());
  auto retried = OpenSession(*fresh);
  EXPECT_TRUE(retried->Run(QuerySpec::LabelSearch(40)).status.ok());
  ServiceRegistry::Global().Clear();
}

}  // namespace
}  // namespace pcbl
