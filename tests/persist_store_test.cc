// Format battery for the warm-start spill store (src/persist/,
// docs/PERSISTENCE.md):
//
//  * golden-bytes pinning — a handcrafted warm state and label record
//    encode to literal bytes checked hex-for-hex, and the pinned
//    literals decode back, so a v1 file written by any build of this
//    version stays readable by every later build (or the format bump is
//    a conscious kFormatVersion change);
//  * round-trips of every persisted structure, including a state
//    exported from a real appended-to service (interner deltas, delta
//    rows, pinned and unpinned cache entries);
//  * the hostile-file grid — truncation at every byte boundary, a
//    flipped bit at every position, wrong magic / version / record type
//    / fingerprint, oversized declared lengths with a *valid* checksum,
//    and semantically impossible values (out-of-domain keys, zero
//    counts, arity-1 masks, trailing bytes). Every load must return
//    nothing — the cold-fallback contract — and never crash or allocate
//    from an unvalidated length. CI runs this suite under ASan+UBSan.
#include "persist/spill_store.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "pattern/counter.h"
#include "pattern/counting_service.h"
#include "pattern/lattice.h"
#include "pattern/restriction_codec.h"
#include "pattern/service_registry.h"
#include "relation/table.h"
#include "tests/differential_harness.h"
#include "util/attr_mask.h"
#include "workload/datasets.h"

namespace pcbl {
namespace persist {
namespace {

std::string Hex(std::string_view bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

std::string FromHex(std::string_view hex) {
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    auto nibble = [](char c) -> unsigned {
      return c <= '9' ? static_cast<unsigned>(c - '0')
                      : static_cast<unsigned>(c - 'a') + 10;
    };
    out.push_back(static_cast<char>((nibble(hex[i]) << 4) |
                                    nibble(hex[i + 1])));
  }
  return out;
}

void PutU32(std::string* bytes, size_t offset, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*bytes)[offset + static_cast<size_t>(i)] =
        static_cast<char>(v >> (8 * i));
  }
}

void PutU64(std::string* bytes, size_t offset, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    (*bytes)[offset + static_cast<size_t>(i)] =
        static_cast<char>(v >> (8 * i));
  }
}

// Envelope field offsets (see spill_store.h's format comment).
constexpr size_t kMagicOff = 0;
constexpr size_t kVersionOff = 4;
constexpr size_t kTypeOff = 6;
constexpr size_t kFpLoOff = 8;
constexpr size_t kSizeOff = 24;
constexpr size_t kChecksumOff = 32;
constexpr size_t kPayloadOff =
    static_cast<size_t>(SpillStore::kEnvelopeBytes);

// Recomputes the envelope's payload size and checksum over the (possibly
// patched or grown) payload, so a corruption lands with a *valid*
// envelope — the decoder's own validation has to catch it.
void Reseal(std::string* bytes) {
  const std::string_view payload(bytes->data() + kPayloadOff,
                                 bytes->size() - kPayloadOff);
  PutU64(bytes, kSizeOff, payload.size());
  PutU64(bytes, kChecksumOff, SpillStore::Checksum(payload));
}

// The handcrafted golden fixture: two attributes, two base rows, one
// interner delta, one appended row, one two-attribute cache entry that
// covers base and appended data. Small enough to pin byte-for-byte and
// to sweep every truncation length and bit position.
constexpr TableFingerprint kGoldenFp{0x0123456789abcdefULL,
                                     0xfedcba9876543210ULL};

Table TinyTable() {
  auto builder = TableBuilder::Create({"color", "shape"});
  PCBL_CHECK(builder.ok());
  PCBL_CHECK(builder->AddRow({"red", "circle"}).ok());
  PCBL_CHECK(builder->AddRow({"blue", "circle"}).ok());
  return builder->Build();
}

ServiceWarmState TinyState() {
  ServiceWarmState state;
  // "green" extends color's base dictionary {red, blue}: code 2.
  state.interner_deltas = {{"green"}, {}};
  state.appended_rows = {2, 0};  // one row: green circle
  auto counts = std::make_shared<GroupCounts>();
  GroupCountsAccess::mask(*counts) = AttrMask::FromIndices({0, 1});
  GroupCountsAccess::attrs(*counts) = {0, 1};
  GroupCountsAccess::keys(*counts) = {0, 0, 1, 0, 2, 0};
  GroupCountsAccess::counts(*counts) = {1, 1, 1};
  CountingEngine::CacheSnapshotEntry entry;
  entry.mask_bits = counts->mask().bits();
  entry.pinned = true;
  entry.counts = std::move(counts);
  state.entries.push_back(std::move(entry));
  return state;
}

std::string GoldenWarmRecord() {
  return SpillStore::EncodeWarmState(kGoldenFp, TinyTable(), TinyState());
}

// Payload offsets of the golden warm record, chained from the format
// definition so a format change breaks these loudly alongside the
// golden bytes.
constexpr size_t kNumAttrsOff = kPayloadOff;             // u32 = 2
constexpr size_t kBaseRowsOff = kNumAttrsOff + 4;        // u64 = 2
constexpr size_t kDom0Off = kBaseRowsOff + 8;            // u64 = 2
constexpr size_t kAdded0Off = kDom0Off + 8;              // u64 = 1
constexpr size_t kDelta0LenOff = kAdded0Off + 8;         // u32 = 5 "green"
constexpr size_t kDom1Off = kDelta0LenOff + 4 + 5;       // u64 = 1
constexpr size_t kAdded1Off = kDom1Off + 8;              // u64 = 0
constexpr size_t kRowCountOff = kAdded1Off + 8;          // u64 = 1
constexpr size_t kRowsOff = kRowCountOff + 8;            // 2 x u32
constexpr size_t kNumEntriesOff = kRowsOff + 2 * 4;      // u32 = 1
constexpr size_t kMaskOff = kNumEntriesOff + 4;          // u64 = 3
constexpr size_t kPinnedOff = kMaskOff + 8;              // u8 = 1
constexpr size_t kGroupsOff = kPinnedOff + 1;            // u64 = 3
constexpr size_t kKeysOff = kGroupsOff + 8;              // 6 x u32
constexpr size_t kCountsOff = kKeysOff + 6 * 4;          // 3 x i64
constexpr size_t kGoldenSize = kCountsOff + 3 * 8;

void ExpectSameState(const ServiceWarmState& got,
                     const ServiceWarmState& want,
                     const std::string& context) {
  EXPECT_EQ(got.interner_deltas, want.interner_deltas) << context;
  EXPECT_EQ(got.appended_rows, want.appended_rows) << context;
  ASSERT_EQ(got.entries.size(), want.entries.size()) << context;
  for (size_t i = 0; i < got.entries.size(); ++i) {
    EXPECT_EQ(got.entries[i].mask_bits, want.entries[i].mask_bits)
        << context << " entry " << i;
    EXPECT_EQ(got.entries[i].pinned, want.entries[i].pinned)
        << context << " entry " << i;
    ASSERT_NE(got.entries[i].counts, nullptr) << context << " entry " << i;
    ASSERT_NE(want.entries[i].counts, nullptr) << context << " entry " << i;
    testing::ExpectSameGroupCounts(*got.entries[i].counts,
                                   *want.entries[i].counts,
                                   context + " entry " +
                                       std::to_string(i));
  }
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "pcbl_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// --- golden bytes -----------------------------------------------------------

// The v1 warm-state record of the golden fixture, hex, byte for byte.
// A mismatch means the on-disk format changed: readers of existing
// spill directories will silently reject every old file (safe, but all
// warmth is lost). If the change is intentional, bump
// SpillStore::kFormatVersion and repin.
constexpr char kWarmGoldenHex[] =
    "5043425301000100"                   // magic "PCBS", v1, warm record
    "efcdab8967452301" "1032547698badcfe"  // fingerprint lo, hi
    "8a00000000000000"                   // payload size 138
    "495f18c47f0ddc87"                   // payload checksum
    "02000000" "0200000000000000"        // 2 attrs, 2 base rows
    "0200000000000000" "0100000000000000"  // color: dom 2, 1 delta
    "05000000" "677265656e"              // "green"
    "0100000000000000" "0000000000000000"  // shape: dom 1, 0 deltas
    "0100000000000000" "02000000" "00000000"  // 1 appended row: 2, 0
    "01000000"                           // 1 cache entry
    "0300000000000000" "01"              // mask {0,1}, pinned
    "0300000000000000"                   // 3 groups
    "00000000" "00000000" "01000000" "00000000" "02000000" "00000000"
    "010000000000000001000000000000000100000000000000";  // counts 1,1,1

TEST(SpillFormatTest, WarmStateGoldenBytes) {
  const std::string bytes = GoldenWarmRecord();
  ASSERT_EQ(bytes.size(), kGoldenSize);
  EXPECT_EQ(Hex(bytes), kWarmGoldenHex)
      << "the v1 on-disk warm-state format changed; bump kFormatVersion "
         "and repin if intentional";
}

TEST(SpillFormatTest, PinnedGoldenBytesStillDecode) {
  // The other direction of the pin: the literal (i.e. a file written by
  // any build of v1) must keep decoding into the exact state.
  const std::string bytes = FromHex(kWarmGoldenHex);
  const std::optional<ServiceWarmState> state = SpillStore::DecodeWarmState(
      bytes, kGoldenFp, TinyTable(), /*base_only=*/false);
  ASSERT_TRUE(state.has_value());
  ExpectSameState(*state, TinyState(), "golden");
}

TEST(SpillFormatTest, LabelRecordGoldenBytes) {
  const QueryResultKey key{0x1111111111111111ULL, 0x2222222222222222ULL};
  const std::string bytes =
      SpillStore::EncodeLabelRecord(kGoldenFp, key, "label-bytes");
  EXPECT_EQ(Hex(bytes),
            "5043425301000200"                   // magic, v1, label record
            "efcdab8967452301" "1032547698badcfe"  // fingerprint lo, hi
            "1f00000000000000"                   // payload size 31
            "c33bebd4482019a6"                   // payload checksum
            "1111111111111111" "2222222222222222"  // query key lo, hi
            "0b000000" "6c6162656c2d6279746573")  // "label-bytes"
      << "the v1 label-record format changed; bump kFormatVersion and "
         "repin if intentional";
  const std::optional<std::string> label =
      SpillStore::DecodeLabelRecord(bytes, kGoldenFp, key);
  ASSERT_TRUE(label.has_value());
  EXPECT_EQ(*label, "label-bytes");
}

// --- round-trips ------------------------------------------------------------

TEST(SpillFormatTest, EmptyWarmStateRoundTrips) {
  const Table table = TinyTable();
  ServiceWarmState empty;
  EXPECT_TRUE(empty.empty());
  const std::string bytes =
      SpillStore::EncodeWarmState(kGoldenFp, table, empty);
  const std::optional<ServiceWarmState> state = SpillStore::DecodeWarmState(
      bytes, kGoldenFp, table, /*base_only=*/true);
  ASSERT_TRUE(state.has_value());
  EXPECT_TRUE(state->empty());
}

TEST(SpillFormatTest, ServiceExportedStateRoundTrips) {
  // A state exported from a real service that absorbed string-level
  // appends with fresh values: interner deltas, delta rows, and a mix
  // of pinned and unpinned cache entries all survive the byte codec.
  const testing::DifferentialWorkload workload = testing::RandomWorkload(
      /*seed=*/17, /*attrs=*/4, /*base_rows=*/200, /*append_rows=*/30,
      /*domain=*/5, /*append_domain=*/8, /*null_percent=*/10);
  const testing::DifferentialHarness harness(workload);
  const Table& base = harness.base();
  auto service = std::make_shared<CountingService>(
      std::make_shared<const Table>(base));
  {
    std::lock_guard<std::mutex> lock(service->mutex());
    service->engine().PatternCounts(AttrMask::FromIndices({0, 1}));
    service->engine().PinnedPatternCounts(AttrMask::FromIndices({1, 2}));
    service->engine().PatternCounts(AttrMask::FromIndices({0, 2, 3}));
  }
  ASSERT_TRUE(service->AppendStrings(workload.append_rows).ok());

  const ServiceWarmState want = service->ExportWarmState();
  ASSERT_FALSE(want.empty());
  const TableFingerprint fp = FingerprintTable(base);
  const std::string bytes = SpillStore::EncodeWarmState(fp, base, want);
  const std::optional<ServiceWarmState> got = SpillStore::DecodeWarmState(
      bytes, fp, base, /*base_only=*/false);
  ASSERT_TRUE(got.has_value());
  ExpectSameState(*got, want, "service export");
}

// --- hostile files ----------------------------------------------------------

TEST(SpillHostileTest, TruncationAtEveryLengthRejects) {
  const Table table = TinyTable();
  const std::string bytes = GoldenWarmRecord();
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(SpillStore::DecodeWarmState(bytes.substr(0, len),
                                             kGoldenFp, table,
                                             /*base_only=*/false)
                     .has_value())
        << "truncated to " << len << " bytes";
  }
  const QueryResultKey key{7, 9};
  const std::string label =
      SpillStore::EncodeLabelRecord(kGoldenFp, key, "payload");
  for (size_t len = 0; len < label.size(); ++len) {
    EXPECT_FALSE(SpillStore::DecodeLabelRecord(label.substr(0, len),
                                               kGoldenFp, key)
                     .has_value())
        << "label truncated to " << len << " bytes";
  }
}

TEST(SpillHostileTest, EveryBitFlipRejects) {
  const Table table = TinyTable();
  const std::string bytes = GoldenWarmRecord();
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = bytes;
      flipped[pos] = static_cast<char>(flipped[pos] ^ (1 << bit));
      EXPECT_FALSE(SpillStore::DecodeWarmState(flipped, kGoldenFp, table,
                                               /*base_only=*/false)
                       .has_value())
          << "bit " << bit << " of byte " << pos;
    }
  }
}

TEST(SpillHostileTest, WrongMagicVersionTypeOrFingerprintRejects) {
  const Table table = TinyTable();
  const std::string bytes = GoldenWarmRecord();
  {
    std::string wrong = bytes;
    PutU32(&wrong, kMagicOff, SpillStore::kMagic + 1);
    EXPECT_FALSE(SpillStore::DecodeWarmState(wrong, kGoldenFp, table, false)
                     .has_value());
  }
  {
    // A future format version never half-decodes through a v1 reader.
    std::string wrong = bytes;
    wrong[kVersionOff] =
        static_cast<char>(SpillStore::kFormatVersion + 1);
    EXPECT_FALSE(SpillStore::DecodeWarmState(wrong, kGoldenFp, table, false)
                     .has_value());
  }
  {
    // Record-type confusion: a warm state read as a label (and vice
    // versa) is refused by the type field, not by luck downstream.
    EXPECT_FALSE(
        SpillStore::DecodeLabelRecord(bytes, kGoldenFp, QueryResultKey{})
            .has_value());
    std::string wrong = bytes;
    wrong[kTypeOff] = static_cast<char>(SpillStore::kLabelRecord);
    EXPECT_FALSE(SpillStore::DecodeWarmState(wrong, kGoldenFp, table, false)
                     .has_value());
  }
  {
    std::string wrong = bytes;
    PutU64(&wrong, kFpLoOff, kGoldenFp.lo ^ 1);
    EXPECT_FALSE(SpillStore::DecodeWarmState(wrong, kGoldenFp, table, false)
                     .has_value());
  }
  // The right bytes under the wrong key: a record keyed for different
  // content never restores, even though it is internally valid.
  EXPECT_FALSE(SpillStore::DecodeWarmState(
                   bytes, TableFingerprint{1, 2}, table, false)
                   .has_value());
}

TEST(SpillHostileTest, OversizedDeclaredLengthsRejectBeforeAllocation) {
  // Every length field patched to an absurd value with the checksum
  // *resealed*: only the decoder's remaining-bytes validation stands
  // between the lie and a multi-gigabyte allocation. ASan would flag
  // the allocation; the assertion flags the acceptance.
  const Table table = TinyTable();
  const std::string bytes = GoldenWarmRecord();
  const struct {
    size_t offset;
    int width;
    const char* what;
  } kLies[] = {
      {kAdded0Off, 8, "interner delta count"},
      {kDelta0LenOff, 4, "delta string length"},
      {kRowCountOff, 8, "appended row count"},
      {kNumEntriesOff, 4, "cache entry count"},
      {kGroupsOff, 8, "group count"},
  };
  for (const auto& lie : kLies) {
    std::string evil = bytes;
    if (lie.width == 4) {
      PutU32(&evil, lie.offset, 0xffffffffu);
    } else {
      PutU64(&evil, lie.offset, uint64_t{1} << 60);
    }
    Reseal(&evil);
    EXPECT_FALSE(SpillStore::DecodeWarmState(evil, kGoldenFp, table, false)
                     .has_value())
        << "oversized " << lie.what << " was accepted";
  }
  // Same discipline on the label side.
  const QueryResultKey key{3, 4};
  std::string label = SpillStore::EncodeLabelRecord(kGoldenFp, key, "x");
  PutU32(&label, kPayloadOff + 16, 0xffffffffu);
  Reseal(&label);
  EXPECT_FALSE(SpillStore::DecodeLabelRecord(label, kGoldenFp, key)
                   .has_value());
}

TEST(SpillHostileTest, SemanticallyImpossibleValuesReject) {
  const Table table = TinyTable();
  const std::string bytes = GoldenWarmRecord();
  const auto rejects = [&](std::string evil, const char* what) {
    Reseal(&evil);
    EXPECT_FALSE(SpillStore::DecodeWarmState(evil, kGoldenFp, table, false)
                     .has_value())
        << what;
  };
  {
    // A cached key outside the attribute's effective domain would index
    // out of bounds the first time the engine patches the entry.
    std::string evil = bytes;
    PutU32(&evil, kKeysOff, 99);
    rejects(std::move(evil), "out-of-domain key code");
  }
  {
    std::string evil = bytes;
    PutU64(&evil, kCountsOff, 0);
    rejects(std::move(evil), "zero group count");
  }
  {
    // The cache never holds arity-0/1 subsets.
    std::string evil = bytes;
    PutU64(&evil, kMaskOff, 1);
    rejects(std::move(evil), "arity-1 mask");
  }
  {
    // Mask bits beyond the schema's attribute count.
    std::string evil = bytes;
    PutU64(&evil, kMaskOff, 0b111);
    rejects(std::move(evil), "mask beyond schema");
  }
  {
    // An appended code that skips over the next mintable code cannot
    // have come from a genuine export.
    std::string evil = bytes;
    PutU32(&evil, kRowsOff, 7);
    rejects(std::move(evil), "domain-skipping appended code");
  }
  {
    // Trailing bytes after a structurally complete payload (resealed,
    // so only the remaining()==0 check can catch the padding).
    std::string evil = bytes + std::string(3, '\0');
    rejects(std::move(evil), "trailing bytes");
  }
  {
    // Schema mismatch: the record is valid but describes another table.
    const Table other = workload::MakeCompas(50, 3).value();
    EXPECT_FALSE(SpillStore::DecodeWarmState(bytes, kGoldenFp, other, false)
                     .has_value());
  }
}

TEST(SpillHostileTest, BaseOnlyRefusesDivergedRecords) {
  // The registry's acquire path restores base-content services only: a
  // structurally valid record carrying appended rows or interner deltas
  // must be refused there, while the full restore path accepts it.
  const Table table = TinyTable();
  const std::string bytes = GoldenWarmRecord();
  EXPECT_TRUE(SpillStore::DecodeWarmState(bytes, kGoldenFp, table,
                                          /*base_only=*/false)
                  .has_value());
  EXPECT_FALSE(SpillStore::DecodeWarmState(bytes, kGoldenFp, table,
                                           /*base_only=*/true)
                   .has_value());
  // Deltas alone (no rows) are already divergence.
  ServiceWarmState deltas_only;
  deltas_only.interner_deltas = {{"green"}, {}};
  const std::string delta_bytes =
      SpillStore::EncodeWarmState(kGoldenFp, table, deltas_only);
  EXPECT_FALSE(SpillStore::DecodeWarmState(delta_bytes, kGoldenFp, table,
                                           /*base_only=*/true)
                   .has_value());
}

// --- the file store ---------------------------------------------------------

TEST(SpillStoreTest, WarmStateRoundTripsThroughFiles) {
  SpillStoreOptions options;
  options.directory = FreshDir("store_roundtrip");
  SpillStore store(options);
  const Table table = TinyTable();

  // Cold directory: a miss, not a reject.
  EXPECT_FALSE(store.GetWarmState(kGoldenFp, table, false).has_value());
  EXPECT_EQ(store.stats().misses, 1);

  ASSERT_TRUE(store.PutWarmState(kGoldenFp, table, TinyState()));
  EXPECT_EQ(store.stats().spills, 1);
  EXPECT_GT(store.stats().spilled_bytes, 0);

  const std::optional<ServiceWarmState> state =
      store.GetWarmState(kGoldenFp, table, false);
  ASSERT_TRUE(state.has_value());
  ExpectSameState(*state, TinyState(), "file round trip");
  EXPECT_EQ(store.stats().hits, 1);
  EXPECT_EQ(store.stats().loaded_bytes, store.stats().spilled_bytes);

  // No temp file ever stays visible next to the published record.
  for (const auto& it :
       std::filesystem::directory_iterator(options.directory)) {
    EXPECT_EQ(it.path().extension(), ".pcbls") << it.path();
  }
}

TEST(SpillStoreTest, LabelArtifactRoundTripsThroughFiles) {
  SpillStoreOptions options;
  options.directory = FreshDir("store_label");
  SpillStore store(options);
  const QueryResultKey key{42, 43};
  EXPECT_FALSE(store.GetLabelArtifact(kGoldenFp, key).has_value());
  ASSERT_TRUE(store.PutLabelArtifact(kGoldenFp, key, "portable-label"));
  const std::optional<std::string> label =
      store.GetLabelArtifact(kGoldenFp, key);
  ASSERT_TRUE(label.has_value());
  EXPECT_EQ(*label, "portable-label");
  // A different query key over the same content is its own record.
  EXPECT_FALSE(
      store.GetLabelArtifact(kGoldenFp, QueryResultKey{42, 44}).has_value());
}

TEST(SpillStoreTest, CorruptFileOnDiskFallsBackCold) {
  SpillStoreOptions options;
  options.directory = FreshDir("store_corrupt");
  SpillStore store(options);
  const Table table = TinyTable();
  ASSERT_TRUE(store.PutWarmState(kGoldenFp, table, TinyState()));

  // Overwrite the published record with garbage of plausible size.
  {
    std::string garbage(200, '\x5a');
    std::filesystem::path path = store.WarmStatePath(kGoldenFp);
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(garbage.data(), 1, garbage.size(), f);
    std::fclose(f);
  }
  EXPECT_FALSE(store.GetWarmState(kGoldenFp, table, false).has_value());
  EXPECT_EQ(store.stats().rejects, 1);
  EXPECT_EQ(store.stats().hits, 0);

  // A rewrite repairs the slot (atomic replace, last writer wins).
  ASSERT_TRUE(store.PutWarmState(kGoldenFp, table, TinyState()));
  EXPECT_TRUE(store.GetWarmState(kGoldenFp, table, false).has_value());
}

TEST(SpillStoreTest, OverwriteIsAtomicLastWriterWins) {
  SpillStoreOptions options;
  options.directory = FreshDir("store_overwrite");
  SpillStore store(options);
  const Table table = TinyTable();
  ASSERT_TRUE(store.PutWarmState(kGoldenFp, table, ServiceWarmState{}));
  ASSERT_TRUE(store.PutWarmState(kGoldenFp, table, TinyState()));
  const std::optional<ServiceWarmState> state =
      store.GetWarmState(kGoldenFp, table, false);
  ASSERT_TRUE(state.has_value());
  ExpectSameState(*state, TinyState(), "last writer");
}

TEST(SpillStoreTest, ByteBudgetTrimsOldestFiles) {
  SpillStoreOptions options;
  options.directory = FreshDir("store_budget");
  SpillStore store(options);
  const QueryResultKey old_key{1, 0};
  const std::string blob(512, 'x');
  ASSERT_TRUE(store.PutLabelArtifact(kGoldenFp, old_key, blob));
  // Age the first record well past any filesystem timestamp granularity.
  std::filesystem::last_write_time(
      store.LabelPath(kGoldenFp, old_key),
      std::filesystem::file_time_type::clock::now() -
          std::chrono::hours(1));

  // Shrink the budget to roughly one record and write two more: each
  // write trims oldest-first, so the aged record goes and the newest
  // always survives (TrimToBudget never deletes the file just written).
  // Mutating options after construction is not part of the API, so use
  // a second store over the same directory with the small budget.
  SpillStoreOptions tight = options;
  tight.budget_bytes = 700;
  SpillStore enforcer(tight);
  ASSERT_TRUE(enforcer.PutLabelArtifact(kGoldenFp, QueryResultKey{2, 0},
                                        blob));
  ASSERT_TRUE(enforcer.PutLabelArtifact(kGoldenFp, QueryResultKey{3, 0},
                                        blob));
  EXPECT_GE(enforcer.stats().trimmed_files, 1);
  EXPECT_FALSE(enforcer.GetLabelArtifact(kGoldenFp, old_key).has_value());
  EXPECT_TRUE(
      enforcer.GetLabelArtifact(kGoldenFp, QueryResultKey{3, 0}).has_value());
}

}  // namespace
}  // namespace persist
}  // namespace pcbl
