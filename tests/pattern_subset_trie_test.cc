// Unit and randomized-differential tests for the SubsetTrie behind the
// CountingEngine's rollup ancestor lookup.
#include "pattern/subset_trie.h"

#include <map>
#include <optional>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace pcbl {
namespace {

TEST(SubsetTrieTest, FindsStrictSupersetOnly) {
  SubsetTrie trie;
  const AttrMask s = AttrMask::FromIndices({1, 3});
  trie.Insert(s, 5);
  // The entry equal to the query never matches (strictness).
  EXPECT_FALSE(trie.BestStrictSuperset(s, 1000).has_value());
  trie.Insert(AttrMask::FromIndices({1, 3, 4}), 9);
  auto match = trie.BestStrictSuperset(s, 1000);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->mask, AttrMask::FromIndices({1, 3, 4}));
  EXPECT_EQ(match->weight, 9);
}

TEST(SubsetTrieTest, PicksMinimumWeightAndHonoursLimit) {
  SubsetTrie trie;
  trie.Insert(AttrMask::FromIndices({0, 1, 2}), 40);
  trie.Insert(AttrMask::FromIndices({0, 1, 3}), 25);
  trie.Insert(AttrMask::FromIndices({0, 1, 2, 3}), 90);
  auto match = trie.BestStrictSuperset(AttrMask::FromIndices({0, 1}), 1000);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->weight, 25);
  EXPECT_EQ(match->mask, AttrMask::FromIndices({0, 1, 3}));
  // Limit excludes everything at or above it.
  EXPECT_FALSE(
      trie.BestStrictSuperset(AttrMask::FromIndices({0, 1}), 25).has_value());
  auto capped =
      trie.BestStrictSuperset(AttrMask::FromIndices({0, 1}), 26);
  ASSERT_TRUE(capped.has_value());
  EXPECT_EQ(capped->weight, 25);
}

TEST(SubsetTrieTest, EraseAndReweight) {
  SubsetTrie trie;
  const AttrMask a = AttrMask::FromIndices({0, 2, 5});
  const AttrMask b = AttrMask::FromIndices({0, 2, 6});
  trie.Insert(a, 10);
  trie.Insert(b, 20);
  EXPECT_EQ(trie.num_entries(), 2);
  auto match = trie.BestStrictSuperset(AttrMask::FromIndices({0, 2}), 100);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->mask, a);
  trie.Erase(a);
  EXPECT_EQ(trie.num_entries(), 1);
  match = trie.BestStrictSuperset(AttrMask::FromIndices({0, 2}), 100);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->mask, b);
  // Insert on an existing mask updates the weight in place.
  trie.Insert(b, 3);
  EXPECT_EQ(trie.num_entries(), 1);
  match = trie.BestStrictSuperset(AttrMask::FromIndices({0, 2}), 100);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->weight, 3);
  trie.Clear();
  EXPECT_EQ(trie.num_entries(), 0);
  EXPECT_FALSE(
      trie.BestStrictSuperset(AttrMask::FromIndices({0, 2}), 100)
          .has_value());
}

TEST(SubsetTrieTest, RandomizedAgainstLinearScan) {
  Rng rng(2021);
  constexpr int kAttrs = 12;
  SubsetTrie trie;
  std::map<uint64_t, int64_t> reference;
  for (int step = 0; step < 4000; ++step) {
    const uint64_t bits = rng.UniformInt(1u << kAttrs);
    const AttrMask mask(bits);
    const int op = static_cast<int>(rng.UniformInt(4));
    if (op == 0 && !reference.empty() && rng.UniformInt(2) == 0) {
      trie.Erase(mask);
      reference.erase(bits);
    } else if (op <= 1) {
      const int64_t weight = static_cast<int64_t>(rng.UniformInt(500));
      trie.Insert(mask, weight);
      reference[bits] = weight;
    } else {
      const int64_t limit = static_cast<int64_t>(rng.UniformInt(600));
      // Brute-force best strict superset below the limit.
      std::optional<int64_t> best;
      for (const auto& [rbits, w] : reference) {
        if (rbits == bits) continue;
        if ((rbits & bits) != bits) continue;
        if (w >= limit) continue;
        if (!best.has_value() || w < *best) best = w;
      }
      auto got = trie.BestStrictSuperset(mask, limit);
      ASSERT_EQ(got.has_value(), best.has_value())
          << "mask " << mask.ToString() << " limit " << limit;
      if (best.has_value()) {
        EXPECT_EQ(got->weight, *best) << mask.ToString();
        // The returned mask must really be a cached strict superset of
        // that weight.
        EXPECT_TRUE(mask.IsStrictSubsetOf(got->mask));
        auto it = reference.find(got->mask.bits());
        ASSERT_NE(it, reference.end());
        EXPECT_EQ(it->second, got->weight);
      }
    }
    EXPECT_EQ(trie.num_entries(),
              static_cast<int64_t>(reference.size()));
  }
}

}  // namespace
}  // namespace pcbl
