// Tests for the two-level query-result tier (PR 6, DESIGN.md §5.7):
//
//  * the differential arm — cache on/off × 1..8 concurrent sessions,
//    every label byte-identical to a solo cache-disabled reference, with
//    the tier's hit/miss/join accounting consistent on the cached arm;
//  * deterministic in-flight dedup — K identical queries wedged behind a
//    held engine mutex must produce exactly one leader, K-1 parked
//    joiners, and no more engine work than one cold solo search;
//  * staleness — a cached result can never be served after an append
//    (every append arm invalidates before the data grows), on the
//    appending session and on a sibling alike;
//  * eviction under pressure — a byte budget sized for one entry evicts
//    LRU-first, keeps answers exact, and accounts the bytes;
//  * dedup-only mode — budget 0 parks concurrent identicals but caches
//    no completed results;
//  * the serialized arm — sessions holding the whole-service lock never
//    park on a leader (deadlock-free by construction), they bypass;
//  * true-count and profile queries ride the tier like searches do.
#include <algorithm>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/dataset.h"
#include "api/query.h"
#include "api/session.h"
#include "core/search.h"
#include "pattern/counting_service.h"
#include "pattern/service_registry.h"
#include "tests/differential_harness.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

using api::Dataset;
using api::DatasetOptions;
using api::QueryFuture;
using api::QueryResult;
using api::QuerySpec;
using api::Session;
using api::SessionOptions;
using testing::DifferentialHarness;
using testing::DifferentialWorkload;
using testing::RandomWorkload;

Dataset PrivateDataset(const Table& table) {
  DatasetOptions options;
  options.private_service = true;
  auto dataset = Dataset::FromTable(table, options);
  PCBL_CHECK(dataset.ok()) << dataset.status();
  return *dataset;
}

std::unique_ptr<Session> OpenSession(Dataset dataset,
                                     SessionOptions options = {}) {
  auto session = Session::Open(std::move(dataset), options);
  PCBL_CHECK(session.ok()) << session.status();
  return std::move(*session);
}

void ExpectSameSearchResult(const SearchResult& got,
                            const SearchResult& want,
                            const std::string& context) {
  EXPECT_EQ(got.best_attrs.bits(), want.best_attrs.bits()) << context;
  EXPECT_EQ(got.label.size(), want.label.size()) << context;
  EXPECT_EQ(got.label.total_rows(), want.label.total_rows()) << context;
  testing::ExpectSameGroupCounts(got.label.pattern_counts(),
                                 want.label.pattern_counts(), context);
  EXPECT_EQ(got.error.max_abs, want.error.max_abs) << context;
  EXPECT_EQ(got.error.mean_abs, want.error.mean_abs) << context;
  EXPECT_EQ(got.error.max_q, want.error.max_q) << context;
  EXPECT_EQ(got.error.evaluated, want.error.evaluated) << context;
}

// The differential arm: cache on/off × 1..8 concurrent sessions, every
// label byte-identical to the solo cache-disabled reference. On the
// cached arm each tier visit is exactly one of hit / join / miss, and a
// repeat query after completion is a pure cache hit (zero extra scans).
TEST(ResultCacheTest, CacheGridMatchesDisabledReferenceAcrossSessions) {
  constexpr int64_t kBound = 60;
  Table table = workload::MakeCompas(1600, 101).value();

  SearchOptions reference_options;
  reference_options.size_bound = kBound;
  reference_options.use_wave_scheduler = false;
  LabelSearch reference(table);
  const SearchResult want = reference.TopDown(reference_options);

  for (const bool cache_on : {true, false}) {
    for (const int num_sessions : {1, 2, 4, 8}) {
      const std::string arm =
          std::string(cache_on ? "cache" : "nocache") + "/x" +
          std::to_string(num_sessions);
      Dataset dataset = PrivateDataset(table);
      SessionOptions options;
      options.num_threads = 1;
      options.use_result_cache = cache_on;
      std::vector<std::unique_ptr<Session>> sessions;
      std::vector<QueryFuture> futures;
      for (int i = 0; i < num_sessions; ++i) {
        sessions.push_back(OpenSession(dataset, options));
        auto future =
            sessions.back()->Submit(QuerySpec::LabelSearch(kBound));
        ASSERT_TRUE(future.ok()) << arm << ": " << future.status();
        futures.push_back(*future);
      }
      for (int i = 0; i < num_sessions; ++i) {
        const QueryResult& r = futures[static_cast<size_t>(i)].Get();
        ASSERT_TRUE(r.status.ok()) << arm << ": " << r.status;
        ExpectSameSearchResult(r.search, want,
                               arm + "/s" + std::to_string(i));
      }

      const ResultTierStats stats =
          dataset.service()->result_tier_stats();
      if (cache_on) {
        // Every tier visit resolved exactly one way, and the identical
        // specs shared a single cache slot.
        EXPECT_GE(stats.misses, 1) << arm;
        EXPECT_EQ(stats.hits + stats.misses + stats.inflight_joins,
                  num_sessions)
            << arm;
        EXPECT_EQ(stats.entries, 1) << arm;
        EXPECT_GT(stats.bytes, 0) << arm;

        // A repeat on a fresh session is a completed-cache hit: no new
        // engine work at all.
        const int64_t scans_before =
            dataset.service()->StatsSnapshot().full_scans;
        auto repeat = OpenSession(dataset, options);
        const QueryResult warm = repeat->Run(QuerySpec::LabelSearch(kBound));
        ASSERT_TRUE(warm.status.ok()) << arm;
        ExpectSameSearchResult(warm.search, want, arm + "/repeat");
        EXPECT_EQ(dataset.service()->StatsSnapshot().full_scans,
                  scans_before)
            << arm;
        EXPECT_GE(dataset.service()->result_tier_stats().hits, 1) << arm;
      } else {
        // The disabled arm never touches the tier.
        EXPECT_EQ(stats.hits, 0) << arm;
        EXPECT_EQ(stats.misses, 0) << arm;
        EXPECT_EQ(stats.inflight_joins, 0) << arm;
        EXPECT_EQ(stats.entries, 0) << arm;
      }
    }
  }
}

// Deterministic in-flight dedup: K identical queries submitted while the
// engine mutex is held must coalesce into one leader and K-1 joiners —
// observable in the stats before the leader can finish — and the whole
// batch costs exactly one cold solo search of engine work.
TEST(ResultCacheTest, ConcurrentIdenticalQueriesShareOneExecution) {
  constexpr int64_t kBound = 50;
  constexpr int kQueries = 4;
  Table table = workload::MakeCompas(1200, 103).value();

  SearchOptions reference_options;
  reference_options.size_bound = kBound;
  reference_options.use_wave_scheduler = false;
  LabelSearch reference(table);
  const SearchResult want = reference.TopDown(reference_options);
  const int64_t cold_full_scans =
      reference.counting_service()->stats().full_scans;
  ASSERT_GT(cold_full_scans, 0);

  Dataset dataset = PrivateDataset(table);
  SessionOptions options;
  options.num_threads = 1;
  std::vector<std::unique_ptr<Session>> sessions;
  std::vector<QueryFuture> futures;
  {
    // Hold the engine mutex: the leader blocks inside its first sizing
    // wave, so every later identical query must find it in flight and
    // park — the join count is exact, not timing-dependent.
    std::unique_lock<std::mutex> engine_lock(dataset.service()->mutex());
    for (int i = 0; i < kQueries; ++i) {
      sessions.push_back(OpenSession(dataset, options));
      auto future = sessions.back()->Submit(QuerySpec::LabelSearch(kBound));
      ASSERT_TRUE(future.ok()) << future.status();
      futures.push_back(*future);
    }
    while (dataset.service()->result_tier_stats().inflight_joins <
           kQueries - 1) {
      std::this_thread::yield();
    }
  }
  for (int i = 0; i < kQueries; ++i) {
    const QueryResult& r = futures[static_cast<size_t>(i)].Get();
    ASSERT_TRUE(r.status.ok()) << r.status;
    ExpectSameSearchResult(r.search, want, "query " + std::to_string(i));
  }

  const ResultTierStats stats = dataset.service()->result_tier_stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.inflight_joins, kQueries - 1);
  EXPECT_EQ(stats.hits, 0);
  // K identical queries, at most one execution's worth of engine work
  // (the single scheduled run may even roll up below the serialized
  // solo count).
  EXPECT_GT(dataset.service()->StatsSnapshot().full_scans, 0);
  EXPECT_LE(dataset.service()->StatsSnapshot().full_scans,
            cold_full_scans);
}

// Staleness is impossible by construction: every append arm invalidates
// the completed cache before the data grows, so a query after an append
// recomputes against the extended data — for the appending session and
// for a read-only sibling that had already warmed the cache.
TEST(ResultCacheTest, AppendInvalidatesBeforeAnyStaleReadCanHappen) {
  constexpr int64_t kBound = 40;
  DifferentialWorkload workload = RandomWorkload(
      /*seed=*/211, /*attrs=*/4, /*base_rows=*/300, /*append_rows=*/50,
      /*domain=*/5, /*append_domain=*/7, /*null_percent=*/10);
  DifferentialHarness harness(std::move(workload));
  DifferentialWorkload rows = RandomWorkload(211, 4, 300, 50, 5, 7, 10);

  SearchOptions base_options;
  base_options.size_bound = kBound;
  base_options.use_wave_scheduler = false;
  LabelSearch base_search(harness.base());
  const SearchResult base_want = base_search.TopDown(base_options);
  LabelSearch extended_search(harness.reference());
  const SearchResult extended_want = extended_search.TopDown(base_options);

  Dataset dataset = PrivateDataset(harness.base());
  auto appender = OpenSession(dataset);
  auto sibling = OpenSession(dataset);

  // Warm the cache on the base data through the sibling.
  const QueryResult cold = sibling->Run(QuerySpec::LabelSearch(kBound));
  ASSERT_TRUE(cold.status.ok()) << cold.status;
  ExpectSameSearchResult(cold.search, base_want, "base");
  ASSERT_GE(dataset.service()->result_tier_stats().entries, 1);

  for (const auto& row : rows.append_rows) {
    ASSERT_TRUE(appender->AppendRow(row).ok());
  }

  // The append dropped every cached result; nothing to serve stale.
  const ResultTierStats after_append =
      dataset.service()->result_tier_stats();
  EXPECT_EQ(after_append.entries, 0);
  EXPECT_EQ(after_append.bytes, 0);
  EXPECT_GE(after_append.invalidations, 1);

  for (const bool through_appender : {true, false}) {
    Session& session = through_appender ? *appender : *sibling;
    const QueryResult fresh = session.Run(QuerySpec::LabelSearch(kBound));
    ASSERT_TRUE(fresh.status.ok()) << fresh.status;
    EXPECT_EQ(fresh.total_rows, harness.reference().num_rows());
    ExpectSameSearchResult(fresh.search, extended_want,
                           through_appender ? "appender" : "sibling");
  }
}

// Eviction under pressure: a budget that fits either result alone but
// not both forces LRU eviction when the second lands; answers stay
// exact and the byte accounting follows the survivors.
TEST(ResultCacheTest, TightBudgetEvictsLruAndStaysExact) {
  constexpr int64_t kBound = 50;
  Table table = workload::MakeCompas(900, 107).value();
  SessionOptions options;
  options.num_threads = 1;

  // Measure each result's cached footprint on throwaway services.
  const auto bytes_of = [&](const QuerySpec& spec) {
    Dataset throwaway = PrivateDataset(table);
    auto probe = OpenSession(throwaway, options);
    EXPECT_TRUE(probe->Run(spec).status.ok());
    return throwaway.service()->result_tier_stats().bytes;
  };
  const int64_t search_bytes = bytes_of(QuerySpec::LabelSearch(kBound));
  const int64_t profile_bytes = bytes_of(QuerySpec::Profile());
  ASSERT_GT(search_bytes, 0);
  ASSERT_GT(profile_bytes, 0);
  // Fits either alone, never both.
  const int64_t budget = std::max(search_bytes, profile_bytes);

  Dataset dataset = PrivateDataset(table);
  auto session = OpenSession(dataset, options);
  const QueryResult first = session->Run(QuerySpec::LabelSearch(kBound));
  ASSERT_TRUE(first.status.ok()) << first.status;

  QuerySpec profile = QuerySpec::Profile();
  profile.result_cache_budget = budget;
  const QueryResult pairs = session->Run(profile);
  ASSERT_TRUE(pairs.status.ok()) << pairs.status;

  ResultTierStats stats = dataset.service()->result_tier_stats();
  EXPECT_GE(stats.evictions, 1);
  EXPECT_LE(stats.bytes, budget);
  EXPECT_EQ(stats.entries, 1);  // the profile survived, the search went

  // The profile answers from cache; the evicted search recomputes and is
  // still exact.
  const int64_t hits_before = stats.hits;
  const QueryResult pairs_again = session->Run(profile);
  ASSERT_TRUE(pairs_again.status.ok());
  ASSERT_EQ(pairs_again.pairs.size(), pairs.pairs.size());
  for (size_t i = 0; i < pairs.pairs.size(); ++i) {
    EXPECT_EQ(pairs_again.pairs[i].size, pairs.pairs[i].size) << i;
  }
  EXPECT_GT(dataset.service()->result_tier_stats().hits, hits_before);

  const QueryResult again = session->Run(QuerySpec::LabelSearch(kBound));
  ASSERT_TRUE(again.status.ok());
  ExpectSameSearchResult(again.search, first.search, "recomputed");
}

// Budget 0: in-flight dedup stays, the completed cache stores nothing.
TEST(ResultCacheTest, ZeroBudgetDedupsButCachesNothing) {
  Table table = workload::MakeCompas(700, 109).value();
  Dataset dataset = PrivateDataset(table);
  SessionOptions options;
  options.num_threads = 1;
  options.result_cache_budget = 0;
  auto session = OpenSession(dataset, options);

  const QueryResult a = session->Run(QuerySpec::LabelSearch(40));
  const QueryResult b = session->Run(QuerySpec::LabelSearch(40));
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  ExpectSameSearchResult(b.search, a.search, "repeat");

  const ResultTierStats stats = dataset.service()->result_tier_stats();
  EXPECT_EQ(stats.misses, 2);  // both executed: nothing was stored
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.insertions, 0);
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.bytes, 0);
}

// The serialized arm holds the whole-service lock for the query's
// duration, so parking on another query's future could deadlock — those
// queries must never join; they lead, hit, or bypass.
TEST(ResultCacheTest, SerializedQueriesNeverParkOnALeader)  {
  Table table = workload::MakeCompas(800, 113).value();
  Dataset dataset = PrivateDataset(table);
  SessionOptions options;
  options.num_threads = 1;
  options.use_wave_scheduler = false;

  constexpr int kSessions = 4;
  std::vector<std::unique_ptr<Session>> sessions;
  std::vector<QueryFuture> futures;
  for (int i = 0; i < kSessions; ++i) {
    sessions.push_back(OpenSession(dataset, options));
    auto future = sessions.back()->Submit(QuerySpec::LabelSearch(45));
    ASSERT_TRUE(future.ok()) << future.status();
    futures.push_back(*future);
  }
  for (int i = 0; i < kSessions; ++i) {
    const QueryResult& r = futures[static_cast<size_t>(i)].Get();
    ASSERT_TRUE(r.status.ok()) << r.status;
  }

  const ResultTierStats stats = dataset.service()->result_tier_stats();
  EXPECT_EQ(stats.inflight_joins, 0);
  EXPECT_EQ(stats.hits + stats.misses + stats.bypasses, kSessions);
}

// True counts and profiles ride the tier exactly like searches.
TEST(ResultCacheTest, TrueCountAndProfileRepeatFromCache) {
  Table table = workload::MakeCompas(600, 127).value();
  Dataset dataset = PrivateDataset(table);
  SessionOptions options;
  options.num_threads = 1;
  auto session = OpenSession(dataset, options);

  const QuerySpec count = QuerySpec::TrueCount(
      {{table.schema().name(0), table.dictionary(0).GetString(0)}});
  const QueryResult cold_count = session->Run(count);
  ASSERT_TRUE(cold_count.status.ok()) << cold_count.status;
  const QueryResult warm_count = session->Run(count);
  ASSERT_TRUE(warm_count.status.ok());
  EXPECT_EQ(warm_count.true_count, cold_count.true_count);

  const QueryResult cold_pairs = session->Run(QuerySpec::Profile());
  ASSERT_TRUE(cold_pairs.status.ok());
  const QueryResult warm_pairs = session->Run(QuerySpec::Profile());
  ASSERT_TRUE(warm_pairs.status.ok());
  ASSERT_EQ(warm_pairs.pairs.size(), cold_pairs.pairs.size());
  for (size_t i = 0; i < cold_pairs.pairs.size(); ++i) {
    EXPECT_EQ(warm_pairs.pairs[i].size, cold_pairs.pairs[i].size) << i;
  }

  const ResultTierStats stats = dataset.service()->result_tier_stats();
  EXPECT_GE(stats.hits, 2);  // one per repeated kind
  // Term order canonicalizes: the reversed pattern is the same query.
  if (table.num_attributes() >= 2) {
    const std::string a0 = table.schema().name(0);
    const std::string v0 = table.dictionary(0).GetString(0);
    const std::string a1 = table.schema().name(1);
    const std::string v1 = table.dictionary(1).GetString(0);
    const QueryResult fwd =
        session->Run(QuerySpec::TrueCount({{a0, v0}, {a1, v1}}));
    const int64_t hits_before =
        dataset.service()->result_tier_stats().hits;
    const QueryResult rev =
        session->Run(QuerySpec::TrueCount({{a1, v1}, {a0, v0}}));
    ASSERT_TRUE(fwd.status.ok());
    ASSERT_TRUE(rev.status.ok());
    EXPECT_EQ(rev.true_count, fwd.true_count);
    EXPECT_GT(dataset.service()->result_tier_stats().hits, hits_before);
  }
}

}  // namespace
}  // namespace pcbl
