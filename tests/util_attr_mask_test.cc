// Tests for AttrMask set operations and iteration.
#include "util/attr_mask.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace pcbl {
namespace {

TEST(AttrMaskTest, DefaultIsEmpty) {
  AttrMask m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Count(), 0);
  EXPECT_EQ(m.bits(), 0u);
}

TEST(AttrMaskTest, SetTestClear) {
  AttrMask m;
  m.Set(3);
  m.Set(17);
  EXPECT_TRUE(m.Test(3));
  EXPECT_TRUE(m.Test(17));
  EXPECT_FALSE(m.Test(4));
  EXPECT_EQ(m.Count(), 2);
  m.Clear(3);
  EXPECT_FALSE(m.Test(3));
  EXPECT_EQ(m.Count(), 1);
}

TEST(AttrMaskTest, AllOfN) {
  EXPECT_EQ(AttrMask::All(0).Count(), 0);
  EXPECT_EQ(AttrMask::All(5).Count(), 5);
  EXPECT_EQ(AttrMask::All(5).bits(), 0b11111u);
  EXPECT_EQ(AttrMask::All(64).Count(), 64);
}

TEST(AttrMaskTest, SingleAndWithWithout) {
  AttrMask m = AttrMask::Single(7);
  EXPECT_EQ(m.Count(), 1);
  EXPECT_TRUE(m.Test(7));
  AttrMask m2 = m.With(9);
  EXPECT_TRUE(m2.Test(7));
  EXPECT_TRUE(m2.Test(9));
  EXPECT_EQ(m2.Without(7), AttrMask::Single(9));
  // With/Without do not mutate the source.
  EXPECT_EQ(m.Count(), 1);
}

TEST(AttrMaskTest, FromIndicesAndToIndices) {
  AttrMask m = AttrMask::FromIndices({5, 1, 9});
  std::vector<int> idx = m.ToIndices();
  EXPECT_EQ(idx, (std::vector<int>{1, 5, 9}));
}

TEST(AttrMaskTest, SetAlgebra) {
  AttrMask a = AttrMask::FromIndices({0, 1, 2});
  AttrMask b = AttrMask::FromIndices({2, 3});
  EXPECT_EQ(a.Union(b), AttrMask::FromIndices({0, 1, 2, 3}));
  EXPECT_EQ(a.Intersect(b), AttrMask::Single(2));
  EXPECT_EQ(a.Minus(b), AttrMask::FromIndices({0, 1}));
  EXPECT_EQ(b.Minus(a), AttrMask::Single(3));
}

TEST(AttrMaskTest, SubsetRelations) {
  AttrMask a = AttrMask::FromIndices({1, 3});
  AttrMask b = AttrMask::FromIndices({1, 3, 5});
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_TRUE(a.IsStrictSubsetOf(b));
  EXPECT_FALSE(a.IsStrictSubsetOf(a));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(AttrMask().IsSubsetOf(a));
}

TEST(AttrMaskTest, MinMaxIndex) {
  AttrMask m = AttrMask::FromIndices({4, 11, 63});
  EXPECT_EQ(m.MinIndex(), 4);
  EXPECT_EQ(m.MaxIndex(), 63);
  EXPECT_EQ(AttrMask::Single(0).MaxIndex(), 0);
}

TEST(AttrMaskTest, ToStringFormat) {
  EXPECT_EQ(AttrMask().ToString(), "{}");
  EXPECT_EQ(AttrMask::FromIndices({2, 0, 5}).ToString(), "{0,2,5}");
}

TEST(AttrMaskTest, BitsIterator) {
  AttrMask m = AttrMask::FromIndices({0, 2, 63});
  std::vector<int> seen;
  for (int i : AttrMaskBits(m)) seen.push_back(i);
  EXPECT_EQ(seen, (std::vector<int>{0, 2, 63}));
}

TEST(AttrMaskTest, BitsIteratorEmptyMask) {
  int count = 0;
  for (int i : AttrMaskBits(AttrMask())) {
    (void)i;
    ++count;
  }
  EXPECT_EQ(count, 0);
}

TEST(AttrMaskTest, OrderingIsTotalOnBits) {
  std::set<AttrMask> masks;
  masks.insert(AttrMask::FromIndices({0}));
  masks.insert(AttrMask::FromIndices({1}));
  masks.insert(AttrMask::FromIndices({0, 1}));
  masks.insert(AttrMask::FromIndices({0}));  // duplicate
  EXPECT_EQ(masks.size(), 3u);
}

// Property sweep: ToIndices round-trips through FromIndices for all
// 2^10 subsets of a 10-attribute universe.
TEST(AttrMaskPropertyTest, RoundTripAllSubsetsOf10) {
  for (uint64_t bits = 0; bits < (1u << 10); ++bits) {
    AttrMask m(bits);
    AttrMask back = AttrMask::FromIndices(m.ToIndices());
    EXPECT_EQ(m, back) << bits;
    EXPECT_EQ(m.Count(), static_cast<int>(m.ToIndices().size()));
  }
}

}  // namespace
}  // namespace pcbl
