// Tests for the CLI argument parser.
#include "cli/args.h"

#include <gtest/gtest.h>

namespace pcbl {
namespace cli {
namespace {

TEST(ArgsTest, PositionalOnly) {
  auto args = Args::Parse({"a.csv", "b.csv"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->positional().size(), 2u);
  EXPECT_EQ(args->positional()[0], "a.csv");
  EXPECT_FALSE(args->Has("anything"));
}

TEST(ArgsTest, FlagWithSeparateValue) {
  auto args = Args::Parse({"--bound", "50", "data.csv"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->GetString("bound"), "50");
  ASSERT_EQ(args->positional().size(), 1u);
  EXPECT_EQ(args->positional()[0], "data.csv");
}

TEST(ArgsTest, FlagWithEqualsValue) {
  auto args = Args::Parse({"--bound=50", "--name=my data"});
  ASSERT_TRUE(args.ok());
  auto bound = args->GetInt("bound", 0);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(*bound, 50);
  EXPECT_EQ(args->GetString("name"), "my data");
}

TEST(ArgsTest, BareBooleanFlag) {
  auto args = Args::Parse({"--binary", "--out", "x.bin"});
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(args->GetBool("binary"));
  EXPECT_EQ(args->GetString("out"), "x.bin");
  EXPECT_FALSE(args->GetBool("absent"));
}

TEST(ArgsTest, BooleanBeforeAnotherFlag) {
  auto args = Args::Parse({"--binary", "--bound", "10"});
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(args->GetBool("binary"));
  auto bound = args->GetInt("bound", 0);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(*bound, 10);
}

TEST(ArgsTest, DoubleDashEndsFlags) {
  auto args = Args::Parse({"--bound", "5", "--", "--not-a-flag"});
  ASSERT_TRUE(args.ok());
  ASSERT_EQ(args->positional().size(), 1u);
  EXPECT_EQ(args->positional()[0], "--not-a-flag");
}

TEST(ArgsTest, IntParseErrorPropagates) {
  auto args = Args::Parse({"--bound", "fifty"});
  ASSERT_TRUE(args.ok());
  EXPECT_FALSE(args->GetInt("bound", 0).ok());
  EXPECT_FALSE(args->GetDouble("bound", 0.0).ok());
}

TEST(ArgsTest, DefaultsApplyWhenAbsent) {
  auto args = Args::Parse({});
  ASSERT_TRUE(args.ok());
  auto bound = args->GetInt("bound", 100);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(*bound, 100);
  EXPECT_EQ(args->GetString("algo", "topdown"), "topdown");
}

TEST(ArgsTest, CheckKnownRejectsTypos) {
  auto args = Args::Parse({"--buond", "50"});
  ASSERT_TRUE(args.ok());
  EXPECT_FALSE(args->CheckKnown({"bound", "algo"}).ok());
  EXPECT_TRUE(args->CheckKnown({"buond"}).ok());
}

TEST(ArgsTest, RequirePositionalCounts) {
  auto args = Args::Parse({"one"});
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(args->RequirePositional(1, "usage").ok());
  EXPECT_FALSE(args->RequirePositional(2, "usage").ok());
}

TEST(ArgsTest, EmptyFlagNameIsError) {
  // "--" alone is the end-of-flags marker, but "--=x" has an empty name.
  auto args = Args::Parse({"--=x"});
  ASSERT_TRUE(args.ok());  // parsed as flag named "" with value x
  EXPECT_TRUE(args->Has(""));
}

TEST(ArgsTest, LastValueWinsOnRepeat) {
  auto args = Args::Parse({"--bound", "10", "--bound", "20"});
  ASSERT_TRUE(args.ok());
  auto bound = args->GetInt("bound", 0);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(*bound, 20);
}

TEST(ArgsTest, CountingEngineFlagsParse) {
  // The engine knobs shared by build/estimate/profile: --threads N,
  // --cache-budget N (both value flags) and --no-engine (bare boolean),
  // in the mixed forms users type them.
  auto args = Args::Parse({"data.csv", "--threads", "8", "--no-engine",
                           "--cache-budget=1048576"});
  ASSERT_TRUE(args.ok());
  auto threads = args->GetInt("threads", 0);
  ASSERT_TRUE(threads.ok());
  EXPECT_EQ(*threads, 8);
  EXPECT_TRUE(args->GetBool("no-engine"));
  auto budget = args->GetInt("cache-budget", -1);
  ASSERT_TRUE(budget.ok());
  EXPECT_EQ(*budget, 1048576);
  EXPECT_TRUE(args->CheckKnown({"threads", "no-engine", "cache-budget"})
                  .ok());
  ASSERT_EQ(args->positional().size(), 1u);
}

TEST(ArgsTest, CountingEngineFlagDefaultsAndErrors) {
  auto args = Args::Parse({"--cache-budget", "0", "--threads", "many"});
  ASSERT_TRUE(args.ok());
  // Explicit 0 disables memoization and must parse as present-with-value.
  EXPECT_TRUE(args->Has("cache-budget"));
  auto budget = args->GetInt("cache-budget", 77);
  ASSERT_TRUE(budget.ok());
  EXPECT_EQ(*budget, 0);
  // Malformed --threads propagates a parse error instead of defaulting.
  EXPECT_FALSE(args->GetInt("threads", 1).ok());
  // Absent flags keep their defaults.
  auto absent = Args::Parse({});
  ASSERT_TRUE(absent.ok());
  EXPECT_FALSE(absent->Has("no-engine"));
  EXPECT_FALSE(absent->GetBool("no-engine"));
  auto fallback = absent->GetInt("threads", 4);
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(*fallback, 4);
}

}  // namespace
}  // namespace cli
}  // namespace pcbl
