// Tests for ValueCounts (the VC set) and attribute summaries.
#include "relation/stats.h"

#include <gtest/gtest.h>

#include "workload/datasets.h"

namespace pcbl {
namespace {

Table SmallTable() {
  auto b = TableBuilder::Create({"x", "y"});
  PCBL_CHECK(b.ok());
  PCBL_CHECK(b->AddRow({"a", "p"}).ok());
  PCBL_CHECK(b->AddRow({"a", "q"}).ok());
  PCBL_CHECK(b->AddRow({"b", "p"}).ok());
  PCBL_CHECK(b->AddRow({"", "p"}).ok());  // null in x
  return b->Build();
}

TEST(ValueCountsTest, CountsPerValue) {
  Table t = SmallTable();
  ValueCounts vc = ValueCounts::Compute(t);
  EXPECT_EQ(vc.Count(0, t.dictionary(0).Lookup("a")), 2);
  EXPECT_EQ(vc.Count(0, t.dictionary(0).Lookup("b")), 1);
  EXPECT_EQ(vc.Count(1, t.dictionary(1).Lookup("p")), 3);
  EXPECT_EQ(vc.Count(1, t.dictionary(1).Lookup("q")), 1);
}

TEST(ValueCountsTest, NullsExcludedFromTotals) {
  Table t = SmallTable();
  ValueCounts vc = ValueCounts::Compute(t);
  EXPECT_EQ(vc.NonNullTotal(0), 3);  // one null
  EXPECT_EQ(vc.NonNullTotal(1), 4);
  EXPECT_EQ(vc.Count(0, kNullValue), 0);
}

TEST(ValueCountsTest, DistinctCounts) {
  Table t = SmallTable();
  ValueCounts vc = ValueCounts::Compute(t);
  EXPECT_EQ(vc.DistinctCount(0), 2);
  EXPECT_EQ(vc.DistinctCount(1), 2);
}

TEST(ValueCountsTest, TotalEntriesIsVcSize) {
  Table t = SmallTable();
  ValueCounts vc = ValueCounts::Compute(t);
  EXPECT_EQ(vc.TotalEntries(), 4);  // a, b, p, q
}

TEST(ValueCountsTest, Fig2DemoMatchesExample210) {
  // Example 2.10 lists the full VC set of the Fig. 2 fragment.
  Table t = workload::MakeFig2Demo();
  ValueCounts vc = ValueCounts::Compute(t);
  auto count = [&](int attr, const char* value) {
    return vc.Count(attr, t.dictionary(attr).Lookup(value));
  };
  EXPECT_EQ(count(0, "Female"), 9);
  EXPECT_EQ(count(0, "Male"), 9);
  EXPECT_EQ(count(1, "under 20"), 6);
  EXPECT_EQ(count(1, "20-39"), 12);
  EXPECT_EQ(count(2, "African-American"), 6);
  EXPECT_EQ(count(2, "Hispanic"), 6);
  EXPECT_EQ(count(2, "Caucasian"), 6);
  EXPECT_EQ(count(3, "single"), 6);
  EXPECT_EQ(count(3, "divorced"), 6);
  EXPECT_EQ(count(3, "married"), 6);
  EXPECT_EQ(vc.TotalEntries(), 10);  // 2 + 2 + 3 + 3 entries
}

TEST(SummarizeAttributesTest, Basics) {
  Table t = SmallTable();
  auto summaries = SummarizeAttributes(t);
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].name, "x");
  EXPECT_EQ(summaries[0].distinct_values, 2);
  EXPECT_EQ(summaries[0].null_count, 1);
  EXPECT_EQ(summaries[0].top_value, "a");
  EXPECT_EQ(summaries[0].top_count, 2);
  EXPECT_EQ(summaries[1].null_count, 0);
  EXPECT_EQ(summaries[1].top_value, "p");
}

TEST(SummarizeAttributesTest, EntropyUniformVsSkewed) {
  auto b = TableBuilder::Create({"u", "s"});
  ASSERT_TRUE(b.ok());
  // u uniform over 4 values; s nearly constant.
  const char* us[] = {"1", "2", "3", "4"};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(b->AddRow({us[i % 4], i == 0 ? "rare" : "common"}).ok());
  }
  Table t = b->Build();
  auto summaries = SummarizeAttributes(t);
  EXPECT_NEAR(summaries[0].entropy_bits, 2.0, 1e-9);
  EXPECT_LT(summaries[1].entropy_bits, 0.2);
}

}  // namespace
}  // namespace pcbl
