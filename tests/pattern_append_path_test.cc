// Tests for the fully general append path: the sort-fallback delta
// route for subsets whose nullable key space overflows 64 bits, delta
// compaction into the engine-owned columnar base, appends against a
// disabled engine, and compaction firing in the middle of a sizing
// sweep — all byte-identical to a from-scratch rebuild under the
// differential harness.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/incremental.h"
#include "pattern/counter.h"
#include "pattern/counting_service.h"
#include "pattern/lattice.h"
#include "pattern/restriction_codec.h"
#include "tests/differential_harness.h"
#include "util/rng.h"

namespace pcbl {
namespace {

using testing::DifferentialConfig;
using testing::DifferentialHarness;
using testing::DifferentialWorkload;
using testing::ExpectSameGroupCounts;
using testing::RandomWorkload;

// High-cardinality workload: 8 attributes drawing from a 1000-value pool
// over 500 rows intern ~350 distinct values per attribute, so the full
// mask's nullable key space overflows int64 (351^8 >> 2^63) and its
// packed width exceeds 63 bits — wide subsets must take the sort
// fallback, with and without deltas (asserted below).
DifferentialWorkload HighCardinalityWorkload(uint64_t seed,
                                             int64_t append_rows) {
  return RandomWorkload(seed, /*attrs=*/8, /*base_rows=*/500, append_rows,
                        /*domain=*/1000, /*append_domain=*/1100,
                        /*null_percent=*/12);
}

TEST(AppendPathTest, NonEncodableSubsetsExistInTheWorkload) {
  DifferentialHarness harness(HighCardinalityWorkload(3, 20));
  const Table& t = harness.reference();
  bool encodable = false;
  counting::NullableRadixMultipliers(
      t, AttrMask::All(t.num_attributes()).ToIndices(), &encodable);
  ASSERT_FALSE(encodable)
      << "the workload no longer exercises the sort fallback";
}

TEST(AppendPathTest, SortFallbackDeltaMatchesRebuildAcrossConfigs) {
  // The full standard grid on the non-encodable workload: every config
  // (warm patch, bulk invalidate, compacted, engine-off, tiny cache)
  // must agree with the rebuilt reference on *every* subset, including
  // the sort-fallback ones. NULL-bearing appends and fresh values are
  // part of the workload.
  DifferentialHarness harness(HighCardinalityWorkload(5, 30));
  harness.CheckAll();
}

TEST(AppendPathTest, NullOnlyAppendsStayExact) {
  // Appended rows that are entirely / mostly NULL: restrictions of
  // arity < 2 must vanish from every patched PC set, in both the delta
  // and the compacted regime.
  DifferentialWorkload workload =
      RandomWorkload(11, /*attrs=*/4, /*base_rows=*/200, /*append_rows=*/0,
                     /*domain=*/5, /*append_domain=*/5,
                     /*null_percent=*/15);
  workload.append_rows = {
      {"", "", "", ""},
      {"v0", "", "", ""},
      {"", "v1", "v2", ""},
      {"v9", "", "", "v9"},  // fresh values through a NULL-heavy row
  };
  DifferentialHarness harness(std::move(workload));
  harness.CheckAll();
}

TEST(AppendPathTest, DisabledEngineAcceptsAppendsAndStaysExact) {
  // PR 2 rejected ApplyAppend on a disabled engine; now the delegate
  // becomes the engine's own delta-aware scan.
  DifferentialWorkload workload =
      RandomWorkload(13, /*attrs=*/4, /*base_rows=*/250, /*append_rows=*/40,
                     /*domain=*/6, /*append_domain=*/8,
                     /*null_percent=*/10);
  DifferentialHarness harness(std::move(workload));
  DifferentialConfig config;
  config.name = "disabled-appends";
  config.engine_enabled = false;
  auto service = harness.Run(config);
  // Nothing was cached along the way: reference behaviour.
  EXPECT_EQ(service->stats().cached_groups, 0);
  EXPECT_EQ(service->stats().cache_hits, 0);
}

TEST(AppendPathTest, ThresholdTriggersCompactionAndClearsDelta) {
  DifferentialWorkload workload =
      RandomWorkload(17, /*attrs=*/4, /*base_rows=*/150, /*append_rows=*/25,
                     /*domain=*/5, /*append_domain=*/7,
                     /*null_percent=*/10);
  DifferentialHarness harness(std::move(workload));
  DifferentialConfig config;
  config.name = "threshold-10";
  config.warm_cache_first = true;
  config.compact_threshold = 10;
  auto service = harness.Run(config);
  std::lock_guard<std::mutex> lock(service->mutex());
  // 25 single-row appends with a threshold of 10: the block folded at
  // rows 10 and 20, leaving 5 rows in the delta.
  EXPECT_EQ(service->stats().compactions, 2);
  EXPECT_EQ(service->engine().num_delta_rows(), 5);
  EXPECT_EQ(service->engine().num_appended_rows(), 25);
}

TEST(AppendPathTest, CompactionFiringMidSweepStaysExact) {
  // A sizing sweep is underway (half the lattice sized, cache warm) when
  // appends arrive and cross the compaction threshold; the remainder of
  // the sweep — rollups from patched ancestors, budgeted sizings, combo
  // counts — must keep answering exactly against the extended data.
  DifferentialWorkload workload =
      RandomWorkload(23, /*attrs=*/5, /*base_rows=*/300, /*append_rows=*/18,
                     /*domain=*/6, /*append_domain=*/8,
                     /*null_percent=*/10);
  DifferentialHarness harness(workload);

  CountingEngineOptions options;
  options.delta_compact_threshold = 8;
  auto service = std::make_shared<CountingService>(harness.base(), options);

  // First half of the sweep over the base data.
  const int n = harness.base().num_attributes();
  std::vector<AttrMask> all_masks;
  ForEachSubsetOf(AttrMask::All(n),
                  [&](AttrMask s) { all_masks.push_back(s); });
  {
    std::lock_guard<std::mutex> lock(service->mutex());
    for (size_t i = 0; i < all_masks.size() / 2; ++i) {
      service->engine().PatternCounts(all_masks[i]);
    }
  }

  // Appends land mid-sweep; the threshold fires inside this loop.
  auto label = IncrementalLabel::Create(
      harness.base(), AttrMask::FromIndices({0, 1}), int64_t{1} << 20,
      service);
  ASSERT_TRUE(label.ok());
  for (const auto& row : workload.append_rows) {
    ASSERT_TRUE(label->AppendRow(row).ok());
  }
  {
    std::lock_guard<std::mutex> lock(service->mutex());
    EXPECT_GT(service->stats().compactions, 0);
    EXPECT_LT(service->engine().num_delta_rows(), 8);
  }

  // Second half of the sweep — and then the full differential check.
  {
    std::lock_guard<std::mutex> lock(service->mutex());
    for (size_t i = all_masks.size() / 2; i < all_masks.size(); ++i) {
      service->engine().PatternCounts(all_masks[i]);
    }
  }
  DifferentialHarness::CheckServiceAgainst(*service, harness.reference(),
                                           "mid-sweep");
}

TEST(AppendPathTest, CompactionIsIdempotentAndCheapWhenEmpty) {
  DifferentialHarness harness(RandomWorkload(29, 3, 100, 0, 4, 4, 5));
  CountingService service(harness.base());
  std::lock_guard<std::mutex> lock(service.mutex());
  service.engine().CompactDeltas();  // no deltas: no-op
  EXPECT_EQ(service.stats().compactions, 0);
  service.engine().ApplyAppend({{0, 1, 2}, {1, 1, 1}});
  service.engine().CompactDeltas();
  EXPECT_EQ(service.stats().compactions, 1);
  EXPECT_EQ(service.engine().num_delta_rows(), 0);
  EXPECT_EQ(service.engine().num_appended_rows(), 2);
  service.engine().CompactDeltas();  // nothing left to fold
  EXPECT_EQ(service.stats().compactions, 1);
}

}  // namespace
}  // namespace pcbl
