// Tests for `pcbl serve` (server/server.h) over real sockets:
//
//  * the server-vs-in-process differential — two concurrent tenants run
//    search / true-count / profile queries through the socket and every
//    result is byte-identical (timing zeroed) to the in-process session
//    over the same data;
//  * content-equal tenants share one warm CountingService — a second
//    tenant registering the same CSV under its own name performs zero
//    additional full-table scans (the catalog's fingerprint dedup);
//  * deterministic overload shedding — with a per-tenant quota of 1 and
//    the leader query parked mid-execution, the next query is refused
//    with kResourceExhausted and a retry-after hint in bounded time,
//    and the retry after drain succeeds;
//  * admission-level errors (unknown dataset, register conflicts) and
//    the corrupt/oversized-frame rejection path end-to-end.
#include "server/server.h"

#include <sys/socket.h>

#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/dataset.h"
#include "api/query.h"
#include "api/session.h"
#include "pattern/service_registry.h"
#include "relation/csv.h"
#include "server/client.h"
#include "server/socket_io.h"
#include "server/wire.h"
#include "workload/datasets.h"

namespace pcbl {
namespace server {
namespace {

using api::Dataset;
using api::DatasetOptions;
using api::QueryResult;
using api::QuerySpec;
using api::Session;

DatasetOptions PrivateOptions() {
  DatasetOptions options;
  options.private_service = true;
  return options;
}

Dataset PrivateDataset(const Table& table) {
  auto dataset = Dataset::FromTable(table, PrivateOptions());
  PCBL_CHECK(dataset.ok()) << dataset.status();
  return *dataset;
}

// Wall-clock and service-global engine counters are the only
// result-affecting-free fields; zeroing them makes server and
// in-process results byte-comparable.
std::string CanonicalBytes(wire::WireQueryResult result) {
  result.search.stats = SearchStats{};
  wire::Writer out;
  wire::EncodeQueryResult(result, &out);
  return out.Take();
}

std::string InProcessBytes(const Dataset& dataset, const QuerySpec& spec) {
  auto session = Session::Open(dataset);
  PCBL_CHECK(session.ok()) << session.status();
  const QueryResult result = (*session)->Run(spec);
  PCBL_CHECK(result.status.ok()) << result.status;
  return CanonicalBytes(wire::ToWireResult(result, dataset.table()));
}

Client MustConnect(const std::string& address) {
  auto client = Client::Connect(address);
  PCBL_CHECK(client.ok()) << client.status();
  return std::move(*client);
}

TEST(ServerTest, MatchesInProcessResultsAcrossConcurrentTenants) {
  Table table = workload::MakeCompas(600, 11).value();
  Catalog catalog(PrivateOptions());
  ASSERT_TRUE(catalog.Add("compas", PrivateDataset(table)).ok());
  const Dataset dataset = *catalog.Lookup("compas");

  Server server(&catalog, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  std::vector<QuerySpec> specs;
  specs.push_back(QuerySpec::LabelSearch(40));
  specs.push_back(
      QuerySpec::LabelSearch(25, QuerySpec::Algorithm::kNaive));
  specs.push_back(QuerySpec::TrueCount({{"SexOffender", "No"}}));
  specs.push_back(QuerySpec::Profile());

  // The in-process reference bytes, computed first (warming the shared
  // service does not change any result — that is the repo's core
  // differential invariant).
  std::vector<std::string> want;
  for (const QuerySpec& spec : specs) {
    want.push_back(InProcessBytes(dataset, spec));
  }

  std::vector<std::thread> tenants;
  for (const std::string tenant : {"alpha", "beta"}) {
    tenants.emplace_back([&, tenant] {
      Client client = MustConnect(server.bound_address());
      auto hello = client.Hello(tenant);
      ASSERT_TRUE(hello.ok()) << hello.status();
      EXPECT_EQ(hello->protocol_version, wire::kProtocolVersion);
      for (size_t i = 0; i < specs.size(); ++i) {
        auto result = client.Query(tenant, "compas", specs[i]);
        ASSERT_TRUE(result.ok()) << tenant << ": " << result.status();
        ASSERT_TRUE(result->status.ok()) << tenant << ": " << result->status;
        EXPECT_EQ(CanonicalBytes(*result), want[i])
            << tenant << " spec " << i;
      }
    });
  }
  for (std::thread& t : tenants) t.join();

  const wire::StatsReply stats = server.BuildStatsReply("");
  int64_t queries = 0;
  for (const auto& row : stats.tenants) queries += row.queries;
  EXPECT_EQ(queries, static_cast<int64_t>(2 * specs.size()));
  server.Stop();
}

TEST(ServerTest, ContentEqualTenantsShareOneWarmService) {
  Table table = workload::MakeCompas(500, 23).value();
  // Both names are registered from the same CSV bytes: the fingerprint
  // covers dictionary code assignment, so identical text is the unit of
  // content equality (not merely row-wise equal values).
  const std::string csv = WriteCsvString(table);
  Catalog catalog(PrivateOptions());
  auto seeded = catalog.RegisterCsvText("first", csv);
  ASSERT_TRUE(seeded.ok()) << seeded.status();
  EXPECT_FALSE(seeded->shared_existing);

  Server server(&catalog, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  Client alpha = MustConnect(server.bound_address());
  Client beta = MustConnect(server.bound_address());

  // Tenant beta uploads the same content under its own name: the
  // catalog's fingerprint index shares the existing entry.
  auto registered = beta.Register("beta", "second", csv);
  ASSERT_TRUE(registered.ok()) << registered.status();
  EXPECT_TRUE(registered->shared_existing);
  EXPECT_EQ(registered->rows, 500);
  ASSERT_EQ(catalog.Lookup("first")->service().get(),
            catalog.Lookup("second")->service().get());

  // Cold search by tenant alpha pays the full scans once...
  QuerySpec spec = QuerySpec::LabelSearch(40);
  spec.use_result_cache = false;  // force engine work on both arms
  auto first = alpha.Query("alpha", "first", spec);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(first->status.ok()) << first->status;
  const auto& service = *catalog.Lookup("first")->service();
  const int64_t cold_scans = service.stats().full_scans;
  ASSERT_GT(cold_scans, 0);

  // ...and tenant beta's identical search over its own name adds zero:
  // one set of full scans between content-equal tenants.
  auto second = beta.Query("beta", "second", spec);
  ASSERT_TRUE(second.ok()) << second.status();
  ASSERT_TRUE(second->status.ok()) << second->status;
  EXPECT_EQ(service.stats().full_scans, cold_scans);
  EXPECT_EQ(CanonicalBytes(*first), CanonicalBytes(*second));
  server.Stop();
}

TEST(ServerTest, OverloadShedsImmediatelyAndRetrySucceeds) {
  Table table = workload::MakeCompas(400, 31).value();
  Catalog catalog(PrivateOptions());
  ASSERT_TRUE(catalog.Add("compas", PrivateDataset(table)).ok());
  const Dataset dataset = *catalog.Lookup("compas");

  ServerOptions options;
  options.tenant_max_inflight = 1;
  options.retry_after_ms = 75;
  Server server(&catalog, options);
  ASSERT_TRUE(server.Start().ok());

  std::thread leader_thread;
  {
    // Park the admitted leader mid-execution: holding the service's
    // engine mutex blocks its first sizing wave, so the tenant's quota
    // of 1 stays saturated for as long as this scope lives.
    std::unique_lock<std::mutex> wedge(dataset.service()->mutex());
    leader_thread = std::thread([&] {
      Client leader = MustConnect(server.bound_address());
      auto result =
          leader.Query("tenant", "compas", QuerySpec::LabelSearch(30));
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_TRUE(result->status.ok()) << result->status;
    });
    // The leader is inside execution once the server counts it.
    for (;;) {
      const wire::StatsReply stats = server.BuildStatsReply("tenant");
      if (!stats.tenants.empty() && stats.tenants[0].inflight == 1) break;
      std::this_thread::yield();
    }

    // The N+1th concurrent query of the same tenant is shed *now* —
    // the reply arrives while the leader is still parked, which is the
    // bounded-time guarantee (no queueing behind the wedged query).
    Client follower = MustConnect(server.bound_address());
    auto shed =
        follower.Query("tenant", "compas", QuerySpec::LabelSearch(30));
    ASSERT_FALSE(shed.ok());
    EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(follower.last_retry_after_ms(), 75);

    // A different tenant is not affected by this tenant's quota: its
    // queries would be admitted (prove it without executing through
    // the wedged engine: its inflight/shed counters stay zero).
    const wire::StatsReply other = server.BuildStatsReply("fresh");
    EXPECT_TRUE(other.tenants.empty());
  }
  leader_thread.join();

  // Quota drained: the retry succeeds.
  Client follower = MustConnect(server.bound_address());
  auto retry =
      follower.Query("tenant", "compas", QuerySpec::LabelSearch(30));
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_TRUE(retry->status.ok()) << retry->status;

  const wire::StatsReply stats = server.BuildStatsReply("tenant");
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].queries, 2);
  EXPECT_EQ(stats.tenants[0].shed, 1);
  EXPECT_EQ(stats.tenants[0].inflight, 0);
  server.Stop();
}

TEST(ServerTest, UnknownDatasetIsNotFound) {
  Catalog catalog(PrivateOptions());
  Server server(&catalog, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Client client = MustConnect(server.bound_address());
  auto result =
      client.Query("tenant", "nope", QuerySpec::LabelSearch(10));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  server.Stop();
}

TEST(ServerTest, RegisterConflictsAndIdempotence) {
  Table table = workload::MakeCompas(200, 5).value();
  Table other = workload::MakeCompas(210, 6).value();
  Catalog catalog(PrivateOptions());
  Server server(&catalog, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Client client = MustConnect(server.bound_address());

  auto first = client.Register("t", "data", WriteCsvString(table));
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->shared_existing);

  // Same name + same content: idempotent success.
  auto again = client.Register("t", "data", WriteCsvString(table));
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_TRUE(again->shared_existing);
  EXPECT_EQ(again->fingerprint.lo, first->fingerprint.lo);
  EXPECT_EQ(again->fingerprint.hi, first->fingerprint.hi);

  // Same name + different content: refused.
  auto conflict = client.Register("t", "data", WriteCsvString(other));
  ASSERT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.status().code(), StatusCode::kAlreadyExists);

  // A registered dataset serves queries immediately.
  auto result = client.Query("t", "data", QuerySpec::Profile());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->status.ok());
  EXPECT_EQ(result->total_rows, 200);
  server.Stop();
}

TEST(ServerTest, CorruptAndOversizedFramesAreRejected) {
  Catalog catalog(PrivateOptions());
  Server server(&catalog, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  {
    // Garbage magic: the server answers kInvalidArgument (best effort)
    // and drops the connection.
    auto fd = ConnectTo(server.bound_address());
    ASSERT_TRUE(fd.ok()) << fd.status();
    const std::string garbage = "XXXXYYYYZZZZ";
    ASSERT_TRUE(WriteFrame(*fd, wire::MessageType::kHello, "").ok());
    // First a valid hello (proves the connection), then garbage bytes.
    wire::FrameHeader header;
    std::string payload;
    auto ok_reply = ReadFrame(*fd, wire::kDefaultMaxFrameBytes, &header,
                              &payload);
    ASSERT_TRUE(ok_reply.ok() && *ok_reply);
    ASSERT_EQ(send(*fd, garbage.data(), garbage.size(), 0),
              static_cast<ssize_t>(garbage.size()));
    auto reply = ReadFrame(*fd, wire::kDefaultMaxFrameBytes, &header,
                           &payload);
    ASSERT_TRUE(reply.ok() && *reply);
    wire::Reader in(payload);
    auto decoded = wire::DecodeReplyHeader(in);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->status.code(), StatusCode::kInvalidArgument);
    CloseSocket(*fd);
  }
  {
    // A header whose length field claims a payload beyond the server's
    // frame ceiling: refused before any allocation, kInvalidArgument.
    auto fd = ConnectTo(server.bound_address());
    ASSERT_TRUE(fd.ok()) << fd.status();
    wire::Writer out;
    out.U32(wire::kMagic);
    out.U16(wire::kProtocolVersion);
    out.U16(static_cast<uint16_t>(wire::MessageType::kQuery));
    out.U32(0xffffffffu);  // claims a 4 GiB payload
    ASSERT_EQ(send(*fd, out.bytes().data(), out.bytes().size(), 0),
              static_cast<ssize_t>(out.bytes().size()));
    wire::FrameHeader header;
    std::string payload;
    auto reply = ReadFrame(*fd, wire::kDefaultMaxFrameBytes, &header,
                           &payload);
    ASSERT_TRUE(reply.ok() && *reply);
    wire::Reader in(payload);
    auto decoded = wire::DecodeReplyHeader(in);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->status.code(), StatusCode::kInvalidArgument);
    CloseSocket(*fd);
  }
  server.Stop();
}

// The restart-warm differential (docs/PERSISTENCE.md): a server over a
// --spill-dir dataset answers, is shut down orderly (spill-on-exit, as
// cmd_serve.cc does after Wait), and a *fresh* catalog + server over the
// same content and directory answers the same query byte-identically
// without a single full-table scan — the warm cache came off disk.
TEST(ServerTest, RestartWithSpillDirAnswersFirstQueryWithoutFullScans) {
  const std::string dir = ::testing::TempDir() + "pcbl_server_restart";
  std::filesystem::remove_all(dir);
  Table table = workload::MakeCompas(700, 19).value();
  DatasetOptions options;
  options.spill_directory = dir;
  const QuerySpec spec = QuerySpec::LabelSearch(40);

  ServiceRegistry::Global().Clear();
  std::string want;
  {
    Catalog catalog(options);
    auto dataset = Dataset::FromTable(table, options);
    ASSERT_TRUE(dataset.ok()) << dataset.status();
    ASSERT_TRUE(catalog.Add("compas", *dataset).ok());
    Server server(&catalog, ServerOptions{});
    ASSERT_TRUE(server.Start().ok());
    Client client = MustConnect(server.bound_address());
    auto result = client.Query("tenant", "compas", spec);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_TRUE(result->status.ok()) << result->status;
    want = CanonicalBytes(*result);
    EXPECT_GT(dataset->service()->stats().full_scans, 0);
    server.Stop();
    EXPECT_EQ(ServiceRegistry::Global().SpillResident(), 1);
  }

  // "Restart": drop every in-memory service, then rebuild the world.
  ServiceRegistry::Global().Clear();
  {
    Catalog catalog(options);
    auto dataset = Dataset::FromTable(table, options);
    ASSERT_TRUE(dataset.ok()) << dataset.status();
    ASSERT_TRUE(catalog.Add("compas", *dataset).ok());
    Server server(&catalog, ServerOptions{});
    ASSERT_TRUE(server.Start().ok());
    Client client = MustConnect(server.bound_address());
    auto result = client.Query("tenant", "compas", spec);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_TRUE(result->status.ok()) << result->status;
    EXPECT_EQ(CanonicalBytes(*result), want);
    EXPECT_EQ(catalog.Lookup("compas")->service()->stats().full_scans, 0)
        << "the first post-restart query should be answered entirely "
           "from the restored warm cache";
    server.Stop();
  }
  // Restore the process-wide registry for the other tests.
  ServiceRegistry::Global().SetSpillDirectory("");
  ServiceRegistry::Global().Clear();
}

TEST(ServerTest, ShutdownRequestUnblocksWait) {
  Catalog catalog(PrivateOptions());
  Server server(&catalog, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  std::thread waiter([&] { server.Wait(); });
  Client client = MustConnect(server.bound_address());
  ASSERT_TRUE(client.Shutdown().ok());
  waiter.join();
  server.Stop();
}

}  // namespace
}  // namespace server
}  // namespace pcbl
