// Tests for the Fig. 1-style nutrition-label renderer.
#include "core/render.h"

#include <gtest/gtest.h>

#include "core/search.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

TEST(RenderTest, ContainsCoreSections) {
  Table t = workload::MakeFig2Demo();
  Label l = Label::Build(t, AttrMask::FromIndices({1, 3}));
  PortableLabel p = MakePortable(l, t, "fig2");
  std::string out = RenderNutritionLabel(p);
  EXPECT_NE(out.find("Dataset: fig2"), std::string::npos);
  EXPECT_NE(out.find("Total size: 18"), std::string::npos);
  EXPECT_NE(out.find("Female"), std::string::npos);
  EXPECT_NE(out.find("Pattern counts over { age group, marital status }"),
            std::string::npos);
  EXPECT_NE(out.find("under 20 / single"), std::string::npos);
}

TEST(RenderTest, ErrorSummaryIncludedWhenProvided) {
  Table t = workload::MakeFig2Demo();
  LabelSearch search(t);
  SearchOptions options;
  options.size_bound = 5;
  SearchResult r = search.TopDown(options);
  PortableLabel p = MakePortable(r.label, t, "fig2");
  std::string with = RenderNutritionLabel(p, &r.error);
  std::string without = RenderNutritionLabel(p);
  EXPECT_NE(with.find("Maximal Error"), std::string::npos);
  EXPECT_NE(with.find("Average Error"), std::string::npos);
  EXPECT_NE(with.find("Standard deviation"), std::string::npos);
  EXPECT_EQ(without.find("Maximal Error"), std::string::npos);
}

TEST(RenderTest, ErrorSummarySuppressedByOption) {
  Table t = workload::MakeFig2Demo();
  Label l = Label::Build(t, AttrMask::FromIndices({1, 3}));
  PortableLabel p = MakePortable(l, t, "fig2");
  ErrorReport err;
  err.max_abs = 5;
  RenderOptions opts;
  opts.include_error_summary = false;
  std::string out = RenderNutritionLabel(p, &err, opts);
  EXPECT_EQ(out.find("Maximal Error"), std::string::npos);
}

TEST(RenderTest, TruncationNotices) {
  Table t = workload::MakeCompas(2000, 3).value();
  Label l = Label::Build(t, AttrMask::FromIndices({12, 14}));
  PortableLabel p = MakePortable(l, t, "compas");
  RenderOptions opts;
  opts.max_values_per_attribute = 2;
  opts.max_pattern_rows = 3;
  std::string out = RenderNutritionLabel(p, nullptr, opts);
  EXPECT_NE(out.find("more values"), std::string::npos);
  EXPECT_NE(out.find("more patterns"), std::string::npos);
}

TEST(RenderTest, VcOnlyLabelOmitsPcSection) {
  Table t = workload::MakeFig2Demo();
  Label l = Label::Build(t, AttrMask());
  PortableLabel p = MakePortable(l, t, "fig2");
  std::string out = RenderNutritionLabel(p);
  EXPECT_EQ(out.find("Pattern counts over"), std::string::npos);
}

TEST(RenderTest, PercentagesShown) {
  Table t = workload::MakeFig2Demo();
  Label l = Label::Build(t, AttrMask::FromIndices({1, 3}));
  PortableLabel p = MakePortable(l, t, "fig2");
  std::string out = RenderNutritionLabel(p);
  // Female is 9/18 = 50%.
  EXPECT_NE(out.find("50%"), std::string::npos);
}

}  // namespace
}  // namespace pcbl
