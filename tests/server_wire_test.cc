// Tests for the `pcbl serve` wire protocol (server/wire.h):
//
//  * round-trip identity for every QuerySpec kind and field — focus
//    masks, pattern terms, the consumer-side PortableLabel, and all
//    seven per-query overrides;
//  * byte stability against pinned golden buffers — the encoding is a
//    contract, a silent change breaks deployed clients;
//  * QueryResult round trips for all three kinds (search with
//    candidates, true count with/without estimate, profile pairs) and
//    Status codes including the retryable kUnavailable and the shed
//    kResourceExhausted;
//  * the bounded-read decoder: corrupt magic, wrong version, unknown
//    type, an oversized length field (rejected before any allocation —
//    the PR 1 corrupted-length fix, applied to the socket), truncated
//    payloads, trailing bytes, and hostile string lengths all decode to
//    kInvalidArgument, never to a crash or an attacker-sized buffer.
#include "server/wire.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/query.h"
#include "core/portable_label.h"
#include "util/status.h"

namespace pcbl {
namespace server {
namespace {

using api::QuerySpec;

// --- golden buffers ---------------------------------------------------------
// Pinned bytes of the v1 encoding. Extending the protocol means a new
// version or appended fields, never a change to these buffers.

constexpr char kGoldenSearchSpec[] =
    "\x00\x01\x40\x00\x00\x00\x00\x00\x00\x00\x03\x00"
    "\x00\x00\x00\x00\x00\xf8\x3f\x01\x0b\x00\x00\x00"
    "\x00\x00\x00\x00\x00\x00\x00\x00\x00\x7f\x00\x03"
    "\x00\x00\x00\x00\x00\x00\x00\x01\x00\x10\x00\x00"
    "\x00\x00\x00\x00\x00\x08\x00\x00\x00\x00\x00\x00"
    "\x00\x01\x00\x00\x10\x00\x00\x00\x00\x00";

constexpr char kGoldenTrueCountSpec[] =
    "\x01\x00\x64\x00\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x00\x00\x00\x00\x02\x00\x00\x00\x04\x00\x00\x00"
    "\x72\x61\x63\x65\x10\x00\x00\x00\x41\x66\x72\x69"
    "\x63\x61\x6e\x2d\x41\x6d\x65\x72\x69\x63\x61\x6e"
    "\x03\x00\x00\x00\x73\x65\x78\x06\x00\x00\x00\x46"
    "\x65\x6d\x61\x6c\x65\x00\x00\x00";

constexpr char kGoldenProfileSpec[] =
    "\x02\x00\x64\x00\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"
    "\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00";

constexpr char kGoldenQueryFrame[] =
    "\x50\x43\x42\x57\x02\x00\x02\x00\x03\x00\x00\x00"
    "\x61\x62\x63";

QuerySpec FullSearchSpec() {
  QuerySpec spec =
      QuerySpec::LabelSearch(64, QuerySpec::Algorithm::kNaive);
  spec.metric = OptimizationMetric::kMeanQError;
  spec.time_limit_seconds = 1.5;
  spec.record_candidates = true;
  spec.focus = AttrMask(uint64_t{0b1011});
  spec.num_threads = 3;
  spec.use_counting_engine = true;
  spec.counting_cache_budget = 4096;
  spec.min_rows_per_morsel = 2048;
  spec.use_wave_scheduler = false;
  spec.use_result_cache = true;
  spec.result_cache_budget = 1 << 20;
  return spec;
}

PortableLabel SampleLabel() {
  PortableLabel label;
  label.dataset_name = "compas";
  label.total_rows = 7;
  label.attribute_names = {"race", "sex"};
  label.value_counts = {{{"A", 4}, {"B", 3}}, {{"F", 5}, {"M", 2}}};
  label.label_attributes = {0, 1};
  label.pattern_counts = {{{"A", "F"}, 3}, {{"B", "M"}, 2}};
  return label;
}

std::string EncodeSpec(const QuerySpec& spec) {
  wire::Writer out;
  wire::EncodeQuerySpec(spec, &out);
  return out.Take();
}

QuerySpec RoundTripSpec(const QuerySpec& spec) {
  const std::string bytes = EncodeSpec(spec);
  wire::Reader in(bytes);
  auto decoded = wire::DecodeQuerySpec(in);
  EXPECT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(in.Finish().ok());
  return decoded.ok() ? *decoded : QuerySpec();
}

TEST(WireSpecTest, SearchSpecRoundTripsEveryField) {
  const QuerySpec spec = FullSearchSpec();
  const QuerySpec got = RoundTripSpec(spec);
  EXPECT_EQ(got.kind, spec.kind);
  EXPECT_EQ(got.algorithm, spec.algorithm);
  EXPECT_EQ(got.size_bound, spec.size_bound);
  EXPECT_EQ(got.metric, spec.metric);
  EXPECT_EQ(got.time_limit_seconds, spec.time_limit_seconds);
  EXPECT_EQ(got.record_candidates, spec.record_candidates);
  EXPECT_EQ(got.focus.bits(), spec.focus.bits());
  EXPECT_EQ(got.num_threads, spec.num_threads);
  EXPECT_EQ(got.use_counting_engine, spec.use_counting_engine);
  EXPECT_EQ(got.counting_cache_budget, spec.counting_cache_budget);
  EXPECT_EQ(got.min_rows_per_morsel, spec.min_rows_per_morsel);
  EXPECT_EQ(got.use_wave_scheduler, spec.use_wave_scheduler);
  EXPECT_EQ(got.use_result_cache, spec.use_result_cache);
  EXPECT_EQ(got.result_cache_budget, spec.result_cache_budget);
}

TEST(WireSpecTest, UnsetOverridesStayUnset) {
  const QuerySpec got = RoundTripSpec(QuerySpec::LabelSearch(100));
  EXPECT_FALSE(got.num_threads.has_value());
  EXPECT_FALSE(got.use_counting_engine.has_value());
  EXPECT_FALSE(got.counting_cache_budget.has_value());
  EXPECT_FALSE(got.min_rows_per_morsel.has_value());
  EXPECT_FALSE(got.use_wave_scheduler.has_value());
  EXPECT_FALSE(got.use_result_cache.has_value());
  EXPECT_FALSE(got.result_cache_budget.has_value());
  EXPECT_EQ(got.label, nullptr);
}

TEST(WireSpecTest, TrueCountSpecCarriesPatternAndLabel) {
  QuerySpec spec = QuerySpec::TrueCount(
      {{"race", "African-American"}, {"sex", "Female"}});
  spec.label = std::make_shared<const PortableLabel>(SampleLabel());
  const QuerySpec got = RoundTripSpec(spec);
  EXPECT_EQ(got.kind, QuerySpec::Kind::kTrueCount);
  ASSERT_EQ(got.pattern.size(), 2u);
  EXPECT_EQ(got.pattern[0].first, "race");
  EXPECT_EQ(got.pattern[0].second, "African-American");
  EXPECT_EQ(got.pattern[1].first, "sex");
  EXPECT_EQ(got.pattern[1].second, "Female");
  ASSERT_NE(got.label, nullptr);
  // The label travels through its own pinned binary format.
  EXPECT_EQ(ToBinary(*got.label), ToBinary(*spec.label));
}

TEST(WireSpecTest, ProfileSpecRoundTrips) {
  const QuerySpec got = RoundTripSpec(QuerySpec::Profile());
  EXPECT_EQ(got.kind, QuerySpec::Kind::kProfile);
}

TEST(WireSpecTest, GoldenBuffersAreStable) {
  EXPECT_EQ(EncodeSpec(FullSearchSpec()),
            std::string(kGoldenSearchSpec, sizeof(kGoldenSearchSpec) - 1));
  EXPECT_EQ(EncodeSpec(QuerySpec::TrueCount(
                {{"race", "African-American"}, {"sex", "Female"}})),
            std::string(kGoldenTrueCountSpec,
                        sizeof(kGoldenTrueCountSpec) - 1));
  EXPECT_EQ(EncodeSpec(QuerySpec::Profile()),
            std::string(kGoldenProfileSpec,
                        sizeof(kGoldenProfileSpec) - 1));
}

TEST(WireSpecTest, GoldenBuffersDecode) {
  wire::Reader in(std::string_view(kGoldenSearchSpec,
                                   sizeof(kGoldenSearchSpec) - 1));
  auto decoded = wire::DecodeQuerySpec(in);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_TRUE(in.Finish().ok());
  EXPECT_EQ(decoded->size_bound, 64);
  EXPECT_EQ(decoded->algorithm, QuerySpec::Algorithm::kNaive);
  EXPECT_EQ(decoded->focus.bits(), uint64_t{0b1011});
  EXPECT_EQ(decoded->result_cache_budget, 1 << 20);
}

TEST(WireSpecTest, UnknownEnumValuesAreRejected) {
  std::string bytes = EncodeSpec(QuerySpec::Profile());
  bytes[0] = '\x07';  // kind
  wire::Reader in(bytes);
  EXPECT_EQ(wire::DecodeQuerySpec(in).status().code(),
            StatusCode::kInvalidArgument);

  bytes = EncodeSpec(QuerySpec::LabelSearch(10));
  bytes[1] = '\x09';  // algorithm
  wire::Reader in2(bytes);
  EXPECT_EQ(wire::DecodeQuerySpec(in2).status().code(),
            StatusCode::kInvalidArgument);
}

// --- frames -----------------------------------------------------------------

TEST(WireFrameTest, FrameHeaderGolden) {
  EXPECT_EQ(wire::EncodeFrame(wire::MessageType::kQuery, "abc"),
            std::string(kGoldenQueryFrame, sizeof(kGoldenQueryFrame) - 1));
}

TEST(WireFrameTest, HeaderRoundTrips) {
  const std::string frame =
      wire::EncodeFrame(wire::MessageType::kStats, "xyzw");
  ASSERT_GE(frame.size(), static_cast<size_t>(wire::kFrameHeaderBytes));
  auto header = wire::DecodeFrameHeader(frame.data(),
                                        wire::kDefaultMaxFrameBytes);
  ASSERT_TRUE(header.ok()) << header.status();
  EXPECT_EQ(header->type, wire::MessageType::kStats);
  EXPECT_EQ(header->payload_bytes, 4);
}

TEST(WireFrameTest, CorruptMagicIsRejected) {
  std::string frame = wire::EncodeFrame(wire::MessageType::kHello, "");
  frame[0] = 'X';
  EXPECT_EQ(wire::DecodeFrameHeader(frame.data(),
                                    wire::kDefaultMaxFrameBytes)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(WireFrameTest, WrongVersionIsRejected) {
  std::string frame = wire::EncodeFrame(wire::MessageType::kHello, "");
  frame[4] = '\x63';
  EXPECT_EQ(wire::DecodeFrameHeader(frame.data(),
                                    wire::kDefaultMaxFrameBytes)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(WireFrameTest, UnknownTypeIsRejected) {
  std::string frame = wire::EncodeFrame(wire::MessageType::kHello, "");
  frame[6] = '\x63';
  EXPECT_EQ(wire::DecodeFrameHeader(frame.data(),
                                    wire::kDefaultMaxFrameBytes)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// The corrupted-length class of bug (PR 1): a hostile length field must
// be refused by the header check, *before* any buffer is sized from it.
TEST(WireFrameTest, OversizedLengthIsRejectedBeforeAllocation) {
  std::string frame = wire::EncodeFrame(wire::MessageType::kQuery, "abc");
  const uint32_t huge = 0x7fffffff;  // claims a 2 GiB payload
  std::memcpy(&frame[8], &huge, sizeof(huge));
  const Status status =
      wire::DecodeFrameHeader(frame.data(), wire::kDefaultMaxFrameBytes)
          .status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // A tighter limit tightens the refusal; the boundary itself passes.
  EXPECT_FALSE(
      wire::DecodeFrameHeader(frame.data(), /*max_frame_bytes=*/16).ok());
  const uint32_t small = 16;
  std::memcpy(&frame[8], &small, sizeof(small));
  EXPECT_TRUE(
      wire::DecodeFrameHeader(frame.data(), /*max_frame_bytes=*/16).ok());
}

// --- bounded reader ---------------------------------------------------------

TEST(WireReaderTest, TruncatedPayloadFailsSticky) {
  const std::string bytes = EncodeSpec(FullSearchSpec());
  for (size_t cut : {size_t{0}, size_t{1}, bytes.size() / 2,
                     bytes.size() - 1}) {
    wire::Reader in(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(wire::DecodeQuerySpec(in).ok()) << "cut=" << cut;
  }
}

TEST(WireReaderTest, HostileStringLengthIsBoundsChecked) {
  // A string whose length field claims far more bytes than the payload
  // holds: the reader must fail, not allocate the claimed size.
  wire::Writer out;
  out.U32(0xfffffff0u);
  out.Str("tiny");
  wire::Reader in(out.bytes());
  EXPECT_TRUE(in.Str().empty());
  EXPECT_FALSE(in.ok());
  EXPECT_EQ(in.Finish().code(), StatusCode::kInvalidArgument);
}

TEST(WireReaderTest, TrailingBytesFailFinish) {
  std::string bytes = EncodeSpec(QuerySpec::Profile());
  bytes += "junk";
  wire::Reader in(bytes);
  EXPECT_TRUE(wire::DecodeQuerySpec(in).ok());
  EXPECT_EQ(in.Finish().code(), StatusCode::kInvalidArgument);
}

// --- status and replies -----------------------------------------------------

TEST(WireStatusTest, EveryCodeRoundTrips) {
  const std::vector<Status> statuses = {
      Status::Ok(),
      InvalidArgumentError("bad"),
      NotFoundError("missing"),
      UnavailableError("evicted — reacquire and retry"),
      ResourceExhaustedError("tenant quota full"),
  };
  for (const Status& status : statuses) {
    wire::Writer out;
    wire::EncodeStatus(status, &out);
    wire::Reader in(out.bytes());
    Status decoded;
    ASSERT_TRUE(wire::DecodeStatus(in, &decoded).ok());
    EXPECT_EQ(decoded, status);
  }
}

TEST(WireStatusTest, UnknownCodeIsRejected) {
  wire::Writer out;
  out.U32(999);
  out.Str("?");
  wire::Reader in(out.bytes());
  Status decoded;
  EXPECT_EQ(wire::DecodeStatus(in, &decoded).code(),
            StatusCode::kInvalidArgument);
}

TEST(WireReplyTest, ShedHeaderCarriesRetryHint) {
  wire::ReplyHeader header;
  header.status = ResourceExhaustedError("quota");
  header.retry_after_ms = 75;
  wire::Writer out;
  wire::EncodeReplyHeader(header, &out);
  wire::Reader in(out.bytes());
  auto got = wire::DecodeReplyHeader(in);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(got->retry_after_ms, 75);
}

wire::WireQueryResult RoundTripResult(const wire::WireQueryResult& result) {
  wire::Writer out;
  wire::EncodeQueryResult(result, &out);
  wire::Reader in(out.bytes());
  auto decoded = wire::DecodeQueryResult(in);
  EXPECT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(in.Finish().ok());
  return decoded.ok() ? *decoded : wire::WireQueryResult();
}

TEST(WireResultTest, SearchResultRoundTrips) {
  wire::WireQueryResult result;
  result.kind = QuerySpec::Kind::kLabelSearch;
  result.total_rows = 1234;
  result.search.best_attrs_bits = 0b101;
  result.search.label = SampleLabel();
  result.search.error.max_abs = 3.5;
  result.search.error.mean_abs = 1.25;
  result.search.error.std_abs = 0.5;
  result.search.error.max_q = 2.0;
  result.search.error.mean_q = 1.1;
  result.search.error.evaluated = 480;
  result.search.error.total = 483;
  result.search.error.early_terminated = true;
  result.search.stats.subsets_examined = 5534;
  result.search.stats.within_bound = 1697;
  result.search.stats.levels_completed = 3;
  result.search.stats.timed_out = true;
  result.search.stats.counting.full_scans = 42;
  result.search.stats.counting.cache_hits = 17;
  CandidateInfo candidate;
  candidate.attrs = AttrMask(uint64_t{0b11});
  candidate.label_size = 64;
  candidate.max_error = 7.5;
  result.search.candidates.push_back(candidate);

  const wire::WireQueryResult got = RoundTripResult(result);
  EXPECT_TRUE(got.status.ok());
  EXPECT_EQ(got.total_rows, 1234);
  EXPECT_EQ(got.search.best_attrs_bits, uint64_t{0b101});
  EXPECT_EQ(ToBinary(got.search.label), ToBinary(result.search.label));
  EXPECT_EQ(got.search.error.max_abs, 3.5);
  EXPECT_EQ(got.search.error.evaluated, 480);
  EXPECT_TRUE(got.search.error.early_terminated);
  EXPECT_EQ(got.search.stats.subsets_examined, 5534);
  EXPECT_EQ(got.search.stats.levels_completed, 3);
  EXPECT_TRUE(got.search.stats.timed_out);
  EXPECT_EQ(got.search.stats.counting.full_scans, 42);
  EXPECT_EQ(got.search.stats.counting.cache_hits, 17);
  ASSERT_EQ(got.search.candidates.size(), 1u);
  EXPECT_EQ(got.search.candidates[0].attrs.bits(), uint64_t{0b11});
  EXPECT_EQ(got.search.candidates[0].label_size, 64);
  EXPECT_EQ(got.search.candidates[0].max_error, 7.5);
}

TEST(WireResultTest, TrueCountRoundTripsWithAndWithoutEstimate) {
  wire::WireQueryResult result;
  result.kind = QuerySpec::Kind::kTrueCount;
  result.total_rows = 500;
  result.true_count = 77;
  wire::WireQueryResult got = RoundTripResult(result);
  EXPECT_EQ(got.true_count, 77);
  EXPECT_FALSE(got.estimate.has_value());

  result.estimate = 76.5;
  got = RoundTripResult(result);
  ASSERT_TRUE(got.estimate.has_value());
  EXPECT_EQ(*got.estimate, 76.5);
}

TEST(WireResultTest, ProfileRoundTrips) {
  wire::WireQueryResult result;
  result.kind = QuerySpec::Kind::kProfile;
  result.total_rows = 500;
  result.pairs = {{0, 1, 15}, {0, 2, 9}, {1, 2, 21}};
  const wire::WireQueryResult got = RoundTripResult(result);
  ASSERT_EQ(got.pairs.size(), 3u);
  EXPECT_EQ(got.pairs[2].attr_a, 1);
  EXPECT_EQ(got.pairs[2].attr_b, 2);
  EXPECT_EQ(got.pairs[2].size, 21);
}

TEST(WireResultTest, QueryLevelErrorRoundTrips) {
  wire::WireQueryResult result;
  result.kind = QuerySpec::Kind::kTrueCount;
  result.status = UnavailableError("service evicted");
  const wire::WireQueryResult got = RoundTripResult(result);
  EXPECT_EQ(got.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(got.status.message(), "service evicted");
}

TEST(WireStatsTest, StatsReplyRoundTrips) {
  wire::StatsReply reply;
  wire::TenantStatsRow row;
  row.tenant = "acme";
  row.queries = 10;
  row.shed = 3;
  row.errors = 1;
  row.inflight = 2;
  row.sessions = 4;
  row.service.result_hits = 6;
  row.service.append_batches = 2;
  reply.tenants.push_back(row);
  reply.registry.acquires = 9;
  reply.registry.services = 1;
  reply.registry.resident_bytes = 1 << 20;
  reply.registry.interned_values = 12;
  reply.registry.spill_hits = 5;
  reply.registry.spill_misses = 7;
  reply.registry.spill_rejects = 1;
  reply.registry.spills = 8;
  reply.registry.spilled_bytes = 1 << 16;

  wire::Writer out;
  wire::EncodeStatsReply(reply, &out);
  wire::Reader in(out.bytes());
  auto got = wire::DecodeStatsReply(in);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_TRUE(in.Finish().ok());
  ASSERT_EQ(got->tenants.size(), 1u);
  EXPECT_EQ(got->tenants[0].tenant, "acme");
  EXPECT_EQ(got->tenants[0].shed, 3);
  EXPECT_EQ(got->tenants[0].service.result_hits, 6);
  EXPECT_EQ(got->tenants[0].service.append_batches, 2);
  EXPECT_EQ(got->registry.acquires, 9);
  EXPECT_EQ(got->registry.resident_bytes, 1 << 20);
  EXPECT_EQ(got->registry.interned_values, 12);
  EXPECT_EQ(got->registry.spill_hits, 5);
  EXPECT_EQ(got->registry.spill_misses, 7);
  EXPECT_EQ(got->registry.spill_rejects, 1);
  EXPECT_EQ(got->registry.spills, 8);
  EXPECT_EQ(got->registry.spilled_bytes, 1 << 16);
}

TEST(WireRequestTest, RequestsRoundTrip) {
  {
    wire::Writer out;
    wire::EncodeQueryRequest(
        {"tenant-a", "compas", QuerySpec::LabelSearch(50)}, &out);
    wire::Reader in(out.bytes());
    auto got = wire::DecodeQueryRequest(in);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_TRUE(in.Finish().ok());
    EXPECT_EQ(got->tenant, "tenant-a");
    EXPECT_EQ(got->dataset, "compas");
    EXPECT_EQ(got->spec.size_bound, 50);
  }
  {
    wire::Writer out;
    wire::EncodeRegisterRequest({"t", "d", "a,b\n1,2\n"}, &out);
    wire::Reader in(out.bytes());
    auto got = wire::DecodeRegisterRequest(in);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->csv_text, "a,b\n1,2\n");
  }
  {
    wire::Writer out;
    wire::EncodeRegisterReply({{0x1234, 0x5678}, 99, true}, &out);
    wire::Reader in(out.bytes());
    auto got = wire::DecodeRegisterReply(in);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->fingerprint.lo, 0x1234u);
    EXPECT_EQ(got->fingerprint.hi, 0x5678u);
    EXPECT_EQ(got->rows, 99);
    EXPECT_TRUE(got->shared_existing);
  }
}

}  // namespace
}  // namespace server
}  // namespace pcbl
