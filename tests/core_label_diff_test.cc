// Tests for label diffing (core/label_diff): versioned-metadata change
// logs computed from two labels alone.
#include "core/label_diff.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/label.h"
#include "core/portable_label.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

PortableLabel LabelOf(const Table& t, AttrMask s,
                      const std::string& name = "v") {
  return MakePortable(Label::Build(t, s), t, name);
}

Table SmallTable(const std::vector<std::vector<std::string>>& rows) {
  auto b = TableBuilder::Create({"a", "b"});
  PCBL_CHECK(b.ok());
  for (const auto& row : rows) PCBL_CHECK(b->AddRow(row).ok());
  return b->Build();
}

TEST(LabelDiffTest, IdenticalLabelsProduceEmptyDiff) {
  Table t = workload::MakeFig2Demo();
  PortableLabel l = LabelOf(t, AttrMask::FromIndices({1, 3}));
  LabelDiff diff = DiffLabels(l, l);
  EXPECT_EQ(diff.old_rows, diff.new_rows);
  EXPECT_TRUE(diff.added_attributes.empty());
  EXPECT_TRUE(diff.removed_attributes.empty());
  EXPECT_DOUBLE_EQ(diff.max_total_variation(), 0.0);
  EXPECT_TRUE(diff.comparable_patterns);
  EXPECT_TRUE(diff.pattern_changes.empty());
}

TEST(LabelDiffTest, MarginalShiftMeasuredAsTotalVariation) {
  // Old: a is 50/50 x,y. New: 75/25. TV = (|0.5-0.75| + |0.5-0.25|)/2
  // = 0.25.
  Table old_t = SmallTable({{"x", "p"}, {"x", "p"}, {"y", "p"}, {"y", "p"}});
  Table new_t = SmallTable({{"x", "p"}, {"x", "p"}, {"x", "p"}, {"y", "p"}});
  LabelDiff diff = DiffLabels(LabelOf(old_t, AttrMask::FromIndices({0, 1})),
                              LabelOf(new_t, AttrMask::FromIndices({0, 1})));
  ASSERT_EQ(diff.shifts.size(), 2u);
  // Shifts are ordered by TV descending: attribute a first.
  EXPECT_EQ(diff.shifts[0].attribute, "a");
  EXPECT_NEAR(diff.shifts[0].total_variation, 0.25, 1e-12);
  EXPECT_EQ(diff.shifts[1].attribute, "b");
  EXPECT_NEAR(diff.shifts[1].total_variation, 0.0, 1e-12);
}

TEST(LabelDiffTest, AddedAndRemovedValuesListed) {
  Table old_t = SmallTable({{"x", "p"}, {"y", "p"}});
  Table new_t = SmallTable({{"x", "p"}, {"z", "q"}});
  LabelDiff diff = DiffLabels(LabelOf(old_t, AttrMask::FromIndices({0, 1})),
                              LabelOf(new_t, AttrMask::FromIndices({0, 1})));
  const AttributeShift* a = nullptr;
  for (const AttributeShift& s : diff.shifts) {
    if (s.attribute == "a") a = &s;
  }
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->added_values, std::vector<std::string>{"z"});
  EXPECT_EQ(a->removed_values, std::vector<std::string>{"y"});
}

TEST(LabelDiffTest, PatternChurnDetected) {
  Table old_t = SmallTable({{"x", "p"}, {"x", "p"}, {"y", "q"}});
  Table new_t = SmallTable({{"x", "p"}, {"y", "q"}, {"y", "q"}, {"z", "q"}});
  LabelDiff diff = DiffLabels(LabelOf(old_t, AttrMask::FromIndices({0, 1})),
                              LabelOf(new_t, AttrMask::FromIndices({0, 1})));
  ASSERT_TRUE(diff.comparable_patterns);
  // (x,p): 2 -> 1; (y,q): 1 -> 2; (z,q): 0 -> 1.
  ASSERT_EQ(diff.pattern_changes.size(), 3u);
  for (const PatternChange& c : diff.pattern_changes) {
    if (c.values == std::vector<std::string>{"x", "p"}) {
      EXPECT_EQ(c.old_count, 2);
      EXPECT_EQ(c.new_count, 1);
    } else if (c.values == std::vector<std::string>{"y", "q"}) {
      EXPECT_EQ(c.old_count, 1);
      EXPECT_EQ(c.new_count, 2);
    } else {
      EXPECT_EQ(c.values, (std::vector<std::string>{"z", "q"}));
      EXPECT_EQ(c.old_count, 0);
      EXPECT_EQ(c.new_count, 1);
    }
  }
}

TEST(LabelDiffTest, DifferentSIsNotComparable) {
  Table t = workload::MakeFig2Demo();
  LabelDiff diff = DiffLabels(LabelOf(t, AttrMask::FromIndices({1, 3})),
                              LabelOf(t, AttrMask::FromIndices({0, 1})));
  EXPECT_FALSE(diff.comparable_patterns);
  EXPECT_TRUE(diff.pattern_changes.empty());
  // Marginals still compare (same dataset: zero shift).
  EXPECT_DOUBLE_EQ(diff.max_total_variation(), 0.0);
}

TEST(LabelDiffTest, SameSInDifferentOrderIsComparable) {
  // Build a second label whose S enumerates the same attributes; the PC
  // rows must align regardless of stored order.
  Table t = workload::MakeFig2Demo();
  PortableLabel a = LabelOf(t, AttrMask::FromIndices({1, 3}));
  PortableLabel b = a;
  // Reverse S and each PC row, simulating a producer with different
  // column order.
  std::reverse(b.label_attributes.begin(), b.label_attributes.end());
  for (auto& [values, count] : b.pattern_counts) {
    std::reverse(values.begin(), values.end());
  }
  LabelDiff diff = DiffLabels(a, b);
  EXPECT_TRUE(diff.comparable_patterns);
  EXPECT_TRUE(diff.pattern_changes.empty()) << RenderLabelDiff(diff);
}

TEST(LabelDiffTest, SchemaChangesReported) {
  Table old_t = SmallTable({{"x", "p"}});
  auto nb = TableBuilder::Create({"a", "c"});
  PCBL_CHECK(nb.ok());
  PCBL_CHECK(nb->AddRow({"x", "m"}).ok());
  Table new_t = nb->Build();
  LabelDiff diff = DiffLabels(LabelOf(old_t, AttrMask::FromIndices({0, 1})),
                              LabelOf(new_t, AttrMask::FromIndices({0, 1})));
  EXPECT_EQ(diff.added_attributes, std::vector<std::string>{"c"});
  EXPECT_EQ(diff.removed_attributes, std::vector<std::string>{"b"});
  EXPECT_FALSE(diff.comparable_patterns);
}

TEST(LabelDiffTest, RenderMentionsEverySection) {
  Table old_t = SmallTable({{"x", "p"}, {"y", "q"}});
  Table new_t =
      SmallTable({{"x", "p"}, {"x", "p"}, {"y", "q"}, {"z", "q"}});
  LabelDiff diff = DiffLabels(LabelOf(old_t, AttrMask::FromIndices({0, 1})),
                              LabelOf(new_t, AttrMask::FromIndices({0, 1})));
  const std::string text = RenderLabelDiff(diff);
  EXPECT_NE(text.find("rows: 2 -> 4"), std::string::npos) << text;
  EXPECT_NE(text.find("marginal shifts"), std::string::npos);
  EXPECT_NE(text.find("pattern count changes"), std::string::npos);
  EXPECT_NE(text.find("appeared"), std::string::npos);
}

TEST(LabelDiffTest, DriftScenario) {
  // Two releases of the same generator at different sizes: marginals
  // barely move, pattern counts scale.
  Table v1 = workload::MakeCompas(4000, 7).value();
  Table v2 = workload::MakeCompas(8000, 7).value();
  AttrMask s = AttrMask::FromIndices({0, 2});
  LabelDiff diff = DiffLabels(LabelOf(v1, s, "v1"), LabelOf(v2, s, "v2"));
  EXPECT_EQ(diff.old_rows, 4000);
  EXPECT_EQ(diff.new_rows, 8000);
  EXPECT_LT(diff.max_total_variation(), 0.05);
  EXPECT_TRUE(diff.comparable_patterns);
  EXPECT_FALSE(diff.pattern_changes.empty());
}

}  // namespace
}  // namespace pcbl
