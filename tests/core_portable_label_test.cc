// Tests for PortableLabel (detached labels) and its JSON/binary formats.
#include "core/portable_label.h"

#include <gtest/gtest.h>

#include "workload/datasets.h"

namespace pcbl {
namespace {

PortableLabel DemoLabel() {
  Table t = workload::MakeFig2Demo();
  Label l = Label::Build(t, AttrMask::FromIndices({1, 3}));
  return MakePortable(l, t, "fig2-demo");
}

TEST(PortableLabelTest, CarriesEverything) {
  PortableLabel p = DemoLabel();
  EXPECT_EQ(p.dataset_name, "fig2-demo");
  EXPECT_EQ(p.total_rows, 18);
  EXPECT_EQ(p.attribute_names.size(), 4u);
  EXPECT_EQ(p.label_attributes, (std::vector<int>{1, 3}));
  EXPECT_EQ(p.size(), 3);
  EXPECT_EQ(p.value_counts.size(), 4u);
  // Gender VC: Female 9, Male 9.
  int64_t female = 0;
  for (const auto& [v, c] : p.value_counts[0]) {
    if (v == "Female") female = c;
  }
  EXPECT_EQ(female, 9);
}

TEST(PortableLabelTest, EstimateMatchesAttachedLabel) {
  // Example 2.12 numbers survive detachment from the table.
  PortableLabel p = DemoLabel();
  auto est = p.EstimateCount({{"gender", "Female"},
                              {"age group", "20-39"},
                              {"marital status", "married"}});
  ASSERT_TRUE(est.ok()) << est.status();
  EXPECT_DOUBLE_EQ(*est, 3.0);
}

TEST(PortableLabelTest, EstimateExactInsideS) {
  PortableLabel p = DemoLabel();
  auto est = p.EstimateCount(
      {{"age group", "under 20"}, {"marital status", "single"}});
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(*est, 6.0);
}

TEST(PortableLabelTest, EstimateUnknownValueIsZero) {
  PortableLabel p = DemoLabel();
  auto est = p.EstimateCount({{"gender", "Robot"}});
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(*est, 0.0);
}

TEST(PortableLabelTest, EstimateErrors) {
  PortableLabel p = DemoLabel();
  EXPECT_FALSE(p.EstimateCount({{"no such attr", "x"}}).ok());
  EXPECT_FALSE(
      p.EstimateCount({{"gender", "Male"}, {"gender", "Female"}}).ok());
}

TEST(PortableLabelTest, JsonRoundTrip) {
  PortableLabel p = DemoLabel();
  std::string json = ToJson(p);
  auto back = PortableLabelFromJson(json);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->dataset_name, p.dataset_name);
  EXPECT_EQ(back->total_rows, p.total_rows);
  EXPECT_EQ(back->attribute_names, p.attribute_names);
  EXPECT_EQ(back->label_attributes, p.label_attributes);
  EXPECT_EQ(back->pattern_counts, p.pattern_counts);
  EXPECT_EQ(back->value_counts, p.value_counts);
  // Estimates are identical after the round trip.
  auto est = back->EstimateCount({{"gender", "Female"},
                                  {"age group", "20-39"},
                                  {"marital status", "married"}});
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(*est, 3.0);
}

TEST(PortableLabelTest, CompactJsonAlsoParses) {
  PortableLabel p = DemoLabel();
  auto back = PortableLabelFromJson(ToJson(p, /*pretty=*/false));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->pattern_counts, p.pattern_counts);
}

TEST(PortableLabelTest, JsonRejectsWrongFormat) {
  EXPECT_FALSE(PortableLabelFromJson("{}").ok());
  EXPECT_FALSE(PortableLabelFromJson("[1,2]").ok());
  EXPECT_FALSE(PortableLabelFromJson("{\"format\":\"other\"}").ok());
  EXPECT_FALSE(PortableLabelFromJson("not json").ok());
}

TEST(PortableLabelTest, BinaryRoundTrip) {
  PortableLabel p = DemoLabel();
  std::string bytes = ToBinary(p);
  auto back = PortableLabelFromBinary(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->dataset_name, p.dataset_name);
  EXPECT_EQ(back->total_rows, p.total_rows);
  EXPECT_EQ(back->attribute_names, p.attribute_names);
  EXPECT_EQ(back->label_attributes, p.label_attributes);
  EXPECT_EQ(back->pattern_counts, p.pattern_counts);
  EXPECT_EQ(back->value_counts, p.value_counts);
}

TEST(PortableLabelTest, BinaryRejectsCorruption) {
  PortableLabel p = DemoLabel();
  std::string bytes = ToBinary(p);
  EXPECT_FALSE(PortableLabelFromBinary("XXXX").ok());
  EXPECT_FALSE(PortableLabelFromBinary(bytes.substr(0, 20)).ok());
  std::string extra = bytes + "junk";
  EXPECT_FALSE(PortableLabelFromBinary(extra).ok());
}

TEST(PortableLabelTest, FileRoundTripBothFormats) {
  PortableLabel p = DemoLabel();
  std::string json_path = ::testing::TempDir() + "/pcbl_label.json";
  std::string bin_path = ::testing::TempDir() + "/pcbl_label.bin";
  ASSERT_TRUE(SaveLabel(p, json_path, /*binary=*/false).ok());
  ASSERT_TRUE(SaveLabel(p, bin_path, /*binary=*/true).ok());
  auto from_json = LoadLabel(json_path);
  auto from_bin = LoadLabel(bin_path);
  ASSERT_TRUE(from_json.ok()) << from_json.status();
  ASSERT_TRUE(from_bin.ok()) << from_bin.status();
  EXPECT_EQ(from_json->pattern_counts, p.pattern_counts);
  EXPECT_EQ(from_bin->pattern_counts, p.pattern_counts);
  EXPECT_FALSE(LoadLabel("/nonexistent/label").ok());
}

}  // namespace
}  // namespace pcbl
