// Interface-contract tests swept over every CardinalityEstimator in the
// library (labels, baselines, and extensions): estimates are finite and
// non-negative, the full-pattern fast path agrees with the generic path,
// and metadata accessors behave. New estimators get this coverage by
// adding one factory line.
#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/cm_sketch.h"
#include "baselines/independence.h"
#include "baselines/pairwise_histogram.h"
#include "baselines/postgres.h"
#include "baselines/sampling.h"
#include "core/bound_label.h"
#include "core/incremental.h"
#include "core/multi_label.h"
#include "core/patched_label.h"
#include "core/portable_label.h"
#include "pattern/full_pattern_index.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

struct EstimatorCase {
  std::string name;
  std::function<std::unique_ptr<CardinalityEstimator>(const Table&)> make;
};

const Table& SharedTable() {
  static const Table* table = [] {
    auto t = workload::MakeCompas(3000, 7);
    PCBL_CHECK(t.ok());
    return new Table(std::move(t).value());
  }();
  return *table;
}

const FullPatternIndex& SharedIndex() {
  static const FullPatternIndex* index =
      new FullPatternIndex(FullPatternIndex::Build(SharedTable()));
  return *index;
}

std::vector<EstimatorCase> AllEstimators() {
  const AttrMask s = AttrMask::FromIndices({0, 2});
  return {
      {"Label",
       [s](const Table& t) {
         return std::make_unique<LabelEstimator>(Label::Build(t, s));
       }},
      {"Independence",
       [](const Table& t) {
         return std::make_unique<IndependenceEstimator>(
             IndependenceEstimator::Build(t));
       }},
      {"Postgres",
       [](const Table& t) {
         return std::make_unique<PostgresEstimator>(
             PostgresEstimator::Build(t));
       }},
      {"Sampling",
       [](const Table& t) {
         return std::make_unique<SamplingEstimator>(
             SamplingEstimator::Build(t, 500, 42));
       }},
      {"CmSketch",
       [](const Table& t) {
         auto sketch = CmSketchEstimator::BuildForBudget(t, 300);
         PCBL_CHECK(sketch.ok());
         return std::make_unique<CmSketchEstimator>(std::move(*sketch));
       }},
      {"PairwiseHistogram",
       [](const Table& t) {
         auto hist = PairwiseHistogramEstimator::Build(t);
         PCBL_CHECK(hist.ok());
         return std::make_unique<PairwiseHistogramEstimator>(
             std::move(*hist));
       }},
      {"MultiLabel",
       [s](const Table& t) {
         std::vector<Label> labels;
         labels.push_back(Label::Build(t, s));
         labels.push_back(Label::Build(t, AttrMask::FromIndices({12, 13})));
         return std::make_unique<MultiLabelEstimator>(
             std::move(labels), CombineStrategy::kMaxOverlap);
       }},
      {"MultiLabelFactorized",
       [s](const Table& t) {
         std::vector<Label> labels;
         labels.push_back(Label::Build(t, s));
         labels.push_back(Label::Build(t, AttrMask::FromIndices({12, 13})));
         return std::make_unique<MultiLabelEstimator>(
             std::move(labels), CombineStrategy::kFactorized);
       }},
      {"PatchedLabel",
       [s](const Table& t) {
         return std::make_unique<PatchedLabel>(
             Label::Build(t, s), FullPatternIndex::Build(t), 8);
       }},
      {"BoundPortableLabel",
       [s](const Table& t) {
         PortableLabel portable = MakePortable(Label::Build(t, s), t);
         auto bound = BoundPortableLabel::Bind(portable, t);
         PCBL_CHECK(bound.ok());
         return std::make_unique<BoundPortableLabel>(std::move(*bound));
       }},
      {"IncrementalLabel",
       [s](const Table& t) {
         auto inc = IncrementalLabel::Create(t, s, 1 << 20);
         PCBL_CHECK(inc.ok());
         return std::make_unique<IncrementalLabel>(std::move(*inc));
       }},
  };
}

class EstimatorContractTest : public testing::TestWithParam<EstimatorCase> {
 protected:
  std::unique_ptr<CardinalityEstimator> estimator_ =
      GetParam().make(SharedTable());
};

TEST_P(EstimatorContractTest, MetadataBehaves) {
  EXPECT_FALSE(estimator_->name().empty());
  EXPECT_GE(estimator_->FootprintEntries(), 0);
}

TEST_P(EstimatorContractTest, FullPatternEstimatesAreFiniteNonNegative) {
  const FullPatternIndex& index = SharedIndex();
  for (int64_t i = 0; i < index.num_patterns(); ++i) {
    const double est =
        estimator_->EstimateFullPattern(index.codes(i), index.width());
    ASSERT_TRUE(std::isfinite(est)) << GetParam().name << " pattern " << i;
    ASSERT_GE(est, 0.0) << GetParam().name << " pattern " << i;
  }
}

TEST_P(EstimatorContractTest, FastPathAgreesWithGenericPath) {
  const FullPatternIndex& index = SharedIndex();
  const int64_t n = std::min<int64_t>(index.num_patterns(), 200);
  for (int64_t i = 0; i < n; ++i) {
    const Pattern p = index.ToPattern(i);
    EXPECT_NEAR(estimator_->EstimateFullPattern(index.codes(i),
                                                index.width()),
                estimator_->EstimateCount(p),
                1e-6 * (1.0 + estimator_->EstimateCount(p)))
        << GetParam().name << " pattern " << i;
  }
}

TEST_P(EstimatorContractTest, PartialPatternsAreFiniteNonNegative) {
  const Table& t = SharedTable();
  for (const auto& named :
       std::vector<std::vector<std::pair<std::string, std::string>>>{
           {{"Gender", "Female"}},
           {{"Gender", "Female"}, {"Race", "Hispanic"}},
           {{"Race", "Other"}, {"MaritalStatus", "Widowed"}},
       }) {
    auto p = Pattern::Parse(t, named);
    ASSERT_TRUE(p.ok());
    const double est = estimator_->EstimateCount(*p);
    EXPECT_TRUE(std::isfinite(est)) << GetParam().name;
    EXPECT_GE(est, 0.0) << GetParam().name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEstimators, EstimatorContractTest,
    testing::ValuesIn(AllEstimators()),
    [](const testing::TestParamInfo<EstimatorCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace pcbl
