// Tests for the pcbl::api façade (Dataset / Session / QuerySpec):
//
//  * an API conformance suite asserting every façade query is
//    byte-identical to the direct LabelSearch / one-shot-counter path,
//    across engine/thread/budget configurations and — the PR's
//    acceptance criterion — after Session::Append, against a
//    from-scratch rebuild of the extended table;
//  * central validation: nonsense specs and options come back as Status;
//  * concurrency: two concurrent sessions over content-equal data
//    perform exactly one set of full scans between them (asserted via
//    the shared service's stats), and a submit/append/evict stress that
//    must be TSan-clean.
#include "api/session.h"

#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/artifact.h"
#include "api/dataset.h"
#include "api/query.h"
#include "core/pattern_set.h"
#include "core/portable_label.h"
#include "core/search.h"
#include "pattern/counter.h"
#include "pattern/pattern.h"
#include "pattern/service_registry.h"
#include "tests/differential_harness.h"
#include "util/str.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

using api::Dataset;
using api::DatasetOptions;
using api::QueryFuture;
using api::QueryResult;
using api::QuerySpec;
using api::Session;
using api::SessionOptions;
using testing::DifferentialHarness;
using testing::DifferentialWorkload;
using testing::RandomWorkload;

Dataset PrivateDataset(const Table& table) {
  DatasetOptions options;
  options.private_service = true;
  auto dataset = Dataset::FromTable(table, options);
  PCBL_CHECK(dataset.ok()) << dataset.status();
  return *dataset;
}

std::unique_ptr<Session> OpenSession(Dataset dataset,
                                     SessionOptions options = {}) {
  auto session = Session::Open(std::move(dataset), options);
  PCBL_CHECK(session.ok()) << session.status();
  return std::move(*session);
}

// Byte-identity between two search results: attribute set, PC set, |D|,
// and the full exact error report. Stats are allowed to differ (cache
// temperature is not part of the contract).
void ExpectSameSearchResult(const SearchResult& got,
                            const SearchResult& want,
                            const std::string& context) {
  EXPECT_EQ(got.best_attrs.bits(), want.best_attrs.bits()) << context;
  EXPECT_EQ(got.label.size(), want.label.size()) << context;
  EXPECT_EQ(got.label.total_rows(), want.label.total_rows()) << context;
  testing::ExpectSameGroupCounts(got.label.pattern_counts(),
                                 want.label.pattern_counts(), context);
  EXPECT_EQ(got.error.max_abs, want.error.max_abs) << context;
  EXPECT_EQ(got.error.mean_abs, want.error.mean_abs) << context;
  EXPECT_EQ(got.error.std_abs, want.error.std_abs) << context;
  EXPECT_EQ(got.error.max_q, want.error.max_q) << context;
  EXPECT_EQ(got.error.mean_q, want.error.mean_q) << context;
  EXPECT_EQ(got.error.evaluated, want.error.evaluated) << context;
  EXPECT_EQ(got.error.total, want.error.total) << context;
  EXPECT_EQ(got.error.early_terminated, want.error.early_terminated)
      << context;
}

// One façade configuration of the conformance grid.
struct ApiConfig {
  std::string name;
  bool use_engine = true;
  int num_threads = 1;
  int64_t cache_budget = -1;  // -1 = default
  bool bulk_append = false;   // Append(Table) instead of AppendRow loop
};

std::vector<ApiConfig> ConformanceConfigs() {
  return {
      {"engine_serial", true, 1, -1, false},
      {"engine_threads", true, 3, -1, true},
      {"engine_budget0", true, 2, 0, false},
      {"no_engine", false, 1, -1, true},
      {"no_engine_threads", false, 2, -1, false},
  };
}

SessionOptions ToSessionOptions(const ApiConfig& config) {
  SessionOptions options;
  options.num_threads = config.num_threads;
  options.use_counting_engine = config.use_engine;
  options.counting_cache_budget = config.cache_budget;
  return options;
}

SearchOptions ToSearchOptions(const ApiConfig& config, int64_t bound) {
  SearchOptions options;
  options.size_bound = bound;
  options.num_threads = config.num_threads;
  options.use_counting_engine = config.use_engine;
  if (config.cache_budget >= 0) {
    options.counting_cache_budget = config.cache_budget;
  }
  return options;
}

TEST(ApiConformanceTest, SearchMatchesDirectLabelSearch) {
  Table table = workload::MakeCompas(1500, 23).value();
  constexpr int64_t kBound = 60;
  // The reference: the direct low-level path, whose own config
  // independence is covered by the engine/service suites.
  LabelSearch direct(table);
  SearchOptions reference_options;
  reference_options.size_bound = kBound;
  const SearchResult want_topdown = direct.TopDown(reference_options);
  const SearchResult want_naive = direct.Naive(reference_options);

  for (const ApiConfig& config : ConformanceConfigs()) {
    auto session =
        OpenSession(PrivateDataset(table), ToSessionOptions(config));
    QueryResult topdown =
        session->Run(QuerySpec::LabelSearch(kBound));
    ASSERT_TRUE(topdown.status.ok()) << topdown.status;
    ExpectSameSearchResult(topdown.search, want_topdown,
                           config.name + "/topdown");
    QueryResult naive = session->Run(QuerySpec::LabelSearch(
        kBound, QuerySpec::Algorithm::kNaive));
    ASSERT_TRUE(naive.status.ok()) << naive.status;
    ExpectSameSearchResult(naive.search, want_naive,
                           config.name + "/naive");
    EXPECT_EQ(topdown.total_rows, table.num_rows());
  }
}

TEST(ApiConformanceTest, FocusSearchMatchesDirectLabelSearch) {
  Table table = workload::MakeCompas(900, 29).value();
  const AttrMask focus = AttrMask::FromIndices({0, 1, 2});
  constexpr int64_t kBound = 80;

  LabelSearch direct(table);
  direct.SetEvaluationPatterns(std::make_shared<const PatternSet>(
      PatternSet::OverAttributes(table, focus)));
  SearchOptions reference_options;
  reference_options.size_bound = kBound;
  const SearchResult want = direct.TopDown(reference_options);

  auto session = OpenSession(PrivateDataset(table));
  QuerySpec spec = QuerySpec::LabelSearch(kBound);
  spec.focus = focus;
  QueryResult got = session->Run(spec);
  ASSERT_TRUE(got.status.ok()) << got.status;
  ExpectSameSearchResult(got.search, want, "focus");
}

// The PR's acceptance criterion: a search submitted after
// Session::Append succeeds, and its label, error and PC sets are
// byte-identical to a LabelSearch run on a from-scratch extended table.
TEST(ApiConformanceTest, AppendThenSearchMatchesFromScratchRebuild) {
  DifferentialWorkload workload = RandomWorkload(
      /*seed=*/177, /*attrs=*/4, /*base_rows=*/350, /*append_rows=*/80,
      /*domain=*/5, /*append_domain=*/8, /*null_percent=*/10);
  DifferentialHarness harness(std::move(workload));
  constexpr int64_t kBound = 40;

  // Reference: the full search over the rebuilt extended table.
  LabelSearch rebuilt(harness.reference());
  SearchOptions reference_options;
  reference_options.size_bound = kBound;
  const SearchResult want = rebuilt.TopDown(reference_options);
  const SearchResult want_naive = rebuilt.Naive(reference_options);

  // Append rows as the workload's string rows (fresh values intern
  // beyond the base code space).
  DifferentialWorkload rows = RandomWorkload(177, 4, 350, 80, 5, 8, 10);

  for (const ApiConfig& config : ConformanceConfigs()) {
    auto session = OpenSession(PrivateDataset(harness.base()),
                               ToSessionOptions(config));
    // Warm the cache first in some configs so the patch arm is
    // exercised against real entries.
    if (config.use_engine) {
      ASSERT_TRUE(
          session->Run(QuerySpec::LabelSearch(kBound)).status.ok());
    }
    if (config.bulk_append) {
      auto builder =
          TableBuilder::Create(rows.attribute_names);
      ASSERT_TRUE(builder.ok());
      for (const auto& row : rows.append_rows) {
        ASSERT_TRUE(builder->AddRow(row).ok());
      }
      const Table delta = builder->Build();
      ASSERT_TRUE(session->Append(delta).ok()) << config.name;
    } else {
      for (const auto& row : rows.append_rows) {
        ASSERT_TRUE(session->AppendRow(row).ok()) << config.name;
      }
    }
    EXPECT_EQ(session->appended_rows(),
              static_cast<int64_t>(rows.append_rows.size()));
    EXPECT_EQ(session->total_rows(), harness.reference().num_rows());

    QueryResult got = session->Run(QuerySpec::LabelSearch(kBound));
    ASSERT_TRUE(got.status.ok()) << config.name << ": " << got.status;
    EXPECT_EQ(got.total_rows, harness.reference().num_rows());
    ExpectSameSearchResult(got.search, want, config.name + "/topdown");

    QueryResult naive = session->Run(
        QuerySpec::LabelSearch(kBound, QuerySpec::Algorithm::kNaive));
    ASSERT_TRUE(naive.status.ok()) << naive.status;
    ExpectSameSearchResult(naive.search, want_naive,
                           config.name + "/naive");

    // And the search keeps matching after *more* appends interleaved
    // with queries (append -> search -> append -> search).
    ASSERT_TRUE(session
                    ->AppendRow(std::vector<std::string>(
                        rows.attribute_names.size(), "late-value"))
                    .ok());
    auto builder = TableBuilder::Create(rows.attribute_names);
    ASSERT_TRUE(builder.ok());
    for (const auto& row : rows.base_rows) {
      ASSERT_TRUE(builder->AddRow(row).ok());
    }
    for (const auto& row : rows.append_rows) {
      ASSERT_TRUE(builder->AddRow(row).ok());
    }
    ASSERT_TRUE(builder
                    ->AddRow(std::vector<std::string>(
                        rows.attribute_names.size(), "late-value"))
                    .ok());
    const Table extended_again = builder->Build();
    LabelSearch rebuilt_again(extended_again);
    const SearchResult want_again = rebuilt_again.TopDown(reference_options);
    QueryResult again = session->Run(QuerySpec::LabelSearch(kBound));
    ASSERT_TRUE(again.status.ok()) << again.status;
    ExpectSameSearchResult(again.search, want_again,
                           config.name + "/after-second-append");
  }
}

// A delta table's dictionary may carry values its rows never use (e.g.
// a delta produced by FilterRows keeps its parent's full dictionary).
// Append must intern only row-used values, in row-major first-seen
// order, or fresh ids shift against the from-scratch rebuild and the
// byte-identity above silently breaks.
TEST(ApiConformanceTest, AppendedDeltaWithUnusedDictionaryEntriesStaysExact) {
  const std::vector<std::string> names = {"a", "b"};
  auto base_builder = TableBuilder::Create(names);
  ASSERT_TRUE(base_builder.ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        base_builder->AddRow({"x" + std::to_string(i % 3), "y"}).ok());
  }
  const Table base = base_builder->Build();

  // Delta whose dictionary interns decoy values no row uses, *before*
  // the genuinely fresh row values.
  auto delta_builder = TableBuilder::Create(names);
  ASSERT_TRUE(delta_builder.ok());
  delta_builder->InternValue(0, "unused-0");
  delta_builder->InternValue(0, "unused-1");
  delta_builder->InternValue(1, "unused-2");
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(delta_builder
                    ->AddRow({"fresh" + std::to_string(i % 4),
                              i % 2 == 0 ? "y" : "fresh-b"})
                    .ok());
  }
  const Table delta = delta_builder->Build();
  ASSERT_GT(delta.DomainSize(0), 4);  // the decoys really are interned

  // Reference: rebuild base + delta rows through one TableBuilder.
  auto rebuilt_builder = TableBuilder::Create(names);
  ASSERT_TRUE(rebuilt_builder.ok());
  for (int64_t r = 0; r < base.num_rows(); ++r) {
    ASSERT_TRUE(rebuilt_builder
                    ->AddRow({base.ValueString(r, 0),
                              base.ValueString(r, 1)})
                    .ok());
  }
  for (int64_t r = 0; r < delta.num_rows(); ++r) {
    ASSERT_TRUE(rebuilt_builder
                    ->AddRow({delta.ValueString(r, 0),
                              delta.ValueString(r, 1)})
                    .ok());
  }
  const Table rebuilt = rebuilt_builder->Build();
  LabelSearch reference(rebuilt);
  SearchOptions reference_options;
  reference_options.size_bound = 50;
  const SearchResult want = reference.TopDown(reference_options);

  auto session = OpenSession(PrivateDataset(base));
  ASSERT_TRUE(session->Append(delta).ok());
  QueryResult got = session->Run(QuerySpec::LabelSearch(50));
  ASSERT_TRUE(got.status.ok()) << got.status;
  ExpectSameSearchResult(got.search, want, "unused-dictionary-entries");
  // The decoys were never interned into the session's code space: the
  // effective domains match the rebuilt table's exactly.
  {
    std::lock_guard<std::mutex> lock(
        session->dataset().service()->mutex());
    const CountingEngine& engine = session->dataset().service()->engine();
    EXPECT_EQ(engine.EffectiveDomainSize(0),
              static_cast<int64_t>(rebuilt.DomainSize(0)));
    EXPECT_EQ(engine.EffectiveDomainSize(1),
              static_cast<int64_t>(rebuilt.DomainSize(1)));
  }
}

TEST(ApiConformanceTest, TrueCountMatchesOneShotCountersAfterAppends) {
  DifferentialWorkload workload = RandomWorkload(
      /*seed=*/55, /*attrs=*/3, /*base_rows=*/220, /*append_rows=*/40,
      /*domain=*/4, /*append_domain=*/6, /*null_percent=*/15);
  DifferentialHarness harness(std::move(workload));
  DifferentialWorkload rows = RandomWorkload(55, 3, 220, 40, 4, 6, 15);

  auto session = OpenSession(PrivateDataset(harness.base()));
  for (const auto& row : rows.append_rows) {
    ASSERT_TRUE(session->AppendRow(row).ok());
  }

  const Table& reference = harness.reference();
  // Probe arity-1, -2 and -3 patterns over values drawn from the
  // *extended* table (including values the base table never saw).
  for (int64_t r = 0; r < reference.num_rows(); r += 37) {
    for (int arity = 1; arity <= reference.num_attributes(); ++arity) {
      std::vector<std::pair<std::string, std::string>> terms;
      std::vector<PatternTerm> code_terms;
      for (int a = 0; a < arity; ++a) {
        const ValueId v = reference.value(r, a);
        if (IsNull(v)) continue;
        terms.emplace_back(reference.schema().name(a),
                           reference.dictionary(a).GetString(v));
        code_terms.push_back(PatternTerm{a, v});
      }
      if (terms.empty()) continue;
      auto pattern = Pattern::Create(code_terms);
      ASSERT_TRUE(pattern.ok());
      const int64_t want = CountMatches(reference, *pattern);
      QueryResult got = session->Run(QuerySpec::TrueCount(terms));
      ASSERT_TRUE(got.status.ok()) << got.status;
      EXPECT_EQ(got.true_count, want)
          << "row " << r << " arity " << arity;
      EXPECT_EQ(got.total_rows, reference.num_rows());
    }
  }
}

TEST(ApiConformanceTest, TrueCountCarriesLabelEstimate) {
  Table table = workload::MakeCompas(600, 31).value();
  auto session = OpenSession(PrivateDataset(table));
  QueryResult built = session->Run(QuerySpec::LabelSearch(50));
  ASSERT_TRUE(built.status.ok());
  auto label = std::make_shared<const PortableLabel>(
      MakePortable(built.search.label, table, "conformance"));

  std::vector<std::pair<std::string, std::string>> terms = {
      {table.schema().name(0), table.dictionary(0).GetString(0)},
      {table.schema().name(1), table.dictionary(1).GetString(0)},
  };
  QuerySpec spec = QuerySpec::TrueCount(terms);
  spec.label = label;
  QueryResult got = session->Run(spec);
  ASSERT_TRUE(got.status.ok()) << got.status;
  ASSERT_TRUE(got.estimate.has_value());
  auto direct = api::EstimateFromLabel(*label, terms);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(*got.estimate, *direct);
}

TEST(ApiConformanceTest, ProfileMatchesOneShotCountersAfterAppends) {
  DifferentialWorkload workload = RandomWorkload(
      /*seed=*/88, /*attrs=*/4, /*base_rows=*/180, /*append_rows=*/30,
      /*domain=*/4, /*append_domain=*/5, /*null_percent=*/10);
  DifferentialHarness harness(std::move(workload));
  DifferentialWorkload rows = RandomWorkload(88, 4, 180, 30, 4, 5, 10);

  auto session = OpenSession(PrivateDataset(harness.base()));
  QueryResult before = session->Run(QuerySpec::Profile());
  ASSERT_TRUE(before.status.ok());
  for (const auto& row : rows.append_rows) {
    ASSERT_TRUE(session->AppendRow(row).ok());
  }
  QueryResult after = session->Run(QuerySpec::Profile());
  ASSERT_TRUE(after.status.ok());

  const Table& reference = harness.reference();
  const int n = reference.num_attributes();
  ASSERT_EQ(static_cast<int>(after.pairs.size()), n * (n - 1) / 2);
  for (const api::PairwiseSize& p : after.pairs) {
    const AttrMask mask =
        AttrMask::Single(p.attr_a).Union(AttrMask::Single(p.attr_b));
    EXPECT_EQ(p.size, CountDistinctPatterns(reference, mask))
        << p.attr_a << "x" << p.attr_b;
  }
}

TEST(ApiSessionTest, SubmitIsAsynchronousAndFuturesShare) {
  Table table = workload::MakeCompas(1200, 37).value();
  SessionOptions options;
  options.executor_threads = 2;
  auto session = OpenSession(PrivateDataset(table), options);
  std::vector<QueryFuture> futures;
  for (int i = 0; i < 6; ++i) {
    auto future = session->Submit(QuerySpec::LabelSearch(50));
    ASSERT_TRUE(future.ok()) << future.status();
    futures.push_back(*future);
  }
  const QueryResult& first = futures[0].Get();
  ASSERT_TRUE(first.status.ok());
  for (QueryFuture& f : futures) {
    const QueryResult& r = f.Get();
    ASSERT_TRUE(r.status.ok());
    ExpectSameSearchResult(r.search, first.search, "async");
  }
  // A copied future shares the result.
  QueryFuture copy = futures[1];
  EXPECT_TRUE(copy.Ready());
  EXPECT_EQ(copy.Get().search.best_attrs.bits(),
            first.search.best_attrs.bits());
}

TEST(ApiSessionTest, ValidationRejectsNonsenseCentrally) {
  Table table = workload::MakeCompas(200, 41).value();
  // Session-level options.
  {
    SessionOptions options;
    options.num_threads = -2;
    EXPECT_FALSE(Session::Open(PrivateDataset(table), options).ok());
  }
  {
    SessionOptions options;
    options.executor_threads = 0;
    EXPECT_FALSE(Session::Open(PrivateDataset(table), options).ok());
  }
  {
    SessionOptions options;
    options.use_counting_engine = false;
    options.counting_cache_budget = 1024;  // conflicting engine flags
    EXPECT_FALSE(Session::Open(PrivateDataset(table), options).ok());
  }

  auto session = OpenSession(PrivateDataset(table));
  auto expect_invalid = [&](QuerySpec spec, const std::string& what) {
    auto future = session->Submit(std::move(spec));
    ASSERT_FALSE(future.ok()) << what;
    EXPECT_EQ(future.status().code(), StatusCode::kInvalidArgument)
        << what;
  };
  expect_invalid(QuerySpec::LabelSearch(-1), "negative bound");
  {
    QuerySpec spec = QuerySpec::LabelSearch(10);
    spec.num_threads = 0;
    expect_invalid(std::move(spec), "zero threads");
  }
  {
    QuerySpec spec = QuerySpec::LabelSearch(10);
    spec.time_limit_seconds = -1.0;
    expect_invalid(std::move(spec), "negative time limit");
  }
  {
    QuerySpec spec = QuerySpec::LabelSearch(10);
    spec.use_counting_engine = false;
    spec.counting_cache_budget = 4096;
    expect_invalid(std::move(spec), "conflicting engine flags");
  }
  {
    QuerySpec spec = QuerySpec::LabelSearch(10);
    spec.counting_cache_budget = -7;
    expect_invalid(std::move(spec), "negative budget");
  }
  {
    QuerySpec spec = QuerySpec::LabelSearch(10);
    spec.focus = AttrMask::FromIndices(
        {table.num_attributes() + 3});
    expect_invalid(std::move(spec), "focus beyond schema");
  }
  expect_invalid(QuerySpec::TrueCount({}), "empty pattern");
  {
    QuerySpec spec = QuerySpec::Profile();
    spec.pattern = {{"a", "b"}};
    expect_invalid(std::move(spec), "pattern on profile");
  }
  // Execution-time failures surface in QueryResult::status.
  QueryResult unknown =
      session->Run(QuerySpec::TrueCount({{"nosuch", "x"}}));
  EXPECT_FALSE(unknown.status.ok());
  EXPECT_NE(unknown.status.code(), StatusCode::kInvalidArgument);
}

// Build the reference extended table from the same string rows the
// session consumes — byte-identity requires matching code assignment,
// so both sides must intern in row-major first-seen order.
Table RebuildExtended(const DifferentialWorkload& workload,
                      const std::vector<std::vector<std::string>>& extra) {
  auto builder = TableBuilder::Create(workload.attribute_names);
  PCBL_CHECK(builder.ok()) << builder.status();
  for (const auto& row : workload.base_rows) {
    PCBL_CHECK(builder->AddRow(row).ok());
  }
  for (const auto& row : workload.append_rows) {
    PCBL_CHECK(builder->AddRow(row).ok());
  }
  for (const auto& row : extra) {
    PCBL_CHECK(builder->AddRow(row).ok());
  }
  return builder->Build();
}

Table BaseTable(const DifferentialWorkload& workload) {
  auto builder = TableBuilder::Create(workload.attribute_names);
  PCBL_CHECK(builder.ok()) << builder.status();
  for (const auto& row : workload.base_rows) {
    PCBL_CHECK(builder->AddRow(row).ok());
  }
  return builder->Build();
}

// Carried-over bug, fixed by this PR: a focus (custom-PatternSet)
// search after Session::Append used to refuse with FailedPrecondition
// because PatternSet::OverAttributes only sees the base table. The
// session now derives the focus pattern set from the engine's PC sets
// over the extended data — byte-identical to a from-scratch rebuild.
TEST(ApiSessionTest, FocusSearchAfterAppendMatchesRebuild) {
  DifferentialWorkload workload = RandomWorkload(
      /*seed=*/431, /*attrs=*/4, /*base_rows=*/300, /*append_rows=*/60,
      /*domain=*/5, /*append_domain=*/8, /*null_percent=*/10);
  auto session = OpenSession(PrivateDataset(BaseTable(workload)));
  for (const auto& row : workload.append_rows) {
    ASSERT_TRUE(session->AppendRow(row).ok());
  }

  const Table extended = RebuildExtended(workload, {});
  for (const auto& indices :
       {std::vector<int>{0}, std::vector<int>{0, 1},
        std::vector<int>{1, 2, 3}}) {
    const AttrMask focus = AttrMask::FromIndices(indices);
    LabelSearch rebuilt(extended);
    rebuilt.SetEvaluationPatterns(std::make_shared<const PatternSet>(
        PatternSet::OverAttributes(extended, focus)));
    SearchOptions reference_options;
    reference_options.size_bound = 40;
    const SearchResult want = rebuilt.TopDown(reference_options);

    QuerySpec spec = QuerySpec::LabelSearch(40);
    spec.focus = focus;
    QueryResult got = session->Run(spec);
    ASSERT_TRUE(got.status.ok()) << got.status;
    ExpectSameSearchResult(got.search, want,
                           StrCat("focus arity ", indices.size()));
  }
}

// The one-appender rule is lifted: sibling sessions on one shared
// service may all append, codes are interned centrally, and everyone's
// queries (including string predicates naming appended-only values)
// agree with a from-scratch rebuild of the extended table.
TEST(ApiSessionTest, SiblingAppendersOnSharedService) {
  DifferentialWorkload workload = RandomWorkload(
      /*seed=*/433, /*attrs=*/4, /*base_rows=*/400, /*append_rows=*/0,
      /*domain=*/6, /*append_domain=*/6, /*null_percent=*/10);
  Table table = BaseTable(workload);
  Dataset dataset = PrivateDataset(table);
  auto appender = OpenSession(dataset);
  auto sibling = OpenSession(dataset);
  const std::vector<std::string> row_a(
      static_cast<size_t>(table.num_attributes()), "fresh");
  const std::vector<std::string> row_b(
      static_cast<size_t>(table.num_attributes()), "fresher");
  ASSERT_TRUE(appender->AppendRow(row_a).ok());
  ASSERT_TRUE(sibling->AppendRow(row_b).ok());
  EXPECT_EQ(appender->appended_rows(), 1);
  EXPECT_EQ(sibling->appended_rows(), 1);
  EXPECT_EQ(appender->total_rows(), table.num_rows() + 2);
  EXPECT_EQ(sibling->total_rows(), table.num_rows() + 2);

  // Both sessions' searches match the rebuilt extended table.
  const Table extended = RebuildExtended(workload, {row_a, row_b});
  LabelSearch rebuilt(extended);
  SearchOptions reference_options;
  reference_options.size_bound = 50;
  const SearchResult want = rebuilt.TopDown(reference_options);
  QueryResult from_appender = appender->Run(QuerySpec::LabelSearch(50));
  ASSERT_TRUE(from_appender.status.ok()) << from_appender.status;
  ExpectSameSearchResult(from_appender.search, want, "appender");
  QueryResult from_sibling = sibling->Run(QuerySpec::LabelSearch(50));
  ASSERT_TRUE(from_sibling.status.ok()) << from_sibling.status;
  ExpectSameSearchResult(from_sibling.search, want, "sibling");
  EXPECT_EQ(from_sibling.total_rows, table.num_rows() + 2);

  // Carried-over bug, fixed by this PR: each session can resolve string
  // predicates over values only the *other* session appended — codes
  // live in the shared interner, not per-session dictionaries.
  const std::string attr0 = table.schema().name(0);
  QueryResult count_b = appender->Run(
      QuerySpec::TrueCount({{attr0, "fresher"}}));
  ASSERT_TRUE(count_b.status.ok()) << count_b.status;
  EXPECT_EQ(count_b.true_count, 1);
  QueryResult count_a = sibling->Run(
      QuerySpec::TrueCount({{attr0, "fresh"}}));
  ASSERT_TRUE(count_a.status.ok()) << count_a.status;
  EXPECT_EQ(count_a.true_count, 1);
}

// Acceptance criterion: two concurrent sessions over content-equal data
// perform at most one set of full scans between them — exactly one on
// the serialized arm; the wave scheduler may even do less (an
// out-of-phase merged wave can answer a subset by rolling up a
// concurrently cached superset instead of scanning).
TEST(ApiSessionTest, ConcurrentSessionsShareOneSetOfFullScans) {
  constexpr int64_t kRows = 2200;
  constexpr uint64_t kSeed = 53;
  constexpr int64_t kBound = 60;

  // Expected scan count: one cold session over a private service.
  SearchOptions reference_options;
  reference_options.size_bound = kBound;
  Table cold_table = workload::MakeCompas(kRows, kSeed).value();
  LabelSearch cold(cold_table);
  const SearchResult cold_result = cold.TopDown(reference_options);
  const int64_t cold_full_scans =
      cold.counting_service()->stats().full_scans;
  ASSERT_GT(cold_full_scans, 0);

  for (const bool scheduler_on : {true, false}) {
    // Two sessions, each over its own content-equal table instance,
    // racing through the process-wide registry.
    ServiceRegistry::Global().Clear();
    std::vector<Table> tables;
    tables.push_back(workload::MakeCompas(kRows, kSeed).value());
    tables.push_back(workload::MakeCompas(kRows, kSeed).value());
    auto d1 = Dataset::FromTable(tables[0]);
    auto d2 = Dataset::FromTable(tables[1]);
    ASSERT_TRUE(d1.ok() && d2.ok());
    ASSERT_EQ(d1->service().get(), d2->service().get())
        << "content-equal datasets must share one registry service";
    ASSERT_EQ(d1->fingerprint().lo, d2->fingerprint().lo);

    SessionOptions options;
    options.use_wave_scheduler = scheduler_on;
    auto s1 = OpenSession(*d1, options);
    auto s2 = OpenSession(*d2, options);
    auto f1 = s1->Submit(QuerySpec::LabelSearch(kBound));
    auto f2 = s2->Submit(QuerySpec::LabelSearch(kBound));
    ASSERT_TRUE(f1.ok() && f2.ok());
    const QueryResult& r1 = f1->Get();
    const QueryResult& r2 = f2->Get();
    ASSERT_TRUE(r1.status.ok() && r2.status.ok());

    const int64_t full_scans = d1->service()->StatsSnapshot().full_scans;
    if (scheduler_on) {
      EXPECT_LE(full_scans, cold_full_scans)
          << "a concurrent session rescanned the table";
      EXPECT_GT(full_scans, 0);
    } else {
      EXPECT_EQ(full_scans, cold_full_scans)
          << "the second serialized session rescanned the table";
    }
    ExpectSameSearchResult(r1.search, cold_result, "session 1");
    ExpectSameSearchResult(r2.search, cold_result, "session 2");
  }
  ServiceRegistry::Global().Clear();
}

// Concurrency stress: reader sessions racing submits over one shared
// fingerprint while an appender session grows its own dataset and a
// trimmer forces registry evictions against decoys. Must be TSan-clean;
// the readers' service must be built exactly once.
TEST(ApiSessionTest, StressSubmitAppendEvict) {
  constexpr int kReaders = 3;
  constexpr int kItersPerReader = 6;
  constexpr int64_t kBound = 30;

  ServiceRegistry::Global().Clear();
  Table reader_table = workload::MakeCompas(700, 59).value();
  Table appender_table = workload::MakeCompas(500, 61).value();
  std::vector<Table> decoys;
  for (int i = 0; i < 3; ++i) {
    decoys.push_back(workload::MakeCompas(150, 80 + i).value());
  }

  // Anchor keeps the readers' service hot (never evictable).
  auto anchor = Dataset::FromTable(reader_table);
  ASSERT_TRUE(anchor.ok());
  CountingService* const expected = anchor->service().get();

  std::vector<std::thread> threads;
  std::vector<std::string> errors(kReaders);
  for (int i = 0; i < kReaders; ++i) {
    threads.emplace_back([&, i] {
      for (int iter = 0; iter < kItersPerReader; ++iter) {
        auto dataset = Dataset::FromTable(reader_table);
        if (!dataset.ok() || dataset->service().get() != expected) {
          errors[static_cast<size_t>(i)] = "reader service rebuilt";
          return;
        }
        auto session = Session::Open(*dataset);
        if (!session.ok()) {
          errors[static_cast<size_t>(i)] = "open failed";
          return;
        }
        QueryResult r = (*session)->Run(QuerySpec::LabelSearch(kBound));
        if (!r.status.ok()) {
          errors[static_cast<size_t>(i)] = r.status.ToString();
          return;
        }
      }
    });
  }
  threads.emplace_back([&] {
    auto dataset = Dataset::FromTable(appender_table);
    PCBL_CHECK(dataset.ok());
    auto session = Session::Open(*dataset);
    PCBL_CHECK(session.ok());
    const std::vector<std::string> row(
        static_cast<size_t>(appender_table.num_attributes()), "grow");
    for (int i = 0; i < 20; ++i) {
      PCBL_CHECK((*session)->AppendRow(row).ok());
      if (i % 5 == 4) {
        QueryResult r = (*session)->Run(QuerySpec::LabelSearch(kBound));
        PCBL_CHECK(r.status.ok()) << r.status;
      }
    }
  });
  threads.emplace_back([&] {
    for (int i = 0; i < 12; ++i) {
      auto decoy = Dataset::FromTable(decoys[static_cast<size_t>(i % 3)]);
      PCBL_CHECK(decoy.ok());
      (*Session::Open(*decoy))->Run(QuerySpec::Profile());
      ServiceRegistry::Global().SetMemoryBudget(1);
      ServiceRegistry::Global().SetMemoryBudget(0);
    }
  });
  for (auto& t : threads) t.join();
  for (const std::string& e : errors) EXPECT_EQ(e, "") << e;

  // Restore the registry defaults for whoever runs next.
  ServiceRegistry::Global().SetMemoryBudget(
      ServiceRegistryOptions{}.memory_budget_bytes);
  ServiceRegistry::Global().Clear();
}

}  // namespace
}  // namespace pcbl
