// Differential battery for warm-start restore (src/persist/,
// docs/PERSISTENCE.md): a registry that restores a spilled warm state
// must be indistinguishable — byte-for-byte in every count — from the
// service that exported it, across engine on/off, thread counts, and
// post-restore appends; the first search over a restored service must
// perform zero full-table scans; a diverged (appended-to) state must
// round-trip at the service level but be refused by the registry's
// base-only acquire path; and two registries sharing one spill
// directory must race safely (atomic rename: every concurrent load is
// valid-or-miss, never garbage — the `Race` test runs under TSan in
// CI).
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/search.h"
#include "pattern/counter.h"
#include "pattern/counting_service.h"
#include "pattern/lattice.h"
#include "pattern/service_registry.h"
#include "persist/spill_store.h"
#include "tests/differential_harness.h"
#include "util/attr_mask.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "pcbl_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Sizes every arity-2 subset through the service's engine — a
// deterministic warm cache whose masks any later consumer can probe.
void WarmAllPairs(CountingService& service) {
  std::lock_guard<std::mutex> lock(service.mutex());
  ForEachSubsetOfSize(service.table().num_attributes(), 2,
                      [&](AttrMask mask) {
                        service.engine().PatternCounts(mask);
                      });
}

TEST(WarmStartTest, RestoredRegistryAnswersFirstSearchWithoutFullScans) {
  const std::string dir = FreshDir("warm_first_search");
  Table table = workload::MakeCompas(1500, 31).value();
  SearchOptions options;
  options.size_bound = 60;
  options.num_threads = 2;

  // Cold reference: a private search, and the scan count it paid.
  LabelSearch cold(table);
  const SearchResult want = cold.TopDown(options);
  ASSERT_GT(cold.counting_service()->stats().full_scans, 0);

  // First lifetime: search through a spilling registry, then shut down
  // in an orderly way (SpillResident — what `pcbl serve` does).
  {
    ServiceRegistry registry;
    registry.SetSpillDirectory(dir);
    auto service = registry.Acquire(table);
    EXPECT_EQ(registry.stats().spill_misses, 1);  // cold directory
    LabelSearch search(table, service);
    search.TopDown(options);
    EXPECT_EQ(registry.SpillResident(), 1);
    EXPECT_EQ(registry.stats().spills, 1);
    EXPECT_GT(registry.stats().spilled_bytes, 0);
  }

  // Second lifetime: the acquire restores from the spill, and the same
  // search runs without a single full-table scan — the PR's acceptance
  // criterion — returning the cold search's exact result.
  ServiceRegistry registry;
  registry.SetSpillDirectory(dir);
  auto service = registry.Acquire(table);
  EXPECT_EQ(registry.stats().spill_hits, 1);
  EXPECT_EQ(service->stats().full_scans, 0);
  LabelSearch search(table, service);
  const SearchResult got = search.TopDown(options);
  EXPECT_EQ(service->stats().full_scans, 0)
      << "the restored cache missed a mask the exporter had sized";
  EXPECT_EQ(got.best_attrs, want.best_attrs);
  EXPECT_EQ(got.label.size(), want.label.size());
  EXPECT_DOUBLE_EQ(got.error.max_abs, want.error.max_abs);
  EXPECT_DOUBLE_EQ(got.error.mean_abs, want.error.mean_abs);
}

TEST(WarmStartTest, DifferentialGridAcrossEngineThreadsAndAppends) {
  // The restored service must answer byte-identically to the one-shot
  // counters under every configuration, before and after post-restore
  // appends — CheckServiceAgainst asserts every subset's PC set, |P_S|
  // (budgeted and exact) and combo count.
  const testing::DifferentialWorkload workload = testing::RandomWorkload(
      /*seed=*/23, /*attrs=*/4, /*base_rows=*/300, /*append_rows=*/40,
      /*domain=*/5, /*append_domain=*/8, /*null_percent=*/10);
  const testing::DifferentialHarness harness(workload);
  const Table& base = harness.base();
  const std::string dir = FreshDir("warm_grid");

  {
    ServiceRegistry registry;
    registry.SetSpillDirectory(dir);
    auto service = registry.Acquire(base);
    WarmAllPairs(*service);
    ASSERT_EQ(registry.SpillResident(), 1);
  }

  for (const bool engine : {true, false}) {
    for (const int threads : {1, 3}) {
      for (const bool append : {false, true}) {
        const std::string name =
            std::string("engine=") + (engine ? "on" : "off") +
            " threads=" + std::to_string(threads) +
            " append=" + (append ? "yes" : "no");
        SCOPED_TRACE(name);
        ServiceRegistry registry;
        registry.SetSpillDirectory(dir);
        auto service = registry.Acquire(base);
        ASSERT_EQ(registry.stats().spill_hits, 1);

        // The search arm of the grid: identical results to a cold
        // private search under the same configuration.
        SearchOptions options;
        options.size_bound = 50;
        options.use_counting_engine = engine;
        options.num_threads = threads;
        LabelSearch cold(base);
        const SearchResult want = cold.TopDown(options);
        LabelSearch warm(base, service);
        const SearchResult got = warm.TopDown(options);
        EXPECT_EQ(got.best_attrs, want.best_attrs);
        EXPECT_EQ(got.label.size(), want.label.size());
        EXPECT_DOUBLE_EQ(got.error.max_abs, want.error.max_abs);

        if (append) {
          ASSERT_TRUE(service->AppendStrings(workload.append_rows).ok());
          testing::DifferentialHarness::CheckServiceAgainst(
              *service, harness.reference(), name);
        } else {
          testing::DifferentialHarness::CheckServiceAgainst(
              *service, base, name);
        }
      }
    }
  }
}

TEST(WarmStartTest, DivergedStateRoundTripsAtServiceLevel) {
  // A service that absorbed string-level appends (fresh dictionary
  // values included) exports a diverged state; the full restore path
  // replays it onto a fresh service over the *base* table and every
  // answer matches the ground-truth rebuild over base + appends.
  const testing::DifferentialWorkload workload = testing::RandomWorkload(
      /*seed=*/29, /*attrs=*/4, /*base_rows=*/250, /*append_rows=*/30,
      /*domain=*/5, /*append_domain=*/9, /*null_percent=*/15);
  const testing::DifferentialHarness harness(workload);
  auto base_table = std::make_shared<const Table>(harness.base());

  auto exporter = std::make_shared<CountingService>(base_table);
  WarmAllPairs(*exporter);
  ASSERT_TRUE(exporter->AppendStrings(workload.append_rows).ok());
  ASSERT_TRUE(exporter->has_absorbed_appends());
  const ServiceWarmState exported = exporter->ExportWarmState();

  // Through the byte codec, base_only off (the direct restore path).
  const TableFingerprint fp = FingerprintTable(*base_table);
  const std::string bytes =
      persist::SpillStore::EncodeWarmState(fp, *base_table, exported);
  const std::optional<ServiceWarmState> decoded =
      persist::SpillStore::DecodeWarmState(bytes, fp, *base_table,
                                           /*base_only=*/false);
  ASSERT_TRUE(decoded.has_value());

  auto restored = std::make_shared<CountingService>(base_table);
  restored->RestoreWarmState(*decoded);
  EXPECT_EQ(restored->total_rows(), exporter->total_rows());
  EXPECT_TRUE(restored->has_absorbed_appends());
  // The replayed cache is warm: a pair the exporter sized is answered
  // without re-scanning (patch-at-append already folded the rows in).
  {
    std::lock_guard<std::mutex> lock(restored->mutex());
    restored->engine().PatternCounts(AttrMask::FromIndices({0, 1}));
  }
  EXPECT_EQ(restored->stats().full_scans, 0);
  testing::DifferentialHarness::CheckServiceAgainst(
      *restored, harness.reference(), "diverged restore");
}

TEST(WarmStartTest, RegistryRefusesDivergedSpillAndStartsCold) {
  // A spill directory holding a *diverged* record (written through the
  // service-level path above) must not warm the registry's acquire —
  // base_only validation refuses it — and the cold service stays exact.
  const testing::DifferentialWorkload workload = testing::RandomWorkload(
      /*seed=*/31, /*attrs=*/3, /*base_rows=*/200, /*append_rows=*/20,
      /*domain=*/4, /*append_domain=*/6, /*null_percent=*/10);
  const testing::DifferentialHarness harness(workload);
  auto base_table = std::make_shared<const Table>(harness.base());
  const std::string dir = FreshDir("warm_diverged_refuse");

  {
    auto service = std::make_shared<CountingService>(base_table);
    WarmAllPairs(*service);
    ASSERT_TRUE(service->AppendStrings(workload.append_rows).ok());
    persist::SpillStoreOptions options;
    options.directory = dir;
    persist::SpillStore store(options);
    ASSERT_TRUE(store.PutWarmState(FingerprintTable(*base_table),
                                   *base_table,
                                   service->ExportWarmState()));
  }

  ServiceRegistry registry;
  registry.SetSpillDirectory(dir);
  auto service = registry.Acquire(harness.base());
  EXPECT_EQ(registry.stats().spill_rejects, 1);
  EXPECT_EQ(registry.stats().spill_hits, 0);
  EXPECT_EQ(service->total_rows(), harness.base().num_rows());
  testing::DifferentialHarness::CheckServiceAgainst(*service,
                                                    harness.base(),
                                                    "cold fallback");
}

TEST(WarmStartTest, EvictionSpillsWarmStateOnTheWayOut) {
  // The other spill trigger: a cold service evicted by the memory
  // accountant writes its warm state first, so eviction downgrades a
  // restart from "rebuild everything" to "reload from disk".
  const std::string dir = FreshDir("warm_evict");
  Table table = workload::MakeCompas(900, 37).value();
  ServiceRegistry registry;
  registry.SetSpillDirectory(dir);
  {
    auto service = registry.Acquire(table);
    WarmAllPairs(*service);
  }  // dropped: cold, evictable
  registry.SetMemoryBudget(1);
  registry.Trim();
  ASSERT_EQ(registry.stats().evictions, 1);
  EXPECT_EQ(registry.stats().spills, 1);

  registry.SetMemoryBudget(0);
  auto service = registry.Acquire(table);
  EXPECT_EQ(registry.stats().spill_hits, 1);
  // The evicted warmth is back without a scan.
  {
    std::lock_guard<std::mutex> lock(service->mutex());
    service->engine().PatternCounts(AttrMask::FromIndices({0, 1}));
  }
  EXPECT_EQ(service->stats().full_scans, 0);
}

// Two registries over one spill directory: concurrent spills (atomic
// rename, last writer wins) race concurrent restores. Every load must
// be valid-or-miss — a torn read would surface as a spill reject and a
// wrong count as a differential failure. Runs under TSan in CI.
TEST(WarmStartTest, SharedSpillDirRaceStaysValidOrMiss) {
  const std::string dir = FreshDir("warm_race");
  Table table = workload::MakeCompas(500, 41).value();
  const GroupCounts want =
      ComputeGroupCounts(table, AttrMask::FromIndices({0, 1}));

  ServiceRegistry a;
  a.SetSpillDirectory(dir);
  ServiceRegistry b;
  b.SetSpillDirectory(dir);
  auto service_a = a.Acquire(table);
  auto service_b = b.Acquire(table);
  WarmAllPairs(*service_a);
  WarmAllPairs(*service_b);

  constexpr int kIters = 12;
  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    for (int i = 0; i < kIters; ++i) a.SpillResident();
  });
  threads.emplace_back([&] {
    for (int i = 0; i < kIters; ++i) b.SpillResident();
  });
  std::atomic<int64_t> rejects{0};
  for (int reader = 0; reader < 2; ++reader) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        ServiceRegistry fresh;
        fresh.SetSpillDirectory(dir);
        auto service = fresh.Acquire(table);
        {
          std::lock_guard<std::mutex> lock(service->mutex());
          const auto got =
              service->engine().PatternCounts(AttrMask::FromIndices({0, 1}));
          testing::ExpectSameGroupCounts(*got, want, "raced restore");
        }
        rejects.fetch_add(fresh.stats().spill_rejects);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Atomic publication: no reader ever saw a torn or half-written file.
  EXPECT_EQ(rejects.load(), 0);
}

}  // namespace
}  // namespace pcbl
