// Tests for CSV parsing and serialization.
#include "relation/csv.h"

#include <gtest/gtest.h>

namespace pcbl {
namespace {

TEST(CsvParseTest, SimpleRecords) {
  auto recs = ParseCsvRecords("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(recs.ok());
  ASSERT_EQ(recs->size(), 3u);
  EXPECT_EQ((*recs)[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ((*recs)[2], (std::vector<std::string>{"3", "4"}));
}

TEST(CsvParseTest, MissingTrailingNewline) {
  auto recs = ParseCsvRecords("a,b\n1,2");
  ASSERT_TRUE(recs.ok());
  EXPECT_EQ(recs->size(), 2u);
}

TEST(CsvParseTest, QuotedFieldsWithSeparators) {
  auto recs = ParseCsvRecords("a\n\"x,y\"\n");
  ASSERT_TRUE(recs.ok());
  EXPECT_EQ((*recs)[1][0], "x,y");
}

TEST(CsvParseTest, EscapedQuotes) {
  auto recs = ParseCsvRecords("a\n\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(recs.ok());
  EXPECT_EQ((*recs)[1][0], "he said \"hi\"");
}

TEST(CsvParseTest, NewlineInsideQuotes) {
  auto recs = ParseCsvRecords("a,b\n\"line1\nline2\",z\n");
  ASSERT_TRUE(recs.ok());
  ASSERT_EQ(recs->size(), 2u);
  EXPECT_EQ((*recs)[1][0], "line1\nline2");
  EXPECT_EQ((*recs)[1][1], "z");
}

TEST(CsvParseTest, CrLfAndLoneCr) {
  auto recs = ParseCsvRecords("a,b\r\n1,2\r3,4\n");
  ASSERT_TRUE(recs.ok());
  ASSERT_EQ(recs->size(), 3u);
  EXPECT_EQ((*recs)[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvParseTest, CustomSeparator) {
  CsvOptions opts;
  opts.separator = ';';
  auto recs = ParseCsvRecords("a;b\n1;2\n", opts);
  ASSERT_TRUE(recs.ok());
  EXPECT_EQ((*recs)[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvParseTest, Errors) {
  EXPECT_FALSE(ParseCsvRecords("a\n\"unterminated\n").ok());
  EXPECT_FALSE(ParseCsvRecords("a\nfo\"o\n").ok());
}

TEST(CsvReadTest, BuildsTable) {
  auto t = ReadCsvString("name,color\nrex,brown\nmax,black\nrex,black\n");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->num_rows(), 3);
  EXPECT_EQ(t->num_attributes(), 2);
  EXPECT_EQ(t->ValueString(0, 0), "rex");
  EXPECT_EQ(t->DomainSize(1), 2u);
}

TEST(CsvReadTest, NullLiteralAndEmptyAreMissing) {
  auto t = ReadCsvString("a,b\nNULL,x\n,y\n");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(IsNull(t->value(0, 0)));
  EXPECT_TRUE(IsNull(t->value(1, 0)));
  EXPECT_FALSE(IsNull(t->value(0, 1)));
}

TEST(CsvReadTest, NullLiteralPreservedWhenDisabled) {
  CsvOptions opts;
  opts.null_literal = false;
  auto t = ReadCsvString("a\nNULL\n\n", opts);
  ASSERT_TRUE(t.ok());
  // "NULL" becomes a real value; the blank line is a one-empty-field
  // record, which still reads as missing.
  ASSERT_EQ(t->num_rows(), 2);
  EXPECT_EQ(t->ValueString(0, 0), "NULL");
  EXPECT_FALSE(IsNull(t->value(0, 0)));
  EXPECT_TRUE(IsNull(t->value(1, 0)));
}

TEST(CsvReadTest, RaggedRowFails) {
  EXPECT_FALSE(ReadCsvString("a,b\n1\n").ok());
  EXPECT_FALSE(ReadCsvString("a,b\n1,2,3\n").ok());
}

TEST(CsvReadTest, EmptyInputFails) {
  EXPECT_FALSE(ReadCsvString("").ok());
}

TEST(CsvWriteTest, QuotesOnlyWhenNeeded) {
  auto b = TableBuilder::Create({"a", "b"});
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(b->AddRow({"plain", "with,comma"}).ok());
  ASSERT_TRUE(b->AddRow({"quote\"inside", "line\nbreak"}).ok());
  Table t = b->Build();
  std::string csv = WriteCsvString(t);
  EXPECT_NE(csv.find("plain"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(CsvWriteTest, NullsRenderAsEmptyFields) {
  auto b = TableBuilder::Create({"a", "b"});
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(b->AddRow({"", "x"}).ok());
  Table t = b->Build();
  EXPECT_EQ(WriteCsvString(t), "a,b\n,x\n");
}

TEST(CsvRoundTripTest, TableSurvives) {
  auto b = TableBuilder::Create({"n", "v"});
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(b->AddRow({"a,1", "x"}).ok());
  ASSERT_TRUE(b->AddRow({"", "y\"z"}).ok());
  ASSERT_TRUE(b->AddRow({"multi\nline", "w"}).ok());
  Table t = b->Build();
  auto t2 = ReadCsvString(WriteCsvString(t));
  ASSERT_TRUE(t2.ok()) << t2.status();
  ASSERT_EQ(t2->num_rows(), t.num_rows());
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    for (int a = 0; a < t.num_attributes(); ++a) {
      EXPECT_EQ(t2->ValueString(r, a), t.ValueString(r, a))
          << "row " << r << " attr " << a;
    }
  }
}

TEST(CsvFileTest, WriteAndReadBack) {
  auto b = TableBuilder::Create({"k"});
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(b->AddRow({"v1"}).ok());
  Table t = b->Build();
  std::string path = ::testing::TempDir() + "/pcbl_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  auto t2 = ReadCsvFile(path);
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2->ValueString(0, 0), "v1");
  EXPECT_FALSE(ReadCsvFile("/nonexistent/dir/file.csv").ok());
}

}  // namespace
}  // namespace pcbl
