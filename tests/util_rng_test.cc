// Tests for the PCG RNG and the discrete distributions.
#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace pcbl {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next32(), b.Next32());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next32() == b.Next32()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    uint32_t v = rng.UniformInt(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<uint32_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(13);
  const int kBuckets = 10;
  const int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.UniformInt(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(RngTest, UniformRangeInclusiveBounds) {
  Rng rng(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(19);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(29);
  double sum = 0;
  double sum2 = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    double v = rng.Gaussian(2.0, 3.0);
    sum += v;
    sum2 += v * v;
  }
  double mean = sum / kN;
  double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(37);
  auto sample = rng.SampleWithoutReplacement(1000, 50);
  EXPECT_EQ(sample.size(), 50u);
  std::set<int64_t> s(sample.begin(), sample.end());
  EXPECT_EQ(s.size(), 50u);
  for (int64_t x : sample) {
    EXPECT_GE(x, 0);
    EXPECT_LT(x, 1000);
  }
}

TEST(RngTest, SampleWithoutReplacementFullPopulation) {
  Rng rng(41);
  auto sample = rng.SampleWithoutReplacement(20, 20);
  std::set<int64_t> s(sample.begin(), sample.end());
  EXPECT_EQ(s.size(), 20u);
}

TEST(RngTest, SampleWithoutReplacementZero) {
  Rng rng(43);
  EXPECT_TRUE(rng.SampleWithoutReplacement(10, 0).empty());
}

TEST(DiscreteDistributionTest, ProbabilitiesNormalized) {
  DiscreteDistribution d({2.0, 6.0, 2.0});
  EXPECT_NEAR(d.Probability(0), 0.2, 1e-12);
  EXPECT_NEAR(d.Probability(1), 0.6, 1e-12);
  EXPECT_NEAR(d.Probability(2), 0.2, 1e-12);
}

TEST(DiscreteDistributionTest, SamplesFollowWeights) {
  DiscreteDistribution d({1.0, 3.0});
  Rng rng(47);
  int ones = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (d.Sample(rng) == 1) ++ones;
  }
  EXPECT_NEAR(ones / static_cast<double>(kN), 0.75, 0.01);
}

TEST(DiscreteDistributionTest, ZeroWeightValueNeverSampled) {
  DiscreteDistribution d({1.0, 0.0, 1.0});
  Rng rng(53);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_NE(d.Sample(rng), 1);
  }
}

TEST(ZipfDistributionTest, RanksAreMonotonicallyLessLikely) {
  ZipfDistribution z(10, 1.0);
  for (int k = 1; k < 10; ++k) {
    EXPECT_GT(z.Probability(k - 1), z.Probability(k));
  }
}

TEST(ZipfDistributionTest, SkewZeroIsUniform) {
  ZipfDistribution z(4, 0.0);
  for (int k = 0; k < 4; ++k) {
    EXPECT_NEAR(z.Probability(k), 0.25, 1e-12);
  }
}

}  // namespace
}  // namespace pcbl
