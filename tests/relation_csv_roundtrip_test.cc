// Property test: CSV write -> read is the identity on arbitrary tables,
// including adversarial cell contents (separators, quotes, newlines,
// unicode bytes, the NULL literal) and NULL cells.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "relation/csv.h"
#include "relation/table.h"
#include "util/rng.h"

namespace pcbl {
namespace {

// Characters that stress the quoting rules.
std::string RandomCell(Rng& rng) {
  static const char* const kFragments[] = {
      "plain", "with space", "comma,inside", "quote\"inside", "\"quoted\"",
      "new\nline", "cr\rlf", "NULL-ish", "ümlaut", "trailing,", ",leading",
      "double\"\"quote", "semi;colon", "tab\tchar", "0", "-1.5e3",
  };
  const int pieces = 1 + static_cast<int>(rng.UniformInt(3));
  std::string out;
  for (int i = 0; i < pieces; ++i) {
    out += kFragments[rng.UniformInt(sizeof(kFragments) /
                                     sizeof(kFragments[0]))];
  }
  return out;
}

class CsvRoundTripTest : public testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundTripTest, WriteReadIsIdentity) {
  Rng rng(GetParam());
  const int attrs = 1 + static_cast<int>(rng.UniformInt(5));
  std::vector<std::string> names;
  for (int a = 0; a < attrs; ++a) names.push_back("col" + std::to_string(a));
  auto builder = TableBuilder::Create(names);
  ASSERT_TRUE(builder.ok());
  const int64_t rows = 1 + static_cast<int64_t>(rng.UniformInt(60));
  for (int64_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    for (int a = 0; a < attrs; ++a) {
      // ~15% NULLs; the empty string round-trips as NULL by design.
      row.push_back(rng.UniformInt(100) < 15 ? "" : RandomCell(rng));
    }
    ASSERT_TRUE(builder->AddRow(row).ok());
  }
  Table original = builder->Build();

  auto back = ReadCsvString(WriteCsvString(original));
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->num_rows(), original.num_rows());
  ASSERT_EQ(back->num_attributes(), original.num_attributes());
  for (int a = 0; a < attrs; ++a) {
    EXPECT_EQ(back->schema().name(a), original.schema().name(a));
  }
  for (int64_t r = 0; r < rows; ++r) {
    for (int a = 0; a < attrs; ++a) {
      EXPECT_EQ(IsNull(back->value(r, a)), IsNull(original.value(r, a)))
          << "row " << r << " attr " << a;
      if (!IsNull(original.value(r, a))) {
        EXPECT_EQ(back->ValueString(r, a), original.ValueString(r, a))
            << "row " << r << " attr " << a;
      }
    }
  }
}

TEST_P(CsvRoundTripTest, AlternateSeparatorRoundTrips) {
  Rng rng(GetParam() ^ 0x5eed);
  auto builder = TableBuilder::Create({"a", "b"});
  ASSERT_TRUE(builder.ok());
  for (int r = 0; r < 20; ++r) {
    ASSERT_TRUE(
        builder->AddRow({RandomCell(rng), RandomCell(rng)}).ok());
  }
  Table original = builder->Build();
  CsvOptions options;
  options.separator = ';';
  auto back = ReadCsvString(WriteCsvString(original, options), options);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->num_rows(), original.num_rows());
  for (int64_t r = 0; r < original.num_rows(); ++r) {
    EXPECT_EQ(back->ValueString(r, 0), original.ValueString(r, 0));
    EXPECT_EQ(back->ValueString(r, 1), original.ValueString(r, 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripTest,
                         testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace pcbl
