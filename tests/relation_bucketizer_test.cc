// Tests for equi-width / equi-depth bucketization.
#include "relation/bucketizer.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace pcbl {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(BucketizerTest, EquiWidthBoundaries) {
  auto b = Bucketizer::Fit({0, 10}, 5, BucketStrategy::kEquiWidth);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->num_buckets(), 5);
  EXPECT_EQ(b->interior_edges(),
            (std::vector<double>{2, 4, 6, 8}));
  EXPECT_EQ(b->BucketIndex(0.0), 0);
  EXPECT_EQ(b->BucketIndex(1.99), 0);
  EXPECT_EQ(b->BucketIndex(2.0), 1);  // half-open [lo, hi)
  EXPECT_EQ(b->BucketIndex(9.99), 4);
  EXPECT_EQ(b->BucketIndex(10.0), 4);  // last bucket closed
}

TEST(BucketizerTest, OutOfRangeValuesClampToEndBuckets) {
  auto b = Bucketizer::Fit({0, 10}, 5, BucketStrategy::kEquiWidth);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->BucketIndex(-100.0), 0);
  EXPECT_EQ(b->BucketIndex(+100.0), 4);
}

TEST(BucketizerTest, NaNMapsToMissing) {
  auto b = Bucketizer::Fit({0, 1, kNaN}, 2, BucketStrategy::kEquiWidth);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->BucketIndex(kNaN), -1);
  EXPECT_EQ(b->BucketLabel(kNaN), "");
}

TEST(BucketizerTest, DegenerateSingleValue) {
  auto b = Bucketizer::Fit({7, 7, 7}, 5, BucketStrategy::kEquiWidth);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->num_buckets(), 1);
  EXPECT_EQ(b->BucketIndex(7), 0);
}

TEST(BucketizerTest, RejectsBadInput) {
  EXPECT_FALSE(Bucketizer::Fit({}, 5, BucketStrategy::kEquiWidth).ok());
  EXPECT_FALSE(
      Bucketizer::Fit({kNaN, kNaN}, 5, BucketStrategy::kEquiWidth).ok());
  EXPECT_FALSE(Bucketizer::Fit({1, 2}, 0, BucketStrategy::kEquiWidth).ok());
}

TEST(BucketizerTest, EquiDepthBalancesCounts) {
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(std::pow(static_cast<double>(i), 2.0));  // skewed
  }
  auto b = Bucketizer::Fit(values, 5, BucketStrategy::kEquiDepth);
  ASSERT_TRUE(b.ok());
  std::vector<int> counts(static_cast<size_t>(b->num_buckets()), 0);
  for (double v : values) ++counts[static_cast<size_t>(b->BucketIndex(v))];
  for (int c : counts) {
    EXPECT_GT(c, 150);
    EXPECT_LT(c, 250);
  }
}

TEST(BucketizerTest, EquiDepthCollapsesDuplicateEdges) {
  // Heavily repeated value: fewer than requested buckets, but no crash
  // and no empty bucket ranges.
  std::vector<double> values(100, 5.0);
  values.push_back(6.0);
  auto b = Bucketizer::Fit(values, 4, BucketStrategy::kEquiDepth);
  ASSERT_TRUE(b.ok());
  EXPECT_LE(b->num_buckets(), 4);
  EXPECT_GE(b->num_buckets(), 1);
}

TEST(BucketizerTest, FromEdges) {
  auto b = Bucketizer::FromEdges(0, 100, {10, 50});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->num_buckets(), 3);
  EXPECT_EQ(b->BucketIndex(5), 0);
  EXPECT_EQ(b->BucketIndex(10), 1);
  EXPECT_EQ(b->BucketIndex(49.9), 1);
  EXPECT_EQ(b->BucketIndex(99), 2);
}

TEST(BucketizerTest, FromEdgesRejectsUnsorted) {
  EXPECT_FALSE(Bucketizer::FromEdges(0, 10, {5, 5}).ok());
  EXPECT_FALSE(Bucketizer::FromEdges(0, 10, {7, 3}).ok());
}

TEST(BucketizerTest, LabelsAreRanges) {
  auto b = Bucketizer::Fit({0, 10}, 2, BucketStrategy::kEquiWidth);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->LabelOfBucket(0), "[0,5)");
  EXPECT_EQ(b->LabelOfBucket(1), "[5,10]");
}

TEST(BucketizeColumnTest, ProducesLabels) {
  auto labels = BucketizeColumn({1, 2, 3, 4, kNaN}, 2,
                                BucketStrategy::kEquiWidth);
  ASSERT_TRUE(labels.ok());
  ASSERT_EQ(labels->size(), 5u);
  EXPECT_EQ((*labels)[0], (*labels)[1]);  // 1 and 2 in low bucket
  EXPECT_NE((*labels)[0], (*labels)[3]);  // 1 and 4 differ
  EXPECT_EQ((*labels)[4], "");            // NaN is missing
}

// Property sweep: for every bucket count and strategy, each value lands in
// the bucket whose label-range contains it.
class BucketizerPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, BucketStrategy>> {};

TEST_P(BucketizerPropertyTest, IndexConsistentWithEdges) {
  auto [buckets, strategy] = GetParam();
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    values.push_back(std::sin(i * 0.37) * 50 + i * 0.1);
  }
  auto b = Bucketizer::Fit(values, buckets, strategy);
  ASSERT_TRUE(b.ok());
  const auto& edges = b->interior_edges();
  for (double v : values) {
    int idx = b->BucketIndex(v);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, b->num_buckets());
    if (idx > 0) {
      EXPECT_GE(v, edges[static_cast<size_t>(idx - 1)]);
    }
    if (idx < static_cast<int>(edges.size())) {
      EXPECT_LT(v, edges[static_cast<size_t>(idx)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BucketizerPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 16),
                       ::testing::Values(BucketStrategy::kEquiWidth,
                                         BucketStrategy::kEquiDepth)));

}  // namespace
}  // namespace pcbl
