// Tests for the extended baselines: the Count-Min sketch and the
// dependency-based pairwise histogram (related-work comparators, Sec. V).
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/cm_sketch.h"
#include "baselines/independence.h"
#include "baselines/pairwise_histogram.h"
#include "pattern/full_pattern_index.h"
#include "util/rng.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

// x ∈ {0..3} drives two equal columns; z is a free uniform column. Every
// combination (x, x, z) appears exactly twice, so all counts are exact by
// construction.
Table ExactPairTable() {
  auto b = TableBuilder::Create({"a0", "a1", "a2"});
  PCBL_CHECK(b.ok());
  for (int a = 0; a < 3; ++a) {
    for (int v = 0; v < 4; ++v) {
      b->InternValue(a, "v" + std::to_string(v));
    }
  }
  for (int rep = 0; rep < 2; ++rep) {
    for (ValueId x = 0; x < 4; ++x) {
      for (ValueId z = 0; z < 4; ++z) {
        PCBL_CHECK(b->AddRowCodes({x, x, z}).ok());
      }
    }
  }
  return b->Build();
}

TEST(CmSketchTest, ValidatesOptions) {
  Table t = workload::MakeFig2Demo();
  CmSketchOptions options;
  options.depth = 0;
  EXPECT_FALSE(CmSketchEstimator::Build(t, options).ok());
  options.depth = 3;
  options.width = 0;
  EXPECT_FALSE(CmSketchEstimator::Build(t, options).ok());
  EXPECT_FALSE(CmSketchEstimator::BuildForBudget(t, 0).ok());
}

TEST(CmSketchTest, NeverUnderestimatesFullPatterns) {
  Table t = workload::MakeCompas(3000, 7).value();
  FullPatternIndex index = FullPatternIndex::Build(t);
  for (int64_t width : {8, 64, 512}) {
    CmSketchOptions options;
    options.width = width;
    auto sketch = CmSketchEstimator::Build(t, options);
    ASSERT_TRUE(sketch.ok());
    for (int64_t i = 0; i < index.num_patterns(); ++i) {
      EXPECT_GE(sketch->EstimateFullPattern(index.codes(i), index.width()),
                static_cast<double>(index.count(i)))
          << "width=" << width << " i=" << i;
    }
  }
}

TEST(CmSketchTest, SingleCounterCountsEveryRow) {
  Table t = workload::MakeFig2Demo();
  FullPatternIndex index = FullPatternIndex::Build(t);
  CmSketchOptions options;
  options.depth = 1;
  options.width = 1;
  auto sketch = CmSketchEstimator::Build(t, options);
  ASSERT_TRUE(sketch.ok());
  EXPECT_DOUBLE_EQ(
      sketch->EstimateFullPattern(index.codes(0), index.width()),
      static_cast<double>(index.rows_indexed()));
}

TEST(CmSketchTest, DeterministicForSeed) {
  Table t = workload::MakeCompas(1000, 7).value();
  FullPatternIndex index = FullPatternIndex::Build(t);
  auto a = CmSketchEstimator::Build(t);
  auto b = CmSketchEstimator::Build(t);
  ASSERT_TRUE(a.ok() && b.ok());
  for (int64_t i = 0; i < index.num_patterns(); ++i) {
    EXPECT_DOUBLE_EQ(a->EstimateFullPattern(index.codes(i), index.width()),
                     b->EstimateFullPattern(index.codes(i), index.width()));
  }
}

TEST(CmSketchTest, BudgetHelperRespectsFootprint) {
  Table t = workload::MakeFig2Demo();
  for (int64_t budget : {1, 2, 3, 10, 100, 1001}) {
    auto sketch = CmSketchEstimator::BuildForBudget(t, budget);
    ASSERT_TRUE(sketch.ok()) << budget;
    EXPECT_LE(sketch->FootprintEntries(), budget) << budget;
    EXPECT_GE(sketch->depth(), 1);
  }
}

TEST(CmSketchTest, PartialPatternFallsBackToIndependence) {
  Table t = workload::MakeFig2Demo();
  auto sketch = CmSketchEstimator::Build(t);
  ASSERT_TRUE(sketch.ok());
  IndependenceEstimator indep = IndependenceEstimator::Build(t);
  auto p = Pattern::Parse(t, {{"gender", "Female"}, {"race", "Hispanic"}});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(sketch->EstimateCount(*p), indep.EstimateCount(*p));
}

TEST(CmSketchTest, FullPatternPathsAgree) {
  Table t = workload::MakeFig2Demo();
  auto sketch = CmSketchEstimator::Build(t);
  ASSERT_TRUE(sketch.ok());
  FullPatternIndex index = FullPatternIndex::Build(t);
  for (int64_t i = 0; i < index.num_patterns(); ++i) {
    Pattern p = index.ToPattern(i);
    EXPECT_DOUBLE_EQ(sketch->EstimateCount(p),
                     sketch->EstimateFullPattern(index.codes(i),
                                                 index.width()));
  }
}

TEST(MutualInformationTest, IndependentAttributesScoreNearZero) {
  auto b = TableBuilder::Create({"a0", "a1"});
  PCBL_CHECK(b.ok());
  for (int a = 0; a < 2; ++a) {
    for (int v = 0; v < 4; ++v) b->InternValue(a, "v" + std::to_string(v));
  }
  // Full cross product, uniform: exactly independent.
  for (int rep = 0; rep < 3; ++rep) {
    for (ValueId x = 0; x < 4; ++x) {
      for (ValueId y = 0; y < 4; ++y) {
        PCBL_CHECK(b->AddRowCodes({x, y}).ok());
      }
    }
  }
  Table t = b->Build();
  EXPECT_NEAR(MutualInformationBits(t, 0, 1), 0.0, 1e-9);
}

TEST(MutualInformationTest, IdenticalAttributesScoreEntropy) {
  Table t = ExactPairTable();
  // a0 == a1 uniform over 4 values: MI = H = 2 bits.
  EXPECT_NEAR(MutualInformationBits(t, 0, 1), 2.0, 1e-9);
  // a0 vs the free column: independent by construction.
  EXPECT_NEAR(MutualInformationBits(t, 0, 2), 0.0, 1e-9);
}

TEST(PairwiseHistogramTest, SelectsTheCorrelatedPairFirst) {
  Table t = ExactPairTable();
  PairwiseHistogramOptions options;
  options.budget = 100;
  auto hist = PairwiseHistogramEstimator::Build(t, options);
  ASSERT_TRUE(hist.ok());
  ASSERT_FALSE(hist->pairs().empty());
  EXPECT_EQ(hist->pairs()[0].attr_a, 0);
  EXPECT_EQ(hist->pairs()[0].attr_b, 1);
}

TEST(PairwiseHistogramTest, ExactWhenStructureIsPairwise) {
  Table t = ExactPairTable();
  auto hist = PairwiseHistogramEstimator::Build(t);
  ASSERT_TRUE(hist.ok());
  FullPatternIndex index = FullPatternIndex::Build(t);
  for (int64_t i = 0; i < index.num_patterns(); ++i) {
    EXPECT_NEAR(hist->EstimateFullPattern(index.codes(i), index.width()),
                static_cast<double>(index.count(i)), 1e-9);
  }
}

TEST(PairwiseHistogramTest, ZeroBudgetDegeneratesToIndependence) {
  Table t = workload::MakeFig2Demo();
  PairwiseHistogramOptions options;
  options.budget = 0;
  auto hist = PairwiseHistogramEstimator::Build(t, options);
  ASSERT_TRUE(hist.ok());
  EXPECT_TRUE(hist->pairs().empty());
  EXPECT_EQ(hist->FootprintEntries(), 0);
  IndependenceEstimator indep = IndependenceEstimator::Build(t);
  FullPatternIndex index = FullPatternIndex::Build(t);
  for (int64_t i = 0; i < index.num_patterns(); ++i) {
    EXPECT_DOUBLE_EQ(hist->EstimateFullPattern(index.codes(i), index.width()),
                     indep.EstimateFullPattern(index.codes(i), index.width()));
  }
}

TEST(PairwiseHistogramTest, BudgetIsRespected) {
  Table t = workload::MakeCompas(3000, 9).value();
  for (int64_t budget : {0, 10, 50, 200}) {
    PairwiseHistogramOptions options;
    options.budget = budget;
    auto hist = PairwiseHistogramEstimator::Build(t, options);
    ASSERT_TRUE(hist.ok()) << budget;
    EXPECT_LE(hist->FootprintEntries(), budget) << budget;
  }
  PairwiseHistogramOptions bad;
  bad.budget = -1;
  EXPECT_FALSE(PairwiseHistogramEstimator::Build(t, bad).ok());
}

TEST(PairwiseHistogramTest, DisjointModeYieldsAMatching) {
  Table t = workload::MakeCompas(3000, 9).value();
  PairwiseHistogramOptions options;
  options.budget = 500;
  auto hist = PairwiseHistogramEstimator::Build(t, options);
  ASSERT_TRUE(hist.ok());
  std::vector<bool> used(static_cast<size_t>(t.num_attributes()), false);
  for (const StoredPair& pair : hist->pairs()) {
    EXPECT_FALSE(used[static_cast<size_t>(pair.attr_a)]);
    EXPECT_FALSE(used[static_cast<size_t>(pair.attr_b)]);
    used[static_cast<size_t>(pair.attr_a)] = true;
    used[static_cast<size_t>(pair.attr_b)] = true;
  }
}

TEST(PairwiseHistogramTest, OverlappingModeCanShareAttributes) {
  // Three mutually equal columns: all three pairs carry maximal MI.
  auto b = TableBuilder::Create({"a0", "a1", "a2"});
  PCBL_CHECK(b.ok());
  for (int a = 0; a < 3; ++a) {
    for (int v = 0; v < 4; ++v) b->InternValue(a, "v" + std::to_string(v));
  }
  Rng rng(7);
  for (int r = 0; r < 400; ++r) {
    ValueId x = rng.UniformInt(4);
    PCBL_CHECK(b->AddRowCodes({x, x, x}).ok());
  }
  Table t = b->Build();
  PairwiseHistogramOptions options;
  options.budget = 100;
  options.disjoint_pairs = false;
  auto hist = PairwiseHistogramEstimator::Build(t, options);
  ASSERT_TRUE(hist.ok());
  EXPECT_GE(hist->pairs().size(), 2u);
  // Estimation still applies at most one pair per attribute (greedy
  // matching), so estimates stay well-defined.
  FullPatternIndex index = FullPatternIndex::Build(t);
  for (int64_t i = 0; i < index.num_patterns(); ++i) {
    EXPECT_GT(hist->EstimateFullPattern(index.codes(i), index.width()), 0.0);
  }
}

TEST(PairwiseHistogramTest, UnseenPairCombinationEstimatesZero) {
  Table t = ExactPairTable();
  auto hist = PairwiseHistogramEstimator::Build(t);
  ASSERT_TRUE(hist.ok());
  // (a0=v0, a1=v1) never occurs (columns are equal-valued).
  auto p = Pattern::Parse(t, {{"a0", "v0"}, {"a1", "v1"}});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(hist->EstimateCount(*p), 0.0);
}

TEST(PairwiseHistogramTest, PartialPatternUsesPairWhenBothBound) {
  Table t = ExactPairTable();
  auto hist = PairwiseHistogramEstimator::Build(t);
  ASSERT_TRUE(hist.ok());
  auto p = Pattern::Parse(t, {{"a0", "v2"}, {"a1", "v2"}});
  ASSERT_TRUE(p.ok());
  // Joint (v2,v2) has count 8 out of 32 rows.
  EXPECT_NEAR(hist->EstimateCount(*p), 8.0, 1e-9);
  auto single = Pattern::Parse(t, {{"a2", "v1"}});
  ASSERT_TRUE(single.ok());
  EXPECT_NEAR(hist->EstimateCount(*single), 8.0, 1e-9);
}

}  // namespace
}  // namespace pcbl
