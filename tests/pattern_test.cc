// Tests for Pattern construction, matching, and restriction (Defs 2.1-2.4).
#include "pattern/pattern.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "workload/datasets.h"

namespace pcbl {
namespace {

TEST(PatternTest, CreateSortsTermsByAttribute) {
  auto p = Pattern::Create({{3, 1}, {0, 2}, {1, 0}});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->size(), 3);
  EXPECT_EQ(p->terms()[0].attr, 0);
  EXPECT_EQ(p->terms()[1].attr, 1);
  EXPECT_EQ(p->terms()[2].attr, 3);
  EXPECT_EQ(p->attributes(), AttrMask::FromIndices({0, 1, 3}));
}

TEST(PatternTest, CreateRejectsDuplicatesAndNulls) {
  EXPECT_FALSE(Pattern::Create({{0, 1}, {0, 2}}).ok());
  EXPECT_FALSE(Pattern::Create({{0, kNullValue}}).ok());
  EXPECT_FALSE(Pattern::Create({{-1, 0}}).ok());
  EXPECT_FALSE(Pattern::Create({{64, 0}}).ok());
}

TEST(PatternTest, EmptyPattern) {
  Pattern p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.size(), 0);
  EXPECT_TRUE(p.attributes().empty());
}

TEST(PatternTest, ParseAgainstTable) {
  Table t = workload::MakeFig2Demo();
  auto p = Pattern::Parse(
      t, {{"age group", "under 20"}, {"marital status", "single"}});
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->size(), 2);
  EXPECT_EQ(p->attributes(), AttrMask::FromIndices({1, 3}));
}

TEST(PatternTest, ParseErrors) {
  Table t = workload::MakeFig2Demo();
  EXPECT_FALSE(Pattern::Parse(t, {{"nope", "x"}}).ok());
  EXPECT_FALSE(Pattern::Parse(t, {{"gender", "Alien"}}).ok());
}

TEST(PatternTest, ValueFor) {
  auto p = Pattern::Create({{2, 7}, {5, 3}});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ValueFor(2).value(), 7u);
  EXPECT_EQ(p->ValueFor(5).value(), 3u);
  EXPECT_FALSE(p->ValueFor(0).ok());
}

TEST(PatternTest, RestrictProducesSubPattern) {
  auto p = Pattern::Create({{0, 1}, {2, 2}, {4, 3}});
  ASSERT_TRUE(p.ok());
  Pattern r = p->Restrict(AttrMask::FromIndices({0, 4, 9}));
  EXPECT_EQ(r.size(), 2);
  EXPECT_EQ(r.attributes(), AttrMask::FromIndices({0, 4}));
  EXPECT_EQ(r.ValueFor(0).value(), 1u);
  // Restriction to a disjoint mask is the empty pattern.
  EXPECT_TRUE(p->Restrict(AttrMask::FromIndices({1, 3})).empty());
}

TEST(PatternTest, MatchesRowExample24) {
  // Example 2.4: tuples 1,3,8,10,12,14 (1-based) satisfy
  // {age group = under 20, marital status = single}; count is 6.
  Table t = workload::MakeFig2Demo();
  auto p = Pattern::Parse(
      t, {{"age group", "under 20"}, {"marital status", "single"}});
  ASSERT_TRUE(p.ok());
  std::vector<int64_t> expected = {0, 2, 7, 9, 11, 13};  // 0-based
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    bool should_match =
        std::find(expected.begin(), expected.end(), r) != expected.end();
    EXPECT_EQ(p->MatchesRow(t, r), should_match) << "row " << r;
  }
  EXPECT_EQ(CountMatches(t, *p), 6);
}

TEST(PatternTest, NullNeverMatches) {
  auto b = TableBuilder::Create({"x"});
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(b->AddRow({"v"}).ok());
  ASSERT_TRUE(b->AddRow({""}).ok());
  Table t = b->Build();
  auto p = Pattern::Parse(t, {{"x", "v"}});
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->MatchesRow(t, 0));
  EXPECT_FALSE(p->MatchesRow(t, 1));
  EXPECT_EQ(CountMatches(t, *p), 1);
}

TEST(PatternTest, EmptyPatternMatchesEverything) {
  Table t = workload::MakeFig2Demo();
  Pattern p;
  EXPECT_EQ(CountMatches(t, p), t.num_rows());
}

TEST(PatternTest, ToStringUsesSchemaNames) {
  Table t = workload::MakeFig2Demo();
  auto p = Pattern::Parse(t, {{"gender", "Female"}, {"race", "Hispanic"}});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ToString(t), "{gender=Female, race=Hispanic}");
  EXPECT_EQ(Pattern().ToString(t), "{}");
}

TEST(PatternTest, EqualityIsTermwise) {
  auto p1 = Pattern::Create({{0, 1}, {2, 3}});
  auto p2 = Pattern::Create({{2, 3}, {0, 1}});  // same after sorting
  auto p3 = Pattern::Create({{0, 1}, {2, 4}});
  ASSERT_TRUE(p1.ok() && p2.ok() && p3.ok());
  EXPECT_TRUE(*p1 == *p2);
  EXPECT_FALSE(*p1 == *p3);
}

}  // namespace
}  // namespace pcbl
