// Tests for the indexed label artifact (api/artifact.h): a
// LabelArtifact must be a drop-in for its PortableLabel — identical
// estimates (bit-for-bit doubles), identical error conditions and
// wording, identical audit warnings — while answering from prebuilt
// indexes instead of linear scans.
#include "api/artifact.h"

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/label.h"
#include "core/portable_label.h"
#include "core/warnings.h"
#include "util/attr_mask.h"
#include "util/rng.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

using api::AuditLabelArtifact;
using api::EstimateFromLabel;
using api::LabelArtifact;

PortableLabel LabelFor(const Table& t, AttrMask s) {
  return MakePortable(Label::Build(t, s), t, "test");
}

// Every pattern shape — inside S, outside S, mixed, unknown values,
// missing-value cells — estimates bit-identically through the artifact.
TEST(LabelArtifactTest, EstimatesMatchThePortableLabelBitForBit) {
  Table table = workload::MakeCompas(600, 131).value();
  const int n = table.num_attributes();
  ASSERT_GE(n, 3);
  PortableLabel label = LabelFor(table, AttrMask::FromIndices({0, 1}));
  const LabelArtifact artifact{PortableLabel(label)};

  Rng rng(17);
  for (int trial = 0; trial < 300; ++trial) {
    // 1..3 random distinct attributes, values drawn from the dictionary
    // (or an unknown string every few trials).
    std::vector<std::pair<std::string, std::string>> pattern;
    AttrMask used;
    const int terms = 1 + static_cast<int>(rng.Next64() % 3);
    for (int t = 0; t < terms; ++t) {
      const int a = static_cast<int>(rng.Next64() % static_cast<uint64_t>(n));
      if (used.Test(a)) continue;
      used.Set(a);
      std::string value;
      if (rng.Next64() % 5 == 0) {
        value = "no-such-value";
      } else {
        const Dictionary& dict = table.dictionary(a);
        value = dict.GetString(
            static_cast<ValueId>(rng.Next64() % dict.size()));
      }
      pattern.emplace_back(table.schema().name(a), value);
    }

    const auto want = label.EstimateCount(pattern);
    const auto got = artifact.EstimateCount(pattern);
    ASSERT_EQ(got.ok(), want.ok()) << "trial " << trial;
    if (want.ok()) {
      // Bit-for-bit, not approximately: the artifact preserves the
      // label's summation and multiplication order.
      EXPECT_EQ(*got, *want) << "trial " << trial;
    }
  }
}

TEST(LabelArtifactTest, ErrorsMatchTheLabelsWordingExactly) {
  Table table = workload::MakeCompas(200, 137).value();
  PortableLabel label = LabelFor(table, AttrMask::FromIndices({0}));
  const LabelArtifact artifact{PortableLabel(label)};

  const std::vector<std::pair<std::string, std::string>> unknown = {
      {"no_such_attribute", "x"}};
  const auto label_unknown = label.EstimateCount(unknown);
  const auto artifact_unknown = artifact.EstimateCount(unknown);
  ASSERT_FALSE(label_unknown.ok());
  ASSERT_FALSE(artifact_unknown.ok());
  EXPECT_EQ(artifact_unknown.status().code(), label_unknown.status().code());
  EXPECT_EQ(artifact_unknown.status().message(),
            label_unknown.status().message());

  const std::string attr = table.schema().name(0);
  const std::vector<std::pair<std::string, std::string>> twice = {
      {attr, "a"}, {attr, "b"}};
  const auto label_twice = label.EstimateCount(twice);
  const auto artifact_twice = artifact.EstimateCount(twice);
  ASSERT_FALSE(label_twice.ok());
  ASSERT_FALSE(artifact_twice.ok());
  EXPECT_EQ(artifact_twice.status().code(), label_twice.status().code());
  EXPECT_EQ(artifact_twice.status().message(),
            label_twice.status().message());
}

// The artifact-backed audit is the label-backed audit, warning for
// warning: same kinds, groups, estimates, references, order.
TEST(LabelArtifactTest, ArtifactAuditMatchesLabelAudit) {
  Table table = workload::MakeCompas(500, 139).value();
  PortableLabel label = LabelFor(table, AttrMask::FromIndices({0, 2}));
  const LabelArtifact artifact{PortableLabel(label)};

  AuditOptions options;
  options.min_group_count = 40;
  options.max_group_share = 0.3;
  options.correlation_factor = 1.5;

  const auto want = AuditLabelArtifact(label, {}, options);
  const auto got = AuditLabelArtifact(artifact, {}, options);
  ASSERT_TRUE(want.ok()) << want.status();
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_FALSE(want->empty());  // thresholds chosen to fire
  ASSERT_EQ(got->size(), want->size());
  for (size_t i = 0; i < want->size(); ++i) {
    EXPECT_EQ((*got)[i].kind, (*want)[i].kind) << i;
    EXPECT_EQ((*got)[i].group, (*want)[i].group) << i;
    EXPECT_EQ((*got)[i].estimated, (*want)[i].estimated) << i;
    EXPECT_EQ((*got)[i].reference, (*want)[i].reference) << i;
  }
}

TEST(LabelArtifactTest, EstimateFromLabelOverloadsAgree) {
  Table table = workload::MakeCompas(300, 149).value();
  PortableLabel label = LabelFor(table, AttrMask::FromIndices({1}));
  const LabelArtifact artifact{PortableLabel(label)};
  const std::vector<std::pair<std::string, std::string>> pattern = {
      {table.schema().name(1), table.dictionary(1).GetString(0)},
      {table.schema().name(0), table.dictionary(0).GetString(0)}};
  const auto via_label = EstimateFromLabel(label, pattern);
  const auto via_artifact = EstimateFromLabel(artifact, pattern);
  ASSERT_TRUE(via_label.ok());
  ASSERT_TRUE(via_artifact.ok());
  EXPECT_EQ(*via_artifact, *via_label);
  EXPECT_EQ(artifact.total_rows(), label.total_rows);
  EXPECT_EQ(artifact.size(), label.size());
}

}  // namespace
}  // namespace pcbl
