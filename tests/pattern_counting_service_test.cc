// Tests for the dataset-scoped CountingService: warm-cache reuse across
// searches (the acceptance criterion: a second search performs zero
// full-table scans for candidates the first one sized), the
// invalidate-or-patch append hook (driven through the shared
// differential harness), and reconfiguration semantics.
#include "pattern/counting_service.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/incremental.h"
#include "core/search.h"
#include "pattern/counter.h"
#include "pattern/lattice.h"
#include "tests/differential_harness.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

using testing::DifferentialConfig;
using testing::DifferentialHarness;
using testing::RandomWorkload;

TEST(CountingServiceTest, WarmSecondSearchPerformsZeroFullScans) {
  Table t = workload::MakeCompas(3000, 9).value();
  LabelSearch search(t);
  SearchOptions options;
  options.size_bound = 60;

  const SearchResult first = search.TopDown(options);
  const CountingEngineStats& stats = search.counting_service()->stats();
  const int64_t full_scans_after_first = stats.full_scans;
  const int64_t hits_after_first = stats.cache_hits;
  EXPECT_GT(full_scans_after_first, 0);

  const SearchResult second = search.TopDown(options);
  // Every candidate the first search sized within budget is served from
  // the warm cache: not a single full-table materializing scan repeats.
  EXPECT_EQ(stats.full_scans, full_scans_after_first)
      << "the warm second search rescanned the table";
  EXPECT_GT(stats.cache_hits, hits_after_first);
  EXPECT_EQ(second.best_attrs, first.best_attrs);
  EXPECT_EQ(second.label.size(), first.label.size());
  EXPECT_DOUBLE_EQ(second.error.max_abs, first.error.max_abs);

  // The naive algorithm over the same service also rides the warm cache
  // for every subset the top-down search already counted.
  const SearchResult naive = search.Naive(options);
  EXPECT_EQ(naive.best_attrs, first.best_attrs);
}

TEST(CountingServiceTest, SearchesShareOneServiceAcrossInstances) {
  Table t = workload::MakeCompas(1500, 7).value();
  LabelSearch a(t);
  SearchOptions options;
  options.size_bound = 50;
  a.TopDown(options);
  const int64_t full_scans = a.counting_service()->stats().full_scans;

  LabelSearch b(t);
  b.SetCountingService(a.counting_service());
  b.TopDown(options);
  EXPECT_EQ(a.counting_service()->stats().full_scans, full_scans)
      << "a second LabelSearch over the shared service rescanned";
}

TEST(CountingServiceTest, AppendRowPatchesCachedEntriesExactly) {
  // The harness's warm-patch config: every subset's PC set is primed,
  // then rows — some with fresh values, some NULL-bearing — arrive one
  // by one through the patch arm, and every engine answer (patched
  // cache, rollup from a patched ancestor, delta-aware scan) must be
  // byte-identical to the one-shot counters on a rebuilt table.
  DifferentialHarness harness(
      RandomWorkload(/*seed=*/11, /*attrs=*/5, /*base_rows=*/250,
                     /*append_rows=*/40, /*domain=*/6, /*append_domain=*/9,
                     /*null_percent=*/15));
  DifferentialConfig config;
  config.name = "warm-patch";
  config.warm_cache_first = true;
  auto service = harness.Run(config);
  EXPECT_GT(service->stats().patched_entries, 0);
  EXPECT_EQ(service->total_rows(), harness.reference().num_rows());
}

TEST(CountingServiceTest, BulkAppendStaysExactThroughEitherArm) {
  DifferentialHarness harness(
      RandomWorkload(/*seed=*/5, /*attrs=*/4, /*base_rows=*/300,
                     /*append_rows=*/120, /*domain=*/5, /*append_domain=*/7,
                     /*null_percent=*/10));
  for (bool force_invalidate : {false, true}) {
    DifferentialConfig config;
    config.name = force_invalidate ? "bulk-invalidate" : "bulk-patch";
    config.warm_cache_first = true;
    config.bulk_append = true;
    config.invalidate_before_appends = force_invalidate;
    auto service = harness.Run(config);
    if (force_invalidate) {
      EXPECT_GT(service->stats().invalidations, 0);
    }
  }
}

TEST(CountingServiceTest, StandardDifferentialGridHolds) {
  // The full engine-on/off × warm/cold × delta/compacted grid on a
  // mid-size NULL-bearing workload.
  DifferentialHarness harness(
      RandomWorkload(/*seed=*/21, /*attrs=*/5, /*base_rows=*/220,
                     /*append_rows=*/35, /*domain=*/5, /*append_domain=*/8,
                     /*null_percent=*/12));
  harness.CheckAll();
}

TEST(CountingServiceTest, IncrementalSeedReusesWarmCache) {
  Table t = workload::MakeCompas(2000, 8).value();
  LabelSearch search(t);
  SearchOptions options;
  options.size_bound = 60;
  const SearchResult result = search.TopDown(options);
  if (result.best_attrs.Count() < 2) GTEST_SKIP();

  auto service = search.counting_service();
  const int64_t full_scans = service->stats().full_scans;
  auto label = IncrementalLabel::Create(t, result.best_attrs,
                                        options.size_bound, service);
  ASSERT_TRUE(label.ok());
  // The winning candidate's PC set was cached by the search: seeding the
  // incremental label costs zero additional table scans.
  EXPECT_EQ(service->stats().full_scans, full_scans);
  EXPECT_EQ(label->FootprintEntries(), result.label.size());
}

TEST(CountingServiceTest, ReconfigureShrinksToBudgetWithoutGoingStale) {
  Table t = workload::MakeCompas(1000, 7).value();
  CountingService service(t);
  std::lock_guard<std::mutex> lock(service.mutex());
  ForEachSubsetOfSize(7, 2, [&](AttrMask s) {
    service.engine().PatternCounts(s);
  });
  EXPECT_GT(service.stats().cached_groups, 0);
  CountingEngineOptions tight;
  tight.cache_budget = 0;
  service.Configure(tight);
  EXPECT_EQ(service.stats().cached_groups, 0);
  // Still exact after the purge.
  ForEachSubsetOfSize(7, 2, [&](AttrMask s) {
    EXPECT_EQ(service.engine().CountPatterns(s),
              CountDistinctPatterns(t, s));
  });
}

}  // namespace
}  // namespace pcbl
