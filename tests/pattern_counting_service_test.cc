// Tests for the dataset-scoped CountingService: warm-cache reuse across
// searches (the acceptance criterion: a second search performs zero
// full-table scans for candidates the first one sized), the
// invalidate-or-patch append hook, and reconfiguration semantics.
#include "pattern/counting_service.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/incremental.h"
#include "core/search.h"
#include "pattern/counter.h"
#include "pattern/lattice.h"
#include "util/rng.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

void ExpectSameGroupCounts(const GroupCounts& got, const GroupCounts& want,
                           AttrMask mask) {
  ASSERT_EQ(got.num_groups(), want.num_groups()) << mask.ToString();
  ASSERT_EQ(got.key_width(), want.key_width()) << mask.ToString();
  EXPECT_EQ(got.attrs(), want.attrs()) << mask.ToString();
  for (int64_t g = 0; g < got.num_groups(); ++g) {
    EXPECT_EQ(got.count(g), want.count(g))
        << mask.ToString() << " group " << g;
    for (int j = 0; j < got.key_width(); ++j) {
      EXPECT_EQ(got.key(g)[j], want.key(g)[j])
          << mask.ToString() << " group " << g << " pos " << j;
    }
  }
}

// Random string rows for append-differential tests: the same rows feed
// both the service hook and a reference TableBuilder rebuild.
std::vector<std::vector<std::string>> RandomStringRows(uint64_t seed,
                                                       int attrs,
                                                       int64_t rows,
                                                       int domain,
                                                       int null_percent) {
  Rng rng(seed);
  std::vector<std::vector<std::string>> out;
  for (int64_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    for (int a = 0; a < attrs; ++a) {
      if (rng.UniformInt(100) < static_cast<uint32_t>(null_percent)) {
        row.push_back("");
      } else {
        row.push_back("v" + std::to_string(rng.UniformInt(
                                static_cast<uint32_t>(domain))));
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

Table BuildFromRows(const std::vector<std::vector<std::string>>& rows,
                    int attrs) {
  std::vector<std::string> names;
  for (int a = 0; a < attrs; ++a) names.push_back("a" + std::to_string(a));
  auto b = TableBuilder::Create(names);
  PCBL_CHECK(b.ok());
  for (const auto& row : rows) PCBL_CHECK(b->AddRow(row).ok());
  return b->Build();
}

TEST(CountingServiceTest, WarmSecondSearchPerformsZeroFullScans) {
  Table t = workload::MakeCompas(3000, 9).value();
  LabelSearch search(t);
  SearchOptions options;
  options.size_bound = 60;

  const SearchResult first = search.TopDown(options);
  const CountingEngineStats& stats = search.counting_service()->stats();
  const int64_t full_scans_after_first = stats.full_scans;
  const int64_t hits_after_first = stats.cache_hits;
  EXPECT_GT(full_scans_after_first, 0);

  const SearchResult second = search.TopDown(options);
  // Every candidate the first search sized within budget is served from
  // the warm cache: not a single full-table materializing scan repeats.
  EXPECT_EQ(stats.full_scans, full_scans_after_first)
      << "the warm second search rescanned the table";
  EXPECT_GT(stats.cache_hits, hits_after_first);
  EXPECT_EQ(second.best_attrs, first.best_attrs);
  EXPECT_EQ(second.label.size(), first.label.size());
  EXPECT_DOUBLE_EQ(second.error.max_abs, first.error.max_abs);

  // The naive algorithm over the same service also rides the warm cache
  // for every subset the top-down search already counted.
  const SearchResult naive = search.Naive(options);
  EXPECT_EQ(naive.best_attrs, first.best_attrs);
}

TEST(CountingServiceTest, SearchesShareOneServiceAcrossInstances) {
  Table t = workload::MakeCompas(1500, 7).value();
  LabelSearch a(t);
  SearchOptions options;
  options.size_bound = 50;
  a.TopDown(options);
  const int64_t full_scans = a.counting_service()->stats().full_scans;

  LabelSearch b(t);
  b.SetCountingService(a.counting_service());
  b.TopDown(options);
  EXPECT_EQ(a.counting_service()->stats().full_scans, full_scans)
      << "a second LabelSearch over the shared service rescanned";
}

TEST(CountingServiceTest, AppendRowPatchesCachedEntriesExactly) {
  const int kAttrs = 5;
  auto base_rows = RandomStringRows(11, kAttrs, 250, 6, 15);
  Table base = BuildFromRows(base_rows, kAttrs);
  auto service = std::make_shared<CountingService>(base);

  // Warm several PC sets, including the universe (a rollup ancestor).
  const AttrMask universe = AttrMask::All(kAttrs);
  {
    std::lock_guard<std::mutex> lock(service->mutex());
    service->engine().PatternCounts(universe);
    ForEachSubsetOfSize(kAttrs, 2, [&](AttrMask s) {
      service->engine().PatternCounts(s);
    });
  }

  auto label =
      IncrementalLabel::Create(base, AttrMask::FromIndices({0, 1}), 100,
                               service);
  ASSERT_TRUE(label.ok());

  // Append rows one by one (the patch arm), some with fresh values the
  // base dictionaries have never seen ("v7", "v8").
  auto appended = RandomStringRows(77, kAttrs, 40, 9, 20);
  for (const auto& row : appended) {
    ASSERT_TRUE(label->AppendRow(row).ok());
  }
  EXPECT_GT(service->stats().patched_entries, 0);
  EXPECT_EQ(service->total_rows(), base.num_rows() + 40);

  // Reference: the extended table rebuilt from scratch. Every engine
  // answer — patched cache, rollup from a patched ancestor, delta-aware
  // scan — must be byte-identical to the one-shot counters on it.
  auto all_rows = base_rows;
  all_rows.insert(all_rows.end(), appended.begin(), appended.end());
  Table extended = BuildFromRows(all_rows, kAttrs);

  std::lock_guard<std::mutex> lock(service->mutex());
  ForEachSubsetOf(universe, [&](AttrMask s) {
    EXPECT_EQ(service->engine().CountPatterns(s),
              CountDistinctPatterns(extended, s))
        << s.ToString();
    ExpectSameGroupCounts(*service->engine().PatternCounts(s),
                          ComputePatternCounts(extended, s), s);
    EXPECT_EQ(service->engine().CountCombos(s),
              CountDistinctCombos(extended, s))
        << s.ToString();
  });
}

TEST(CountingServiceTest, BulkAppendStaysExactThroughEitherArm) {
  const int kAttrs = 4;
  auto base_rows = RandomStringRows(5, kAttrs, 300, 5, 10);
  Table base = BuildFromRows(base_rows, kAttrs);

  auto delta_rows = RandomStringRows(6, kAttrs, 120, 7, 10);
  Table delta = BuildFromRows(delta_rows, kAttrs);

  for (bool force_invalidate : {false, true}) {
    auto service = std::make_shared<CountingService>(base);
    {
      std::lock_guard<std::mutex> lock(service->mutex());
      service->engine().PatternCounts(AttrMask::All(kAttrs));
    }
    auto label = IncrementalLabel::Create(
        base, AttrMask::FromIndices({0, 2}), 100, service);
    ASSERT_TRUE(label.ok());
    if (force_invalidate) service->Invalidate();
    ASSERT_TRUE(label->AppendTable(delta).ok());

    auto all_rows = base_rows;
    all_rows.insert(all_rows.end(), delta_rows.begin(), delta_rows.end());
    Table extended = BuildFromRows(all_rows, kAttrs);

    std::lock_guard<std::mutex> lock(service->mutex());
    ForEachSubsetOf(AttrMask::All(kAttrs), [&](AttrMask s) {
      ExpectSameGroupCounts(*service->engine().PatternCounts(s),
                            ComputePatternCounts(extended, s), s);
    });
  }
}

TEST(CountingServiceTest, IncrementalSeedReusesWarmCache) {
  Table t = workload::MakeCompas(2000, 8).value();
  LabelSearch search(t);
  SearchOptions options;
  options.size_bound = 60;
  const SearchResult result = search.TopDown(options);
  if (result.best_attrs.Count() < 2) GTEST_SKIP();

  auto service = search.counting_service();
  const int64_t full_scans = service->stats().full_scans;
  auto label = IncrementalLabel::Create(t, result.best_attrs,
                                        options.size_bound, service);
  ASSERT_TRUE(label.ok());
  // The winning candidate's PC set was cached by the search: seeding the
  // incremental label costs zero additional table scans.
  EXPECT_EQ(service->stats().full_scans, full_scans);
  EXPECT_EQ(label->FootprintEntries(), result.label.size());
}

TEST(CountingServiceTest, ReconfigureShrinksToBudgetWithoutGoingStale) {
  Table t = workload::MakeCompas(1000, 7).value();
  CountingService service(t);
  std::lock_guard<std::mutex> lock(service.mutex());
  ForEachSubsetOfSize(7, 2, [&](AttrMask s) {
    service.engine().PatternCounts(s);
  });
  EXPECT_GT(service.stats().cached_groups, 0);
  CountingEngineOptions tight;
  tight.cache_budget = 0;
  service.Configure(tight);
  EXPECT_EQ(service.stats().cached_groups, 0);
  // Still exact after the purge.
  ForEachSubsetOfSize(7, 2, [&](AttrMask s) {
    EXPECT_EQ(service.engine().CountPatterns(s),
              CountDistinctPatterns(t, s));
  });
}

}  // namespace
}  // namespace pcbl
