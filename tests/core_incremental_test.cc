// Tests for IncrementalLabel: maintaining a label under appends must be
// indistinguishable from rebuilding it on the extended table.
#include "core/incremental.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/label.h"
#include "pattern/full_pattern_index.h"
#include "tests/differential_harness.h"
#include "util/rng.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

// Rebuilds the combined table (base rows then delta rows, by string) so
// its dictionary codes coincide with the incremental label's.
Table Combined(const Table& base, const Table& delta) {
  auto b = TableBuilder::Create(base.schema().names());
  PCBL_CHECK(b.ok());
  for (int a = 0; a < base.num_attributes(); ++a) {
    for (const std::string& v : base.dictionary(a).values()) {
      b->InternValue(a, v);
    }
  }
  for (const Table* t : {&base, &delta}) {
    for (int64_t r = 0; r < t->num_rows(); ++r) {
      std::vector<std::string> row;
      for (int a = 0; a < t->num_attributes(); ++a) {
        const ValueId v = t->value(r, a);
        row.push_back(IsNull(v) ? "" : t->dictionary(a).GetString(v));
      }
      PCBL_CHECK(b->AddRow(row).ok());
    }
  }
  return b->Build();
}

void ExpectMatchesRebuild(const IncrementalLabel& inc, const Table& combined,
                          AttrMask s) {
  Label rebuilt = Label::Build(combined, s);
  ASSERT_EQ(inc.total_rows(), combined.num_rows());
  EXPECT_EQ(inc.FootprintEntries(), rebuilt.size());
  FullPatternIndex index = FullPatternIndex::Build(combined);
  for (int64_t i = 0; i < index.num_patterns(); ++i) {
    ASSERT_NEAR(inc.EstimateFullPattern(index.codes(i), index.width()),
                rebuilt.EstimateFullPattern(index.codes(i), index.width()),
                1e-9)
        << "pattern " << i;
  }
}

TEST(IncrementalLabelTest, ValidatesCreation) {
  Table t = workload::MakeFig2Demo();
  EXPECT_FALSE(
      IncrementalLabel::Create(t, AttrMask::FromIndices({0, 1}), -1).ok());
  EXPECT_FALSE(
      IncrementalLabel::Create(t, AttrMask::FromIndices({0, 63}), 10).ok());
  EXPECT_TRUE(
      IncrementalLabel::Create(t, AttrMask::FromIndices({0, 1}), 10).ok());
}

TEST(IncrementalLabelTest, FreshLabelMatchesNative) {
  Table t = workload::MakeCompas(2000, 7).value();
  AttrMask s = AttrMask::FromIndices({0, 2, 12});
  auto inc = IncrementalLabel::Create(t, s, 100);
  ASSERT_TRUE(inc.ok());
  ExpectMatchesRebuild(*inc, t, s);
  EXPECT_FALSE(inc->drift().SuggestRebuild());
}

TEST(IncrementalLabelTest, AppendRowsMatchesRebuild) {
  Table base = workload::MakeFig2Demo();
  AttrMask s = AttrMask::FromIndices({1, 3});
  auto inc = IncrementalLabel::Create(base, s, 10);
  ASSERT_TRUE(inc.ok());

  // Append rows including a brand-new value ("over 60").
  const std::vector<std::vector<std::string>> rows = {
      {"Female", "over 60", "Caucasian", "widowed"},
      {"Male", "20-39", "Hispanic", "single"},
      {"Female", "over 60", "Hispanic", "widowed"},
  };
  auto b = TableBuilder::Create(base.schema().names());
  PCBL_CHECK(b.ok());
  for (const auto& row : rows) {
    ASSERT_TRUE(inc->AppendRow(row).ok());
    PCBL_CHECK(b->AddRow(row).ok());
  }
  Table delta = b->Build();
  ExpectMatchesRebuild(*inc, Combined(base, delta), s);
  EXPECT_EQ(inc->drift().appended_rows, 3);
  EXPECT_GT(inc->drift().new_patterns, 0);
}

TEST(IncrementalLabelTest, AppendTableMatchesRebuild) {
  Table base = workload::MakeCompas(1500, 7).value();
  Table delta = workload::MakeCompas(700, 99).value();
  AttrMask s = AttrMask::FromIndices({0, 2});
  auto inc = IncrementalLabel::Create(base, s, 50);
  ASSERT_TRUE(inc.ok());
  ASSERT_TRUE(inc->AppendTable(delta).ok());
  ExpectMatchesRebuild(*inc, Combined(base, delta), s);
}

TEST(IncrementalLabelTest, AppendTableChecksSchema) {
  Table base = workload::MakeFig2Demo();
  auto inc = IncrementalLabel::Create(base, AttrMask::FromIndices({0, 1}), 10);
  ASSERT_TRUE(inc.ok());

  auto b = TableBuilder::Create({"wrong", "names", "here", "now"});
  PCBL_CHECK(b.ok());
  PCBL_CHECK(b->AddRow({"a", "b", "c", "d"}).ok());
  Table bad = b->Build();
  EXPECT_FALSE(inc->AppendTable(bad).ok());

  auto narrow = TableBuilder::Create({"gender"});
  PCBL_CHECK(narrow.ok());
  Table bad2 = narrow->Build();
  EXPECT_FALSE(inc->AppendTable(bad2).ok());
}

TEST(IncrementalLabelTest, AppendRowChecksWidth) {
  Table base = workload::MakeFig2Demo();
  auto inc = IncrementalLabel::Create(base, AttrMask::FromIndices({0, 1}), 10);
  ASSERT_TRUE(inc.ok());
  EXPECT_FALSE(inc->AppendRow({"too", "few"}).ok());
}

TEST(IncrementalLabelTest, NullsNeverEnterVcOrPc) {
  Table base = workload::MakeFig2Demo();
  AttrMask s = AttrMask::FromIndices({1, 3});
  auto inc = IncrementalLabel::Create(base, s, 10);
  ASSERT_TRUE(inc.ok());
  const int64_t pc_before = inc->FootprintEntries();
  // NULL inside S: the restriction binds < 2 attributes, so no PC entry.
  ASSERT_TRUE(inc->AppendRow({"Female", "", "Hispanic", "single"}).ok());
  EXPECT_EQ(inc->FootprintEntries(), pc_before);
  EXPECT_EQ(inc->ValueCount(0, "Female"), 10);  // 9 in fig2 + 1
  EXPECT_EQ(inc->ValueCount(1, ""), 0);
}

TEST(IncrementalLabelTest, PartialRestrictionsWithNullsMatchRebuild) {
  // |S| = 3 and appended rows with exactly one NULL inside S: the arity-2
  // partial restriction must enter PC with a NULL-marked key, exactly as
  // ComputePatternCounts stores it.
  Table base = workload::MakeFig2Demo();
  AttrMask s = AttrMask::FromIndices({0, 1, 3});
  auto inc = IncrementalLabel::Create(base, s, 1000);
  ASSERT_TRUE(inc.ok());

  const std::vector<std::vector<std::string>> rows = {
      {"Female", "", "Hispanic", "single"},     // NULL in S (age group)
      {"", "under 20", "Caucasian", "married"}, // NULL in S (gender)
      {"Male", "20-39", "", "divorced"},        // NULL outside S
      {"", "", "Other", "single"},              // arity 1 in S: no PC entry
  };
  auto b = TableBuilder::Create(base.schema().names());
  PCBL_CHECK(b.ok());
  for (const auto& row : rows) {
    ASSERT_TRUE(inc->AppendRow(row).ok());
    PCBL_CHECK(b->AddRow(row).ok());
  }
  Table combined = Combined(base, b->Build());
  Label rebuilt = Label::Build(combined, s);
  EXPECT_EQ(inc->FootprintEntries(), rebuilt.size());
  FullPatternIndex index = FullPatternIndex::Build(combined);
  for (int64_t i = 0; i < index.num_patterns(); ++i) {
    EXPECT_NEAR(inc->EstimateFullPattern(index.codes(i), index.width()),
                rebuilt.EstimateFullPattern(index.codes(i), index.width()),
                1e-9);
  }
  // Partial patterns exercise the containment path over NULL-marked keys.
  for (const auto& named :
       std::vector<std::vector<std::pair<std::string, std::string>>>{
           {{"gender", "Female"}},
           {{"gender", "Female"}, {"marital status", "single"}},
           {{"age group", "under 20"}, {"marital status", "married"}},
       }) {
    auto p = Pattern::Parse(combined, named);
    ASSERT_TRUE(p.ok());
    EXPECT_NEAR(inc->EstimateCount(*p), rebuilt.EstimateCount(*p), 1e-9);
  }
}

TEST(IncrementalLabelTest, BoundViolationIsReported) {
  Table base = workload::MakeFig2Demo();
  AttrMask s = AttrMask::FromIndices({1, 3});
  // The fig2 {age group, marital status} label has exactly 3 patterns.
  auto inc = IncrementalLabel::Create(base, s, 3);
  ASSERT_TRUE(inc.ok());
  EXPECT_TRUE(inc->within_bound());
  ASSERT_TRUE(inc->AppendRow({"Male", "under 20", "Other", "married"}).ok());
  EXPECT_FALSE(inc->within_bound());
  LabelDrift drift = inc->drift();
  EXPECT_TRUE(drift.bound_exceeded);
  EXPECT_TRUE(drift.SuggestRebuild());
}

TEST(IncrementalLabelTest, GrowthThresholdTriggersRebuild) {
  Table base = workload::MakeCompas(1000, 7).value();
  AttrMask s = AttrMask::FromIndices({0, 2});
  auto inc = IncrementalLabel::Create(base, s, 1000000);
  ASSERT_TRUE(inc.ok());
  Table delta = workload::MakeCompas(300, 5).value();
  ASSERT_TRUE(inc->AppendTable(delta).ok());
  LabelDrift drift = inc->drift();
  EXPECT_FALSE(drift.bound_exceeded);
  EXPECT_TRUE(drift.SuggestRebuild(0.2));   // 30% growth > 20%
  EXPECT_FALSE(drift.SuggestRebuild(0.5));  // but not > 50%
}

TEST(IncrementalLabelTest, ServiceBackedAppendsSurviveTheDifferentialGrid) {
  // An incremental session attached to the dataset's counting service:
  // the appends it forwards must leave the *service* byte-identical to a
  // rebuilt table in every configuration — engine on/off, warm/cold
  // cache, patch/invalidate arm, delta block or compacted base. The
  // harness also cross-checks the label's own PC footprint per config.
  testing::DifferentialHarness harness(testing::RandomWorkload(
      /*seed=*/31, /*attrs=*/4, /*base_rows=*/180, /*append_rows=*/45,
      /*domain=*/5, /*append_domain=*/7, /*null_percent=*/20));
  harness.CheckAll();
}

TEST(IncrementalLabelTest, RandomizedDifferentialAgainstRebuild) {
  Rng rng(4242);
  for (int trial = 0; trial < 5; ++trial) {
    Table base = workload::MakeBlueNile(800, 100 + trial).value();
    Table delta = workload::MakeBlueNile(400, 200 + trial).value();
    // Random attribute pair/triple as S.
    std::vector<int> idx;
    while (idx.size() < static_cast<size_t>(2 + trial % 2)) {
      int a = static_cast<int>(rng.UniformInt(
          static_cast<uint32_t>(base.num_attributes())));
      if (std::find(idx.begin(), idx.end(), a) == idx.end()) {
        idx.push_back(a);
      }
    }
    AttrMask s = AttrMask::FromIndices(idx);
    auto inc = IncrementalLabel::Create(base, s, 1 << 20);
    ASSERT_TRUE(inc.ok());
    ASSERT_TRUE(inc->AppendTable(delta).ok());
    ExpectMatchesRebuild(*inc, Combined(base, delta), s);
  }
}

TEST(IncrementalLabelTest, PartialPatternEstimatesMatchRebuild) {
  Table base = workload::MakeFig2Demo();
  AttrMask s = AttrMask::FromIndices({1, 3});
  auto inc = IncrementalLabel::Create(base, s, 100);
  ASSERT_TRUE(inc.ok());
  ASSERT_TRUE(inc->AppendRow({"Female", "under 20", "Other", "married"}).ok());

  auto b = TableBuilder::Create(base.schema().names());
  PCBL_CHECK(b.ok());
  PCBL_CHECK(b->AddRow({"Female", "under 20", "Other", "married"}).ok());
  Table combined = Combined(base, b->Build());
  Label rebuilt = Label::Build(combined, s);

  const std::vector<std::vector<std::pair<std::string, std::string>>> cases =
      {
          {{"gender", "Female"}},
          {{"age group", "under 20"}, {"marital status", "married"}},
          {{"gender", "Female"}, {"race", "Other"}},
          {{"age group", "under 20"}},
      };
  for (const auto& named : cases) {
    auto p = Pattern::Parse(combined, named);
    ASSERT_TRUE(p.ok());
    EXPECT_NEAR(inc->EstimateCount(*p), rebuilt.EstimateCount(*p), 1e-9);
  }
}

}  // namespace
}  // namespace pcbl
