// Tests for the naive and top-down label searches (Sec. III,
// Algorithm 1), pinned to Example 3.7 and cross-validated against each
// other and a brute-force optimum.
#include "core/search.h"

#include <set>

#include <gtest/gtest.h>

#include "pattern/lattice.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

// Brute force: best (minimal exact max error) attribute subset of size
// >= 2 whose label fits the bound; empty mask when none fits.
AttrMask BruteForceBest(const LabelSearch& search, int64_t bound,
                        double* best_error_out) {
  const Table& t = search.table();
  AttrMask best;
  double best_error = -1;
  int64_t best_size = 0;
  ForEachSubsetOf(AttrMask::All(t.num_attributes()), [&](AttrMask s) {
    if (s.Count() < 2) return;
    Label l = Label::Build(t, s);
    if (l.size() > bound) return;
    LabelEstimator est(l);
    ErrorReport r = EvaluateOverFullPatterns(search.full_patterns(), est,
                                             ErrorMode::kExact);
    bool better = best_error < 0 || r.max_abs < best_error ||
                  (r.max_abs == best_error && l.size() < best_size) ||
                  (r.max_abs == best_error && l.size() == best_size &&
                   s.bits() < best.bits());
    if (better) {
      best = s;
      best_error = r.max_abs;
      best_size = l.size();
    }
  });
  if (best_error_out != nullptr) *best_error_out = best_error;
  return best;
}

TEST(TopDownSearchTest, Example37CandidateSet) {
  // Bound 5 on the Fig. 2 fragment: candidates must be exactly
  // {gender, age group} (size 4) and {age group, marital status} (size 3).
  Table t = workload::MakeFig2Demo();
  LabelSearch search(t);
  SearchOptions options;
  options.size_bound = 5;
  options.record_candidates = true;
  SearchResult result = search.TopDown(options);
  std::set<uint64_t> cands;
  for (const CandidateInfo& c : result.candidates) {
    cands.insert(c.attrs.bits());
  }
  std::set<uint64_t> expected = {
      AttrMask::FromIndices({0, 1}).bits(),
      AttrMask::FromIndices({1, 3}).bits(),
  };
  EXPECT_EQ(cands, expected);
  // The returned label fits the bound.
  EXPECT_LE(result.label.size(), 5);
  // The winner is one of the two candidates.
  EXPECT_TRUE(result.best_attrs == AttrMask::FromIndices({0, 1}) ||
              result.best_attrs == AttrMask::FromIndices({1, 3}));
}

TEST(TopDownSearchTest, CandidateSizesRecorded) {
  Table t = workload::MakeFig2Demo();
  LabelSearch search(t);
  SearchOptions options;
  options.size_bound = 5;
  options.record_candidates = true;
  SearchResult result = search.TopDown(options);
  for (const CandidateInfo& c : result.candidates) {
    Label l = Label::Build(t, c.attrs);
    EXPECT_EQ(l.size(), c.label_size);
    EXPECT_LE(c.label_size, 5);
  }
}

TEST(NaiveSearchTest, MatchesBruteForceOnSmallTables) {
  Table t = workload::MakeFig2Demo();
  LabelSearch search(t);
  for (int64_t bound : {3, 5, 8, 12, 100}) {
    SearchOptions options;
    options.size_bound = bound;
    options.candidate_error_mode = ErrorMode::kExact;
    SearchResult naive = search.Naive(options);
    double brute_error = -1;
    AttrMask brute = BruteForceBest(search, bound, &brute_error);
    if (brute.empty()) {
      EXPECT_TRUE(naive.best_attrs.empty()) << "bound " << bound;
    } else {
      EXPECT_EQ(naive.error.max_abs, brute_error) << "bound " << bound;
    }
  }
}

TEST(SearchAgreementTest, TopDownFindsNaiveOptimum) {
  // The candidate pruning of Algorithm 1 is justified by Prop. 3.2; on
  // these datasets the two algorithms must return equal-error labels.
  for (auto& [name, t] : std::vector<std::pair<std::string, Table>>{
           {"demo", workload::MakeFig2Demo()},
           {"compas-small", workload::MakeCompas(2000, 3).value()},
           {"bluenile-small", workload::MakeBlueNile(2000, 3).value()}}) {
    LabelSearch search(t);
    for (int64_t bound : {10, 30}) {
      SearchOptions options;
      options.size_bound = bound;
      options.candidate_error_mode = ErrorMode::kExact;
      SearchResult naive = search.Naive(options);
      SearchResult top_down = search.TopDown(options);
      EXPECT_NEAR(naive.error.max_abs, top_down.error.max_abs, 1e-9)
          << name << " bound " << bound;
    }
  }
}

TEST(SearchStatsTest, TopDownExaminesFewerSubsets) {
  Table t = workload::MakeCompas(4000, 3).value();
  LabelSearch search(t);
  SearchOptions options;
  options.size_bound = 50;
  SearchResult naive = search.Naive(options);
  SearchResult top_down = search.TopDown(options);
  EXPECT_GT(naive.stats.subsets_examined,
            top_down.stats.subsets_examined);
  EXPECT_GT(top_down.stats.subsets_examined, 0);
  EXPECT_GT(naive.stats.total_seconds, 0.0);
}

TEST(SearchStatsTest, WithinBoundNeverExceedsExamined) {
  Table t = workload::MakeBlueNile(3000, 5).value();
  LabelSearch search(t);
  SearchOptions options;
  options.size_bound = 30;
  for (SearchResult r : {search.Naive(options), search.TopDown(options)}) {
    EXPECT_LE(r.stats.within_bound, r.stats.subsets_examined);
    EXPECT_GE(r.stats.error_evaluations, 0);
  }
}

TEST(SearchTest, ImpossibleBoundFallsBackToEmptyLabel) {
  Table t = workload::MakeFig2Demo();
  LabelSearch search(t);
  SearchOptions options;
  options.size_bound = 1;  // no pairwise label fits
  SearchResult naive = search.Naive(options);
  SearchResult top_down = search.TopDown(options);
  EXPECT_TRUE(naive.best_attrs.empty());
  EXPECT_TRUE(top_down.best_attrs.empty());
  // The degenerate label still produces a valid (independence) report.
  EXPECT_GT(naive.error.max_abs, 0.0);
  EXPECT_DOUBLE_EQ(naive.error.max_abs, top_down.error.max_abs);
}

TEST(SearchTest, LargerBoundNeverHurts) {
  Table t = workload::MakeCompas(3000, 17).value();
  LabelSearch search(t);
  double prev_error = -1;
  for (int64_t bound : {5, 10, 20, 50, 100}) {
    SearchOptions options;
    options.size_bound = bound;
    SearchResult r = search.TopDown(options);
    if (prev_error >= 0) {
      EXPECT_LE(r.error.max_abs, prev_error + 1e-9)
          << "bound " << bound;
    }
    prev_error = r.error.max_abs;
  }
}

TEST(SearchTest, FinalReportIsExactMode) {
  Table t = workload::MakeFig2Demo();
  LabelSearch search(t);
  SearchOptions options;
  options.size_bound = 5;
  SearchResult r = search.TopDown(options);
  EXPECT_FALSE(r.error.early_terminated);
  EXPECT_EQ(r.error.evaluated, r.error.total);
}

TEST(SearchTest, SharedContextReusable) {
  Table t = workload::MakeFig2Demo();
  auto vc = std::make_shared<const ValueCounts>(ValueCounts::Compute(t));
  auto fpi = std::make_shared<const FullPatternIndex>(
      FullPatternIndex::Build(t));
  LabelSearch search(t, vc, fpi);
  SearchOptions options;
  options.size_bound = 5;
  SearchResult r1 = search.TopDown(options);
  SearchResult r2 = search.TopDown(options);
  EXPECT_EQ(r1.best_attrs, r2.best_attrs);
  EXPECT_DOUBLE_EQ(r1.error.max_abs, r2.error.max_abs);
}

}  // namespace
}  // namespace pcbl
