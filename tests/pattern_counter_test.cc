// Tests for group-by counting: the three strategies must agree, the
// early-exit distinct count must be exact within budget, and NULL rows
// must never produce patterns.
#include "pattern/counter.h"

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "pattern/full_pattern_index.h"
#include "util/rng.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

// Brute-force reference: counts distinct non-null combos via a std::map.
std::map<std::vector<ValueId>, int64_t> ReferenceGroupBy(const Table& t,
                                                         AttrMask mask) {
  std::map<std::vector<ValueId>, int64_t> ref;
  std::vector<int> attrs = mask.ToIndices();
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    std::vector<ValueId> key;
    bool ok = true;
    for (int a : attrs) {
      ValueId v = t.value(r, a);
      if (IsNull(v)) {
        ok = false;
        break;
      }
      key.push_back(v);
    }
    if (ok) ++ref[key];
  }
  return ref;
}

// Random table with optional nulls for property sweeps.
Table RandomTable(int attrs, int64_t rows, int domain, double null_prob,
                  uint64_t seed) {
  std::vector<std::string> names;
  for (int a = 0; a < attrs; ++a) names.push_back("a" + std::to_string(a));
  auto b = TableBuilder::Create(names);
  PCBL_CHECK(b.ok());
  for (int a = 0; a < attrs; ++a) {
    for (int v = 0; v < domain; ++v) {
      b->InternValue(a, "v" + std::to_string(v));
    }
  }
  Rng rng(seed);
  std::vector<ValueId> codes(static_cast<size_t>(attrs));
  for (int64_t r = 0; r < rows; ++r) {
    for (int a = 0; a < attrs; ++a) {
      codes[static_cast<size_t>(a)] =
          rng.Bernoulli(null_prob)
              ? kNullValue
              : rng.UniformInt(static_cast<uint32_t>(domain));
    }
    PCBL_CHECK(b->AddRowCodes(codes).ok());
  }
  return b->Build();
}

void ExpectMatchesReference(const Table& t, AttrMask mask,
                            GroupByStrategy strategy) {
  GroupCounts gc = ComputeGroupCounts(t, mask, strategy);
  auto ref = ReferenceGroupBy(t, mask);
  ASSERT_EQ(gc.num_groups(), static_cast<int64_t>(ref.size()));
  for (int64_t g = 0; g < gc.num_groups(); ++g) {
    std::vector<ValueId> key(gc.key(g), gc.key(g) + gc.key_width());
    auto it = ref.find(key);
    ASSERT_NE(it, ref.end()) << "unexpected group";
    EXPECT_EQ(gc.count(g), it->second);
  }
}

TEST(GroupCountsTest, Fig2PairCountsMatchExample210) {
  Table t = workload::MakeFig2Demo();
  // S = {age group, marital status}: 3 patterns of count 6 each.
  GroupCounts gc = ComputeGroupCounts(t, AttrMask::FromIndices({1, 3}));
  EXPECT_EQ(gc.num_groups(), 3);
  for (int64_t g = 0; g < gc.num_groups(); ++g) {
    EXPECT_EQ(gc.count(g), 6);
  }
  // S' = {gender, age group}: sizes 3,3,6,6.
  GroupCounts gc2 = ComputeGroupCounts(t, AttrMask::FromIndices({0, 1}));
  EXPECT_EQ(gc2.num_groups(), 4);
  std::multiset<int64_t> counts;
  for (int64_t g = 0; g < gc2.num_groups(); ++g) {
    counts.insert(gc2.count(g));
  }
  EXPECT_EQ(counts, (std::multiset<int64_t>{3, 3, 6, 6}));
}

TEST(GroupCountsTest, EmptyMaskGivesOneGroup) {
  Table t = workload::MakeFig2Demo();
  GroupCounts gc = ComputeGroupCounts(t, AttrMask());
  EXPECT_EQ(gc.num_groups(), 1);
  EXPECT_EQ(gc.count(0), t.num_rows());
  EXPECT_EQ(gc.key_width(), 0);
}

TEST(GroupCountsTest, TotalCountExcludesNullRows) {
  Table t = RandomTable(3, 500, 4, 0.2, 99);
  AttrMask mask = AttrMask::FromIndices({0, 2});
  GroupCounts gc = ComputeGroupCounts(t, mask);
  int64_t expected = 0;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    if (!IsNull(t.value(r, 0)) && !IsNull(t.value(r, 2))) ++expected;
  }
  EXPECT_EQ(gc.total_count(), expected);
}

TEST(GroupCountsTest, ToPatternRoundTrip) {
  Table t = workload::MakeFig2Demo();
  GroupCounts gc = ComputeGroupCounts(t, AttrMask::FromIndices({1, 3}));
  for (int64_t g = 0; g < gc.num_groups(); ++g) {
    Pattern p = gc.ToPattern(g);
    EXPECT_EQ(CountMatches(t, p), gc.count(g));
  }
}

TEST(GroupCountsTest, StrategiesAgreeOnOrderAndContent) {
  Table t = RandomTable(4, 800, 5, 0.1, 1234);
  AttrMask mask = AttrMask::FromIndices({0, 1, 3});
  GroupCounts dense = ComputeGroupCounts(t, mask, GroupByStrategy::kDense);
  GroupCounts hash = ComputeGroupCounts(t, mask, GroupByStrategy::kHash);
  GroupCounts sort = ComputeGroupCounts(t, mask, GroupByStrategy::kSort);
  ASSERT_EQ(dense.num_groups(), hash.num_groups());
  ASSERT_EQ(dense.num_groups(), sort.num_groups());
  for (int64_t g = 0; g < dense.num_groups(); ++g) {
    for (int j = 0; j < dense.key_width(); ++j) {
      EXPECT_EQ(dense.key(g)[j], hash.key(g)[j]);
      EXPECT_EQ(dense.key(g)[j], sort.key(g)[j]);
    }
    EXPECT_EQ(dense.count(g), hash.count(g));
    EXPECT_EQ(dense.count(g), sort.count(g));
  }
}

// Property sweep over strategies x table shapes: every strategy matches
// the brute-force reference.
struct CounterCase {
  GroupByStrategy strategy;
  int attrs;
  int64_t rows;
  int domain;
  double null_prob;
};

class CounterPropertyTest : public ::testing::TestWithParam<CounterCase> {};

TEST_P(CounterPropertyTest, MatchesBruteForce) {
  const CounterCase& c = GetParam();
  Table t = RandomTable(c.attrs, c.rows, c.domain, c.null_prob, 4242);
  // Try several masks of different arity.
  std::vector<AttrMask> masks = {
      AttrMask::Single(0),
      AttrMask::FromIndices({0, c.attrs - 1}),
      AttrMask::All(c.attrs),
  };
  for (AttrMask m : masks) {
    ExpectMatchesReference(t, m, c.strategy);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CounterPropertyTest,
    ::testing::Values(
        CounterCase{GroupByStrategy::kDense, 3, 200, 3, 0.0},
        CounterCase{GroupByStrategy::kDense, 3, 200, 3, 0.3},
        CounterCase{GroupByStrategy::kDense, 5, 1000, 4, 0.05},
        CounterCase{GroupByStrategy::kHash, 3, 200, 3, 0.0},
        CounterCase{GroupByStrategy::kHash, 5, 1000, 4, 0.3},
        CounterCase{GroupByStrategy::kHash, 2, 50, 8, 0.5},
        CounterCase{GroupByStrategy::kSort, 3, 200, 3, 0.0},
        CounterCase{GroupByStrategy::kSort, 5, 1000, 4, 0.3},
        CounterCase{GroupByStrategy::kSort, 2, 50, 8, 0.5},
        CounterCase{GroupByStrategy::kAuto, 6, 2000, 3, 0.1}));

TEST(CountDistinctTest, ExactWithoutBudget) {
  Table t = RandomTable(4, 500, 4, 0.1, 777);
  for (AttrMask m : {AttrMask::Single(1), AttrMask::FromIndices({0, 2}),
                     AttrMask::All(4)}) {
    auto ref = ReferenceGroupBy(t, m);
    EXPECT_EQ(CountDistinctCombos(t, m),
              static_cast<int64_t>(ref.size()));
  }
}

TEST(CountDistinctTest, EarlyExitNeverUnderBudget) {
  Table t = RandomTable(4, 2000, 6, 0.0, 888);
  AttrMask m = AttrMask::All(4);
  int64_t exact = CountDistinctCombos(t, m);
  ASSERT_GT(exact, 50);
  for (int64_t budget : {1, 10, 50}) {
    int64_t v = CountDistinctCombos(t, m, budget);
    EXPECT_GT(v, budget);  // correctly reports "over budget"
  }
  // Budget at or above the true count returns the exact value.
  EXPECT_EQ(CountDistinctCombos(t, m, exact), exact);
  EXPECT_EQ(CountDistinctCombos(t, m, exact + 100), exact);
}

TEST(CountDistinctTest, EmptyMask) {
  Table t = RandomTable(2, 10, 2, 0.0, 1);
  EXPECT_EQ(CountDistinctCombos(t, AttrMask()), 1);
  auto b = TableBuilder::Create({"x"});
  ASSERT_TRUE(b.ok());
  Table empty = b->Build();
  EXPECT_EQ(CountDistinctCombos(empty, AttrMask()), 0);
}

TEST(DenseKeySpaceTest, ProductAndOverflow) {
  Table t = RandomTable(3, 10, 4, 0.0, 2);
  EXPECT_EQ(DenseKeySpace(t, AttrMask::All(3)).value(), 64);
  EXPECT_EQ(DenseKeySpace(t, AttrMask()).value(), 1);
}

TEST(FullPatternIndexTest, CountsAndOrder) {
  Table t = workload::MakeFig2Demo();
  FullPatternIndex idx = FullPatternIndex::Build(t);
  // 18 rows, all distinct? Check against reference.
  auto ref = ReferenceGroupBy(t, AttrMask::All(4));
  EXPECT_EQ(idx.num_patterns(), static_cast<int64_t>(ref.size()));
  EXPECT_EQ(idx.rows_indexed(), 18);
  EXPECT_EQ(idx.rows_skipped(), 0);
  // Descending count order.
  for (int64_t i = 1; i < idx.num_patterns(); ++i) {
    EXPECT_GE(idx.count(i - 1), idx.count(i));
  }
  // Each indexed pattern's count matches a full scan.
  int64_t total = 0;
  for (int64_t i = 0; i < idx.num_patterns(); ++i) {
    Pattern p = idx.ToPattern(i);
    EXPECT_EQ(CountMatches(t, p), idx.count(i));
    total += idx.count(i);
  }
  EXPECT_EQ(total, t.num_rows());
}

TEST(FullPatternIndexTest, NullRowsSkipped) {
  auto b = TableBuilder::Create({"x", "y"});
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(b->AddRow({"a", "b"}).ok());
  ASSERT_TRUE(b->AddRow({"a", ""}).ok());
  ASSERT_TRUE(b->AddRow({"a", "b"}).ok());
  Table t = b->Build();
  FullPatternIndex idx = FullPatternIndex::Build(t);
  EXPECT_EQ(idx.num_patterns(), 1);
  EXPECT_EQ(idx.count(0), 2);
  EXPECT_EQ(idx.rows_indexed(), 2);
  EXPECT_EQ(idx.rows_skipped(), 1);
}

}  // namespace
}  // namespace pcbl
