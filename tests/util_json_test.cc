// Tests for the minimal JSON model, writer, and parser.
#include "util/json.h"

#include <gtest/gtest.h>

namespace pcbl {
namespace {

TEST(JsonWriteTest, Scalars) {
  EXPECT_EQ(JsonValue::Null().Dump(), "null");
  EXPECT_EQ(JsonValue::Bool(true).Dump(), "true");
  EXPECT_EQ(JsonValue::Bool(false).Dump(), "false");
  EXPECT_EQ(JsonValue::Int(-42).Dump(), "-42");
  EXPECT_EQ(JsonValue::String("hi").Dump(), "\"hi\"");
}

TEST(JsonWriteTest, StringEscapes) {
  EXPECT_EQ(JsonValue::String("a\"b").Dump(), "\"a\\\"b\"");
  EXPECT_EQ(JsonValue::String("a\\b").Dump(), "\"a\\\\b\"");
  EXPECT_EQ(JsonValue::String("a\nb").Dump(), "\"a\\nb\"");
  EXPECT_EQ(JsonValue::String("a\tb").Dump(), "\"a\\tb\"");
  EXPECT_EQ(JsonValue::String(std::string(1, '\x01')).Dump(), "\"\\u0001\"");
}

TEST(JsonWriteTest, ArrayAndObjectCompact) {
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::Int(1));
  arr.Append(JsonValue::Int(2));
  EXPECT_EQ(arr.Dump(), "[1,2]");

  JsonValue obj = JsonValue::Object();
  obj.Set("a", JsonValue::Int(1));
  obj.Set("b", JsonValue::String("x"));
  EXPECT_EQ(obj.Dump(), "{\"a\":1,\"b\":\"x\"}");
}

TEST(JsonWriteTest, SetOverwritesExistingKey) {
  JsonValue obj = JsonValue::Object();
  obj.Set("a", JsonValue::Int(1));
  obj.Set("a", JsonValue::Int(2));
  EXPECT_EQ(obj.Dump(), "{\"a\":2}");
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_EQ(ParseJson("true")->GetBool().value(), true);
  EXPECT_EQ(ParseJson("-17")->GetInt().value(), -17);
  EXPECT_DOUBLE_EQ(ParseJson("2.5")->GetDouble().value(), 2.5);
  EXPECT_DOUBLE_EQ(ParseJson("1e3")->GetDouble().value(), 1000.0);
  EXPECT_EQ(ParseJson("\"abc\"")->GetString().value(), "abc");
}

TEST(JsonParseTest, IntVersusDouble) {
  EXPECT_TRUE(ParseJson("42")->is_int());
  EXPECT_TRUE(ParseJson("42.0")->is_double());
  // A double that holds an integral value still reads as int.
  EXPECT_EQ(ParseJson("42.0")->GetInt().value(), 42);
}

TEST(JsonParseTest, NestedStructure) {
  auto v = ParseJson(R"({"a": [1, {"b": "x"}], "c": null})");
  ASSERT_TRUE(v.ok()) << v.status();
  auto a = v->Find("a");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE((*a)->is_array());
  EXPECT_EQ((*a)->array_items().size(), 2u);
  auto b = (*a)->array_items()[1].Find("b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*b)->GetString().value(), "x");
  EXPECT_TRUE(v->Find("c").value()->is_null());
}

TEST(JsonParseTest, WhitespaceTolerant) {
  auto v = ParseJson("  {\n\t\"a\" :\r [ 1 , 2 ]  } \n");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("a").value()->array_items().size(), 2u);
}

TEST(JsonParseTest, StringEscapesRoundTrip) {
  auto v = ParseJson(R"("a\"b\\c\ndA")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->GetString().value(), "a\"b\\c\ndA");
}

TEST(JsonParseTest, UnicodeEscapeMultibyte) {
  auto v = ParseJson("\"\\u00e9\"");  // é
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->GetString().value(), "\xc3\xa9");
}

TEST(JsonParseTest, Errors) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());
  EXPECT_FALSE(ParseJson("-").ok());
}

TEST(JsonParseTest, FindMissingKeyIsNotFound) {
  auto v = ParseJson("{\"a\":1}");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("b").status().code(), StatusCode::kNotFound);
}

TEST(JsonRoundTripTest, CompactAndPretty) {
  const char* text = R"({"name":"x","vals":[1,2.5,"s",null,true]})";
  auto v = ParseJson(text);
  ASSERT_TRUE(v.ok());
  // Compact dump re-parses to the same dump.
  auto v2 = ParseJson(v->Dump());
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v->Dump(), v2->Dump());
  // Pretty dump also re-parses to the same compact dump.
  auto v3 = ParseJson(v->Dump(2));
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(v->Dump(), v3->Dump());
}

}  // namespace
}  // namespace pcbl
