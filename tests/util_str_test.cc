// Tests for string helpers.
#include "util/str.h"

#include <gtest/gtest.h>

namespace pcbl {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrCatTest, ConcatenatesMixedTypes) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(SplitTest, SplitsAndKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  abc  "), "abc");
  EXPECT_EQ(Trim("\t\r\nabc\n"), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("hello", "hello!"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_FALSE(EndsWith("hello", "hell"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(ToLowerTest, LowersAsciiOnly) {
  EXPECT_EQ(ToLower("AbC-12"), "abc-12");
}

TEST(ParseInt64Test, ParsesValidIntegers) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64("  123  ").value(), 123);
  EXPECT_EQ(ParseInt64("0").value(), 0);
}

TEST(ParseInt64Test, RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("x12").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
}

TEST(ParseDoubleTest, ParsesValidDoubles) {
  EXPECT_DOUBLE_EQ(ParseDouble("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_DOUBLE_EQ(ParseDouble(" 7 ").value(), 7.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
}

TEST(ThousandsSeparatorsTest, FormatsGroups) {
  EXPECT_EQ(WithThousandsSeparators(0), "0");
  EXPECT_EQ(WithThousandsSeparators(999), "999");
  EXPECT_EQ(WithThousandsSeparators(1000), "1,000");
  EXPECT_EQ(WithThousandsSeparators(60843), "60,843");
  EXPECT_EQ(WithThousandsSeparators(1234567), "1,234,567");
  EXPECT_EQ(WithThousandsSeparators(-1234), "-1,234");
}

TEST(PercentStringTest, Formats) {
  EXPECT_EQ(PercentString(0.0104), "1.04%");
  EXPECT_EQ(PercentString(0.5, 0), "50%");
  EXPECT_EQ(PercentString(1.0, 1), "100.0%");
}

}  // namespace
}  // namespace pcbl
