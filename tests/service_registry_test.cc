// Tests for the process-wide ServiceRegistry: content fingerprinting,
// cross-consumer cache sharing (the acceptance criterion: two concurrent
// searches over the same dataset perform exactly one set of full-table
// scans), memory accounting with cold-service eviction, and a
// concurrency stress where acquires, appends and evictions race
// (TSan-clean; one engine built once).
#include "pattern/service_registry.h"

#include <atomic>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/incremental.h"
#include "core/search.h"
#include "pattern/counter.h"
#include "pattern/lattice.h"
#include "tests/differential_harness.h"
#include "util/rng.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

TEST(TableFingerprintTest, EqualContentEqualFingerprint) {
  Table a = workload::MakeCompas(500, 7).value();
  Table b = workload::MakeCompas(500, 7).value();
  EXPECT_EQ(FingerprintTable(a), FingerprintTable(b));
  // Copies too, trivially.
  Table c = a;
  EXPECT_EQ(FingerprintTable(a), FingerprintTable(c));
}

TEST(TableFingerprintTest, DataSchemaAndDictionaryChangesAllRegister) {
  Table base = workload::MakeCompas(500, 7).value();
  // Different rows.
  EXPECT_NE(FingerprintTable(base),
            FingerprintTable(workload::MakeCompas(500, 8).value()));
  // Different row count.
  EXPECT_NE(FingerprintTable(base),
            FingerprintTable(workload::MakeCompas(499, 7).value()));
  // Different schema names over identical data.
  auto b1 = TableBuilder::Create({"x", "y"});
  auto b2 = TableBuilder::Create({"x", "z"});
  PCBL_CHECK(b1.ok() && b2.ok());
  PCBL_CHECK(b1->AddRow({"a", "b"}).ok());
  PCBL_CHECK(b2->AddRow({"a", "b"}).ok());
  EXPECT_NE(FingerprintTable(b1->Build()), FingerprintTable(b2->Build()));
  // Same column codes, different dictionary strings.
  auto b3 = TableBuilder::Create({"x", "y"});
  PCBL_CHECK(b3.ok());
  PCBL_CHECK(b3->AddRow({"a", "c"}).ok());
  auto b4 = TableBuilder::Create({"x", "y"});
  PCBL_CHECK(b4.ok());
  PCBL_CHECK(b4->AddRow({"a", "b"}).ok());
  EXPECT_NE(FingerprintTable(b3->Build()), FingerprintTable(b4->Build()));
  // NULL vs a value.
  auto b5 = TableBuilder::Create({"x", "y"});
  PCBL_CHECK(b5.ok());
  PCBL_CHECK(b5->AddRow({"a", ""}).ok());
  EXPECT_NE(FingerprintTable(b4->Build()), FingerprintTable(b5->Build()));
}

TEST(ServiceRegistryTest, ContentEqualTablesShareOneService) {
  ServiceRegistry registry;
  Table a = workload::MakeCompas(800, 3).value();
  Table b = workload::MakeCompas(800, 3).value();  // distinct instance
  auto s1 = registry.Acquire(a);
  auto s2 = registry.Acquire(b);
  EXPECT_EQ(s1.get(), s2.get());
  const ServiceRegistryStats stats = registry.stats();
  EXPECT_EQ(stats.acquires, 2);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.services, 1);
  // The service survives both acquirers' tables: it scans its own copy.
  EXPECT_NE(&s1->table(), &a);
  EXPECT_NE(&s1->table(), &b);
  EXPECT_EQ(s1->table().num_rows(), a.num_rows());

  Table other = workload::MakeCompas(800, 4).value();
  auto s3 = registry.Acquire(other);
  EXPECT_NE(s3.get(), s1.get());
  EXPECT_EQ(registry.stats().services, 2);
}

// The acceptance criterion: two concurrent searches over the same
// dataset through the registry perform exactly one set of full-table
// scans between them.
TEST(ServiceRegistryTest, ConcurrentSearchesShareOneSetOfFullScans) {
  SearchOptions options;
  options.size_bound = 60;

  // Expected scan count: one cold search over a private service.
  Table cold_table = workload::MakeCompas(2500, 11).value();
  LabelSearch cold(cold_table);
  const SearchResult cold_result = cold.TopDown(options);
  const int64_t cold_full_scans = cold.counting_service()->stats().full_scans;
  ASSERT_GT(cold_full_scans, 0);

  // Two consumers, each with its own content-equal table instance and
  // its own LabelSearch, racing through one registry.
  ServiceRegistry registry;
  std::vector<Table> tables;
  tables.push_back(workload::MakeCompas(2500, 11).value());
  tables.push_back(workload::MakeCompas(2500, 11).value());
  std::vector<SearchResult> results(2);
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([&, i] {
      LabelSearch search(tables[static_cast<size_t>(i)],
                         registry.Acquire(tables[static_cast<size_t>(i)]));
      results[static_cast<size_t>(i)] = search.TopDown(options);
    });
  }
  for (auto& t : threads) t.join();

  auto service = registry.Acquire(tables[0]);
  EXPECT_EQ(registry.stats().misses, 1) << "the engine was built twice";
  {
    std::lock_guard<std::mutex> lock(service->mutex());
    EXPECT_EQ(service->stats().full_scans, cold_full_scans)
        << "the second concurrent search rescanned the table";
  }
  // Both searches returned the cold search's exact result.
  for (const SearchResult& r : results) {
    EXPECT_EQ(r.best_attrs, cold_result.best_attrs);
    EXPECT_EQ(r.label.size(), cold_result.label.size());
    EXPECT_DOUBLE_EQ(r.error.max_abs, cold_result.error.max_abs);
  }
}

TEST(ServiceRegistryTest, IncrementalSessionSeedsFromRegistryService) {
  ServiceRegistry registry;
  Table t = workload::MakeCompas(1200, 5).value();
  auto service = registry.Acquire(t);
  {
    LabelSearch search(t, service);
    SearchOptions options;
    options.size_bound = 50;
    SearchResult result = search.TopDown(options);
    if (result.best_attrs.Count() < 2) GTEST_SKIP();
    const int64_t full_scans = service->stats().full_scans;
    // The label is created against the *caller's* table instance; the
    // registry service wraps its own content-equal copy.
    auto label = IncrementalLabel::Create(t, result.best_attrs,
                                          options.size_bound, service);
    ASSERT_TRUE(label.ok()) << label.status().ToString();
    EXPECT_EQ(service->stats().full_scans, full_scans);
    EXPECT_EQ(label->FootprintEntries(), result.label.size());
  }
}

TEST(ServiceRegistryTest, MemoryBudgetEvictsColdServicesLruFirst) {
  ServiceRegistry registry;
  Table a = workload::MakeCompas(1500, 21).value();
  Table b = workload::MakeCompas(1500, 22).value();

  auto warm = [&](const Table& t) {
    auto service = registry.Acquire(t);
    std::lock_guard<std::mutex> lock(service->mutex());
    ForEachSubsetOfSize(t.num_attributes(), 2, [&](AttrMask s) {
      service->engine().PatternCounts(s);
    });
    return service->resident_bytes();
  };
  const int64_t cache_a = warm(a);  // service cold again after return
  ASSERT_GT(cache_a, 0);
  warm(b);
  EXPECT_EQ(registry.stats().services, 2);
  const int64_t total = registry.ResidentBytes();  // caches + table copies
  EXPECT_GT(total, cache_a);

  // One byte under the total: evicting the LRU entry (a) suffices.
  registry.SetMemoryBudget(total - 1);
  EXPECT_EQ(registry.stats().evictions, 1);
  EXPECT_EQ(registry.stats().services, 1);
  EXPECT_LE(registry.ResidentBytes(), total - 1);
  // a is gone (re-acquire misses), b survived (hit).
  registry.SetMemoryBudget(0);  // unbounded, so the probes do not evict
  const int64_t misses = registry.stats().misses;
  registry.Acquire(b);
  EXPECT_EQ(registry.stats().misses, misses);
  registry.Acquire(a);
  EXPECT_EQ(registry.stats().misses, misses + 1);
}

TEST(ServiceRegistryTest, AcquireAfterAppendsRebuildsForBaseContent) {
  // A service that absorbed appends no longer matches its fingerprint's
  // content: the next acquire must hand out a fresh base-content
  // service (counted as a miss) while the grown one stays valid for its
  // holders.
  ServiceRegistry registry;
  Table t = workload::MakeCompas(900, 13).value();
  auto grown = registry.Acquire(t);
  auto label = IncrementalLabel::Create(grown->table(),
                                        AttrMask::FromIndices({0, 1}), 1000,
                                        grown);
  ASSERT_TRUE(label.ok()) << label.status().ToString();
  ASSERT_TRUE(label->AppendRow(std::vector<std::string>(
                  static_cast<size_t>(t.num_attributes()), "fresh"))
                  .ok());
  ASSERT_TRUE(grown->has_absorbed_appends());

  auto fresh = registry.Acquire(t);
  EXPECT_NE(fresh.get(), grown.get());
  EXPECT_EQ(registry.stats().misses, 2);
  EXPECT_EQ(fresh->total_rows(), t.num_rows());
  EXPECT_EQ(grown->total_rows(), t.num_rows() + 1);
  // The rebuilt service works for a full search; the grown one still
  // answers (no dangling table after its entry was replaced).
  LabelSearch search(t, fresh);
  SearchOptions options;
  options.size_bound = 40;
  search.TopDown(options);
  std::lock_guard<std::mutex> lock(grown->mutex());
  EXPECT_GT(grown->engine().CountPatterns(AttrMask::FromIndices({0, 1})),
            0);
}

TEST(ServiceRegistryTest, AppendedDataCountsTowardResidentBytes) {
  // The accountant must see the delta block and the compacted base
  // copy, not just the cache — otherwise a streaming append workload
  // blows through --service-budget unnoticed.
  ServiceRegistry registry;
  Table t = workload::MakeCompas(400, 19).value();
  auto service = registry.Acquire(t);
  const int64_t before = registry.ResidentBytes();
  const int n = t.num_attributes();
  {
    std::vector<ValueId> row(static_cast<size_t>(n), 0);
    std::vector<std::vector<ValueId>> rows(16, row);
    service->AppendRows(rows);
  }
  const int64_t with_delta = registry.ResidentBytes();
  EXPECT_EQ(with_delta - before,
            16 * n * static_cast<int64_t>(sizeof(ValueId)));
  {
    std::lock_guard<std::mutex> lock(service->mutex());
    service->engine().CompactDeltas();
  }
  // The columnar copy of the base table is new resident data.
  EXPECT_EQ(registry.ResidentBytes() - with_delta,
            static_cast<int64_t>(n) * t.num_rows() *
                static_cast<int64_t>(sizeof(ValueId)));
}

TEST(ServiceRegistryTest, ClearLeavesOutstandingServicesValid) {
  ServiceRegistry registry;
  Table t = workload::MakeCompas(600, 17).value();
  auto held = registry.Acquire(t);
  registry.Clear();
  EXPECT_EQ(registry.stats().services, 0);
  // The service owns its table: scanning after Clear() is safe.
  std::lock_guard<std::mutex> lock(held->mutex());
  EXPECT_EQ(held->engine().CountPatterns(AttrMask::FromIndices({0, 1})),
            CountDistinctPatterns(t, AttrMask::FromIndices({0, 1})));
}

TEST(ServiceRegistryTest, HotServicesSurviveTrim) {
  ServiceRegistry registry;
  Table t = workload::MakeCompas(1000, 9).value();
  auto held = registry.Acquire(t);  // hot: we hold a reference
  {
    std::lock_guard<std::mutex> lock(held->mutex());
    ForEachSubsetOfSize(t.num_attributes(), 2, [&](AttrMask s) {
      held->engine().PatternCounts(s);
    });
  }
  ASSERT_GT(held->resident_bytes(), 0);
  registry.SetMemoryBudget(1);  // far below resident
  EXPECT_EQ(registry.stats().evictions, 0);
  EXPECT_EQ(registry.stats().services, 1);
  // Releasing the holder makes it cold; the next trim collects it.
  held.reset();
  registry.Trim();
  EXPECT_EQ(registry.stats().evictions, 1);
  EXPECT_EQ(registry.stats().services, 0);
}

// The spill counters surfaced by `pcbl serve` kStats replies and the
// CLI registry: line (cli::FormatRegistryStats): zero without a
// directory, miss → spill → hit across two registry lifetimes over one
// directory, and disabled again when the directory is unset.
TEST(ServiceRegistryTest, SpillCountersFlowThroughStats) {
  const std::string dir = ::testing::TempDir() + "pcbl_registry_counters";
  std::filesystem::remove_all(dir);
  Table t = workload::MakeCompas(700, 13).value();

  // Without a directory every spill counter stays zero whatever the
  // traffic — the stats block must not invent a disabled subsystem.
  ServiceRegistry registry;
  {
    auto service = registry.Acquire(t);
    EXPECT_EQ(registry.SpillResident(), 0);
    const ServiceRegistryStats stats = registry.stats();
    EXPECT_EQ(stats.spill_hits, 0);
    EXPECT_EQ(stats.spill_misses, 0);
    EXPECT_EQ(stats.spill_rejects, 0);
    EXPECT_EQ(stats.spills, 0);
    EXPECT_EQ(stats.spilled_bytes, 0);
    registry.Clear();
  }

  registry.SetSpillDirectory(dir);
  {
    auto service = registry.Acquire(t);
    EXPECT_EQ(registry.stats().spill_misses, 1);  // cold directory
    std::lock_guard<std::mutex> lock(service->mutex());
    ForEachSubsetOfSize(t.num_attributes(), 2, [&](AttrMask s) {
      service->engine().PatternCounts(s);
    });
  }
  EXPECT_EQ(registry.SpillResident(), 1);
  EXPECT_EQ(registry.stats().spills, 1);
  EXPECT_GT(registry.stats().spilled_bytes, 0);

  ServiceRegistry fresh;
  fresh.SetSpillDirectory(dir);
  auto warmed = fresh.Acquire(t);
  EXPECT_EQ(fresh.stats().spill_hits, 1);
  EXPECT_EQ(fresh.stats().spill_misses, 0);
  {
    std::lock_guard<std::mutex> lock(warmed->mutex());
    warmed->engine().PatternCounts(AttrMask::FromIndices({0, 1}));
  }
  EXPECT_EQ(warmed->stats().full_scans, 0);

  // Unsetting the directory turns the subsystem back off.
  fresh.SetSpillDirectory("");
  EXPECT_EQ(fresh.SpillResident(), 0);
}

// Concurrency stress: N threads acquire the same fingerprint and size
// random subsets while one thread appends rows through *another*
// fingerprint's service hook (appends retire a fingerprint's entry, so
// the built-once assertion needs an append-free fingerprint) and a
// trimmer forces evictions against decoy services. The readers' engine
// must be built exactly once, the appender's answers must stay exact
// against a rebuilt reference, and the run must be TSan-clean.
TEST(ServiceRegistryTest, StressSharedAcquireWithAppendsAndTrims) {
  constexpr int kThreads = 6;
  constexpr int kItersPerThread = 40;
  constexpr int kAppendBatches = 25;

  testing::DifferentialWorkload workload = testing::RandomWorkload(
      /*seed=*/91, /*attrs=*/5, /*base_rows=*/400,
      /*append_rows=*/kAppendBatches * 2, /*domain=*/6,
      /*append_domain=*/6, /*null_percent=*/10);
  testing::DifferentialHarness harness(std::move(workload));
  Table reader_table = workload::MakeCompas(1200, 51).value();

  ServiceRegistry registry;
  // Appended codes are precomputed against the base dictionaries (the
  // appender thread must not race anyone through a dictionary).
  std::vector<std::vector<ValueId>> append_codes;
  {
    const Table& reference = harness.reference();
    const int n = reference.num_attributes();
    for (int64_t r = harness.base().num_rows(); r < reference.num_rows();
         ++r) {
      std::vector<ValueId> row(static_cast<size_t>(n));
      for (int a = 0; a < n; ++a) {
        row[static_cast<size_t>(a)] = reference.value(r, a);
      }
      append_codes.push_back(std::move(row));
    }
  }

  // Decoy datasets give the trimmer something genuinely evictable, so
  // evictions and acquires really race without threatening the shared
  // (always-hot: see the anchor) service under test.
  std::vector<Table> decoys;
  for (int i = 0; i < 3; ++i) {
    decoys.push_back(workload::MakeCompas(200, 70 + i).value());
  }

  // The anchor keeps the readers' service hot for the whole stress —
  // the one-engine-built-once assertion is on *this* fingerprint.
  auto anchor = registry.Acquire(reader_table);
  CountingService* const expected = anchor.get();
  // The appender's own fingerprint; held hot for the whole stress too.
  auto append_service = registry.Acquire(harness.base());

  const int num_attrs = reader_table.num_attributes();
  std::atomic<int> started{0};
  std::atomic<int> wrong_service{0};
  std::vector<std::thread> threads;
  // Readers: acquire + size random subsets under the service lock, with
  // occasional decoy acquires for the trimmer to collect.
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      Rng rng(1000 + static_cast<uint64_t>(i));
      started.fetch_add(1);
      while (started.load() < kThreads + 2) {
      }
      for (int iter = 0; iter < kItersPerThread; ++iter) {
        auto service = registry.Acquire(reader_table);
        if (service.get() != expected) wrong_service.fetch_add(1);
        {
          std::lock_guard<std::mutex> lock(service->mutex());
          AttrMask s(rng.UniformInt(1u << std::min(num_attrs, 10)));
          service->engine().CountPatterns(s, /*budget=*/32);
        }
        if (iter % 4 == 0) {
          auto decoy = registry.Acquire(decoys[static_cast<size_t>(
              rng.UniformInt(static_cast<uint32_t>(decoys.size())))]);
          std::lock_guard<std::mutex> lock(decoy->mutex());
          decoy->engine().CountPatterns(AttrMask::FromIndices({0, 1}));
        }  // dropped: cold, fair game for the trimmer
      }
    });
  }
  // Appender: feed its service's delta block in batches of two rows
  // while the readers and the trimmer hammer the registry.
  threads.emplace_back([&] {
    started.fetch_add(1);
    while (started.load() < kThreads + 2) {
    }
    for (int b = 0; b < kAppendBatches; ++b) {
      append_service->AppendRows(
          {append_codes[static_cast<size_t>(2 * b)],
           append_codes[static_cast<size_t>(2 * b + 1)]});
    }
  });
  // Trimmer: flip the budget so evictions race the acquires. The
  // accountant's lock-free resident-bytes polling runs against engines
  // other threads are actively mutating.
  threads.emplace_back([&] {
    started.fetch_add(1);
    while (started.load() < kThreads + 2) {
    }
    for (int i = 0; i < 200; ++i) {
      registry.SetMemoryBudget(1);
      registry.Trim();
    }
  });
  for (auto& t : threads) t.join();
  registry.Trim();  // budget still 1: every now-cold decoy goes
  registry.SetMemoryBudget(0);  // unbounded again

  // One engine, built once: every acquire of the readers' fingerprint
  // returned the anchored service (the trimmer could never evict it).
  EXPECT_EQ(wrong_service.load(), 0) << "the shared engine was rebuilt";
  EXPECT_GT(registry.stats().evictions, 0)
      << "the trimmer never actually evicted a cold decoy";

  // And the appends stayed exact under the racing trims: every answer
  // matches the one-shot counters over a from-scratch rebuild.
  testing::DifferentialHarness::CheckServiceAgainst(
      *append_service, harness.reference(), "stress");
}

}  // namespace
}  // namespace pcbl
