// Tests for ThreadPool and ParallelFor.
#include "util/thread_pool.h"

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace pcbl {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No WaitIdle: the destructor must still run everything.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.WaitIdle();
    EXPECT_EQ(counter.load(), (wave + 1) * 20);
  }
}

TEST(ParallelForTest, CoversEachIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 16}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    ParallelFor(257, threads, [&](int64_t i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ParallelForTest, ZeroAndNegativeCountsAreNoOps) {
  int calls = 0;
  ParallelFor(0, 4, [&](int64_t) { ++calls; });
  ParallelFor(-5, 4, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, MoreThreadsThanItems) {
  std::atomic<int64_t> sum{0};
  ParallelFor(3, 64, [&](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 0 + 1 + 2);
}

TEST(ParallelForTest, SerialPathRunsInOrder) {
  std::vector<int64_t> order;
  ParallelFor(10, 1, [&](int64_t i) { order.push_back(i); });
  std::vector<int64_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ParallelForTest, AggregationMatchesSerial) {
  const int64_t n = 10000;
  std::atomic<int64_t> parallel_sum{0};
  ParallelFor(n, 8, [&](int64_t i) { parallel_sum.fetch_add(i * i); });
  int64_t serial_sum = 0;
  for (int64_t i = 0; i < n; ++i) serial_sum += i * i;
  EXPECT_EQ(parallel_sum.load(), serial_sum);
}

TEST(DefaultThreadCountTest, IsPositive) {
  EXPECT_GE(DefaultThreadCount(), 1);
}

}  // namespace
}  // namespace pcbl
