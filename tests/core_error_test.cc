// Tests for error metrics and the two evaluation modes (Def. 2.13,
// Sec. IV-C's early-termination optimization).
#include "core/error.h"

#include <gtest/gtest.h>

#include "baselines/independence.h"
#include "core/search.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

TEST(QErrorTest, SymmetricAndClamped) {
  EXPECT_DOUBLE_EQ(QError(10, 5.0), 2.0);
  EXPECT_DOUBLE_EQ(QError(5, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(QError(7, 7.0), 1.0);
  // est = 0 is clamped to 1 per Sec. IV-B.
  EXPECT_DOUBLE_EQ(QError(4, 0.0), 4.0);
  EXPECT_DOUBLE_EQ(QError(1, 0.0), 1.0);
  // Sub-one-row estimates read as "0 rows" and clamp to 1 as well.
  EXPECT_DOUBLE_EQ(QError(10, 0.5), 10.0);
  // Negative estimates are treated as zero.
  EXPECT_DOUBLE_EQ(QError(4, -3.0), 4.0);
}

TEST(QErrorTest, AtLeastOne) {
  for (double est : {0.001, 0.5, 1.0, 3.0, 100.0}) {
    EXPECT_GE(QError(3, est), 1.0);
  }
}

TEST(EvaluateTest, ExactLabelHasZeroError) {
  // A label over ALL attributes reproduces every full pattern count.
  Table t = workload::MakeFig2Demo();
  FullPatternIndex idx = FullPatternIndex::Build(t);
  Label l = Label::Build(t, AttrMask::All(t.num_attributes()));
  LabelEstimator est(l);
  ErrorReport r = EvaluateOverFullPatterns(idx, est, ErrorMode::kExact);
  EXPECT_DOUBLE_EQ(r.max_abs, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_abs, 0.0);
  EXPECT_DOUBLE_EQ(r.max_q, 1.0);
  EXPECT_DOUBLE_EQ(r.mean_q, 1.0);
  EXPECT_EQ(r.evaluated, idx.num_patterns());
  EXPECT_EQ(r.total, idx.num_patterns());
  EXPECT_FALSE(r.early_terminated);
}

TEST(EvaluateTest, ReportStatisticsConsistent) {
  Table t = workload::MakeCompas(5000, 3).value();
  FullPatternIndex idx = FullPatternIndex::Build(t);
  IndependenceEstimator est = IndependenceEstimator::Build(t);
  ErrorReport r = EvaluateOverFullPatterns(idx, est, ErrorMode::kExact);
  EXPECT_GE(r.max_abs, r.mean_abs);
  EXPECT_GE(r.max_q, r.mean_q);
  EXPECT_GE(r.mean_q, 1.0);
  EXPECT_GE(r.std_abs, 0.0);
  EXPECT_EQ(r.evaluated, idx.num_patterns());
}

TEST(EvaluateTest, EarlyTerminationNeverExceedsExactAndAgreesInPractice) {
  // The Sec. IV-C rule is exact unless a low-count pattern over-estimates
  // past the running max; validate agreement on real search candidates.
  Table t = workload::MakeCompas(8000, 13).value();
  FullPatternIndex idx = FullPatternIndex::Build(t);
  for (AttrMask s : {AttrMask::FromIndices({0, 1}),
                     AttrMask::FromIndices({12, 13}),
                     AttrMask::FromIndices({0, 2, 12})}) {
    Label l = Label::Build(t, s);
    LabelEstimator est(l);
    ErrorReport exact = EvaluateOverFullPatterns(idx, est,
                                                 ErrorMode::kExact);
    ErrorReport early = EvaluateOverFullPatterns(
        idx, est, ErrorMode::kEarlyTermination);
    EXPECT_LE(early.evaluated, exact.evaluated);
    EXPECT_LE(early.max_abs, exact.max_abs + 1e-9);
    // On these labels the rule is exact for the max metric.
    EXPECT_NEAR(early.max_abs, exact.max_abs, 1e-9) << s.ToString();
  }
}

TEST(EvaluateTest, EarlyTerminationScansFewerPatterns) {
  Table t = workload::MakeCreditCard(5000, 3).value();
  FullPatternIndex idx = FullPatternIndex::Build(t);
  Label l = Label::Build(t, AttrMask::FromIndices({1, 2}));
  LabelEstimator est(l);
  ErrorReport early =
      EvaluateOverFullPatterns(idx, est, ErrorMode::kEarlyTermination);
  // With a weak label the max error is large, so the scan stops early.
  EXPECT_TRUE(early.early_terminated);
  EXPECT_LT(early.evaluated, idx.num_patterns());
}

TEST(EvaluateOverPatternsTest, ExplicitPatternSet) {
  Table t = workload::MakeFig2Demo();
  Label l = Label::Build(t, AttrMask::FromIndices({1, 3}));
  LabelEstimator est(l);
  auto p1 = Pattern::Parse(t, {{"gender", "Female"},
                               {"age group", "20-39"},
                               {"marital status", "married"}});
  auto p2 = Pattern::Parse(t, {{"gender", "Male"}});
  ASSERT_TRUE(p1.ok() && p2.ok());
  std::vector<Pattern> patterns = {*p1, *p2};
  std::vector<int64_t> actuals = {3, 9};
  ErrorReport r = EvaluateOverPatterns(patterns, actuals, est);
  EXPECT_EQ(r.total, 2);
  // p1 estimate is exactly 3 (Example 2.12); p2 binds nothing outside VC
  // and is exact too, so both errors are 0.
  EXPECT_DOUBLE_EQ(r.max_abs, 0.0);
}

TEST(EvaluateOverPatternsTest, MismatchedSizesDie) {
  Table t = workload::MakeFig2Demo();
  Label l = Label::Build(t, AttrMask());
  LabelEstimator est(l);
  std::vector<Pattern> patterns(2);
  std::vector<int64_t> actuals(1);
  EXPECT_DEATH(EvaluateOverPatterns(patterns, actuals, est), "");
}

}  // namespace
}  // namespace pcbl
