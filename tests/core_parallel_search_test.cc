// Differential tests: the parallel candidate-ranking phase must produce
// bit-identical SearchResults for every thread count.
#include <gtest/gtest.h>

#include "core/search.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

void ExpectSameResult(const SearchResult& a, const SearchResult& b) {
  EXPECT_EQ(a.best_attrs, b.best_attrs);
  EXPECT_EQ(a.label.size(), b.label.size());
  EXPECT_DOUBLE_EQ(a.error.max_abs, b.error.max_abs);
  EXPECT_DOUBLE_EQ(a.error.mean_abs, b.error.mean_abs);
  EXPECT_EQ(a.stats.error_evaluations, b.stats.error_evaluations);
  EXPECT_EQ(a.stats.patterns_scanned, b.stats.patterns_scanned);
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_EQ(a.candidates[i].attrs, b.candidates[i].attrs);
    EXPECT_EQ(a.candidates[i].label_size, b.candidates[i].label_size);
    EXPECT_DOUBLE_EQ(a.candidates[i].max_error, b.candidates[i].max_error);
  }
}

class ParallelSearchTest : public testing::TestWithParam<int> {};

TEST_P(ParallelSearchTest, TopDownMatchesSerial) {
  Table t = workload::MakeCompas(4000, 11).value();
  LabelSearch search(t);
  SearchOptions serial;
  serial.size_bound = 60;
  serial.record_candidates = true;
  const SearchResult expected = search.TopDown(serial);

  SearchOptions parallel = serial;
  parallel.num_threads = GetParam();
  ExpectSameResult(expected, search.TopDown(parallel));
}

TEST_P(ParallelSearchTest, NaiveMatchesSerial) {
  Table t = workload::MakeBlueNile(4000, 11).value();
  LabelSearch search(t);
  SearchOptions serial;
  serial.size_bound = 40;
  serial.record_candidates = true;
  const SearchResult expected = search.Naive(serial);

  SearchOptions parallel = serial;
  parallel.num_threads = GetParam();
  ExpectSameResult(expected, search.Naive(parallel));
}

TEST_P(ParallelSearchTest, ExactModeMatchesSerial) {
  Table t = workload::MakeCompas(2000, 5).value();
  LabelSearch search(t);
  SearchOptions serial;
  serial.size_bound = 40;
  serial.candidate_error_mode = ErrorMode::kExact;
  serial.metric = OptimizationMetric::kMeanQError;
  serial.record_candidates = true;
  const SearchResult expected = search.TopDown(serial);

  SearchOptions parallel = serial;
  parallel.num_threads = GetParam();
  ExpectSameResult(expected, search.TopDown(parallel));
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelSearchTest,
                         testing::Values(2, 4, 8, 16));

}  // namespace
}  // namespace pcbl
