// Tests for table-level bucketization (relation/table_transform).
#include "relation/table_transform.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "relation/csv.h"

namespace pcbl {
namespace {

Table MixedTable() {
  auto t = ReadCsvString(
      "name,age,salary\n"
      "alice,30,1000\n"
      "bob,40,2000\n"
      "carol,50,3000\n"
      "dave,60,4000\n"
      "erin,70,\n");
  PCBL_CHECK(t.ok());
  return std::move(*t);
}

TEST(NumericAttributesTest, DetectsNumericColumns) {
  Table t = MixedTable();
  EXPECT_EQ(NumericAttributes(t),
            (std::vector<std::string>{"age", "salary"}));
}

TEST(NumericAttributesTest, MixedColumnIsNotNumeric) {
  auto t = ReadCsvString("x\n1\ntwo\n3\n");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(NumericAttributes(*t).empty());
}

TEST(BucketizeAttributesTest, EquiWidthBinsCoverTheRange) {
  Table t = MixedTable();
  auto binned = BucketizeAttributes(t, {"age"}, 2, BucketStrategy::kEquiWidth);
  ASSERT_TRUE(binned.ok()) << binned.status();
  // ages 30..70 split at 50: {30,40} low, {50,60,70} high.
  EXPECT_EQ(binned->DomainSize(1), 2u);
  EXPECT_EQ(binned->ValueString(0, 1), binned->ValueString(1, 1));
  EXPECT_EQ(binned->ValueString(2, 1), binned->ValueString(4, 1));
  EXPECT_NE(binned->ValueString(0, 1), binned->ValueString(2, 1));
  // Untouched columns survive verbatim.
  EXPECT_EQ(binned->ValueString(0, 0), "alice");
}

TEST(BucketizeAttributesTest, MissingNumericCellStaysMissing) {
  Table t = MixedTable();
  auto binned =
      BucketizeAttributes(t, {"salary"}, 2, BucketStrategy::kEquiWidth);
  ASSERT_TRUE(binned.ok());
  EXPECT_TRUE(IsNull(binned->value(4, 2)));  // erin's empty salary
  EXPECT_EQ(binned->NullCount(2), 1);
}

TEST(BucketizeAttributesTest, EquiDepthBalancesCounts) {
  // 100 skewed values: equi-depth must still split near the median.
  auto b = TableBuilder::Create({"v"});
  PCBL_CHECK(b.ok());
  for (int i = 0; i < 100; ++i) {
    PCBL_CHECK(b->AddRow({std::to_string(i < 90 ? i : i * 100)}).ok());
  }
  Table t = b->Build();
  auto binned = BucketizeAttributes(t, {"v"}, 2, BucketStrategy::kEquiDepth);
  ASSERT_TRUE(binned.ok());
  ASSERT_EQ(binned->DomainSize(0), 2u);
  // Both buckets hold close to half the rows.
  int64_t first = 0;
  for (int64_t r = 0; r < 100; ++r) {
    if (binned->value(r, 0) == binned->value(0, 0)) ++first;
  }
  EXPECT_GE(first, 40);
  EXPECT_LE(first, 60);
}

TEST(BucketizeAttributesTest, ValidatesInput) {
  Table t = MixedTable();
  EXPECT_FALSE(
      BucketizeAttributes(t, {"nosuch"}, 2, BucketStrategy::kEquiWidth).ok());
  EXPECT_FALSE(
      BucketizeAttributes(t, {"age", "age"}, 2, BucketStrategy::kEquiWidth)
          .ok());
  EXPECT_FALSE(
      BucketizeAttributes(t, {"name"}, 2, BucketStrategy::kEquiWidth).ok());
  EXPECT_FALSE(
      BucketizeAttributes(t, {"age"}, 0, BucketStrategy::kEquiWidth).ok());
}

TEST(BucketizeAttributesTest, RoundTripsThroughCsv) {
  Table t = MixedTable();
  auto binned = BucketizeAttributes(t, {"age", "salary"}, 3,
                                    BucketStrategy::kEquiWidth);
  ASSERT_TRUE(binned.ok());
  auto back = ReadCsvString(WriteCsvString(*binned));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), binned->num_rows());
  for (int64_t r = 0; r < back->num_rows(); ++r) {
    for (int a = 0; a < back->num_attributes(); ++a) {
      EXPECT_EQ(back->ValueString(r, a), binned->ValueString(r, a));
    }
  }
}

}  // namespace
}  // namespace pcbl
